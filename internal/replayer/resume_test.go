package replayer

// Session.Resume tests: a cancelled session resumed at every possible
// cut point must finish with exactly the result an uninterrupted replay
// produces, and the eligibility rules (only cancelled, never halted)
// hold.

import (
	"context"
	"errors"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
)

func TestResumeEquivalenceEveryCutPoint(t *testing.T) {
	sc := apps.AuthenticateScenario()
	tr := record(t, sc)
	want, _, wantTab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})

	for cut := 0; cut < len(tr.Commands); cut++ {
		// Cancel after `cut` commands have replayed.
		ctx, cancel := context.WithCancelCause(context.Background())
		env := apps.NewEnv(browser.DeveloperMode)
		s, err := New(env.Browser, Options{}).NewSession(ctx, tr)
		if err != nil {
			t.Fatalf("cut %d: NewSession: %v", cut, err)
		}
		for i := 0; i < cut; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatalf("cut %d: trace exhausted at step %d", cut, i)
			}
		}
		cause := errors.New("interrupted here")
		cancel(cause)
		res := s.Run()
		if !res.Cancelled || !errors.Is(res.CancelCause, cause) {
			t.Fatalf("cut %d: result not cancelled with the cause: %+v", cut, res)
		}
		if len(res.Steps) != cut {
			t.Fatalf("cut %d: partial result has %d steps", cut, len(res.Steps))
		}

		resumed, err := s.Resume(context.Background())
		if err != nil {
			t.Fatalf("cut %d: Resume: %v", cut, err)
		}
		got := resumed.Run()
		compareResults(t, "resumed replay", want, got)
		if got.Cancelled || got.CancelCause != nil {
			t.Errorf("cut %d: resumed result still carries the cancellation", cut)
		}
		if resumed.Tab().URL() != wantTab.URL() {
			t.Errorf("cut %d: final URL %q, want %q", cut, resumed.Tab().URL(), wantTab.URL())
		}
		resEnv, ok := resumed.Tab().Browser().World().(*apps.Env)
		if !ok {
			t.Fatalf("cut %d: resumed browser has no Env world (got %T)", cut, resumed.Tab().Browser().World())
		}
		if err := sc.Verify(resEnv, resumed.Tab()); err != nil {
			t.Errorf("cut %d: resumed session failed the scenario oracle: %v", cut, err)
		}
		// The original session is final: resuming it again forks the
		// same checkpoint a second time.
		again, err := s.Resume(context.Background())
		if err != nil {
			t.Fatalf("cut %d: second Resume: %v", cut, err)
		}
		compareResults(t, "second resume", want, again.Run())
	}
}

func TestResumeRejectsLiveAndDoneSessions(t *testing.T) {
	tr := record(t, apps.AuthenticateScenario())
	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Not cancelled (still live): not resumable.
	if _, err := s.Resume(context.Background()); err == nil {
		t.Error("Resume of a live session succeeded")
	}
	if res := s.Run(); res.Cancelled {
		t.Fatalf("uncancelled run reported cancelled: %+v", res)
	}
	// Finished cleanly: still not resumable.
	if _, err := s.Resume(context.Background()); err == nil {
		t.Error("Resume of a completed session succeeded")
	}
}

func TestResumeClearsCancellationOnlyInTheCopy(t *testing.T) {
	tr := record(t, apps.AuthenticateScenario())
	ctx, cancel := context.WithCancelCause(context.Background())
	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Next()
	cause := errors.New("stop")
	cancel(cause)
	s.Run()

	resumed, err := s.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Result().Cancelled {
		t.Error("resumed session starts out cancelled")
	}
	// The original stays cancelled — it is a final checkpoint.
	if !s.Result().Cancelled || !errors.Is(s.Result().CancelCause, cause) {
		t.Error("resuming mutated the original session's result")
	}
}
