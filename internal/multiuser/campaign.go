package multiuser

// The load campaign: scale a workload to Users virtual users by
// hosting them in worlds of Cohort users each, explore interleavings
// per world size, and aggregate interference findings.
//
// Determinism contract: for a fixed (workload, users, cohort, budget,
// seed, gap, mode), the Report's findings — and Render()'s bytes — are
// identical at any Parallelism, with sharing on or off, and whether
// schedules execute locally or through a distributor. The plan is
// computed up front from the seed alone, every schedule execution is
// single-goroutine deterministic, and results are absorbed in world
// index order regardless of completion order. Sharing and parallelism
// only change how much work runs, never what it computes — the same
// ablation shape as the campaign executor's prefix sharing.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/errmodel"
)

// DefaultCohort is how many users share one world when the caller does
// not say: small enough that schedule spaces stay explorable, large
// enough that every pairwise interference class can fire.
const DefaultCohort = 4

// DefaultScheduleBudget is how many schedules the explorer tries per
// world size when the caller does not say.
const DefaultScheduleBudget = 16

// Options configures a load campaign.
type Options struct {
	// Workload names the registered workload to run.
	Workload string
	// Users is the total number of virtual users (default DefaultCohort).
	Users int
	// Cohort is how many users share one world (default DefaultCohort,
	// capped at Users).
	Cohort int
	// Budget is the schedule budget per world size (default
	// DefaultScheduleBudget).
	Budget int
	// Seed drives the interleaving explorer; same seed, same schedules.
	Seed int64
	// Duration, when set, is each world's virtual time budget: the
	// slot gap becomes Duration/slots (floored at the AJAX-safe
	// registry.ActionGap). 0 means registry.ActionGap per slot.
	Duration time.Duration
	// Mode is the browser build (zero = DeveloperMode).
	Mode browser.Mode
	// Parallelism is how many schedules execute concurrently (0 or 1 =
	// sequential).
	Parallelism int
	// DisableSharing turns off schedule-result sharing: every world
	// executes its schedule even when an identical world+schedule
	// already ran — the ablation proving sharing changes cost, not
	// findings.
	DisableSharing bool
	// Execute, when set, runs the deduplicated schedule jobs remotely
	// (the distrib hook). Returning ok=false falls back to local
	// execution.
	Execute func(ctx context.Context, sjobs []ScheduleJob) ([]ScheduleResult, bool)
	// OnProgress, when set, observes campaign progress (serially).
	OnProgress func(p Progress)
}

// ScheduleJob is one deduplicated world execution, wire-safe for
// distributed workers.
type ScheduleJob struct {
	// Index identifies the job in results.
	Index int `json:"index"`
	// Workload names the workload to build the world from.
	Workload string `json:"workload"`
	// Users is the world's cohort size.
	Users int `json:"users"`
	// Schedule is the interleaving in codec form.
	Schedule string `json:"schedule"`
	// Mode is the browser build.
	Mode browser.Mode `json:"mode"`
	// GapNanos is the virtual slot gap.
	GapNanos int64 `json:"gapNanos"`
}

// ScheduleResult is one executed schedule's outcome.
type ScheduleResult struct {
	// Index echoes the job index.
	Index int `json:"index"`
	// Violations are the interference findings of this world.
	Violations []Violation `json:"violations,omitempty"`
	// Coverage is the world's coverage bitmap (errmodel.BitmapSize
	// bytes).
	Coverage []byte `json:"coverage,omitempty"`
	// Err reports a world construction or schedule failure.
	Err string `json:"err,omitempty"`
}

// ExecuteScheduleJob runs one schedule job locally — the single
// building block both the in-process campaign and distributed workers
// call.
func ExecuteScheduleJob(sj ScheduleJob) ScheduleResult {
	res := ScheduleResult{Index: sj.Index}
	wl, err := LookupWorkload(sj.Workload)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	sched, err := ParseSchedule(sj.Schedule)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	w, err := NewWorld(wl, sj.Users, sj.Mode, time.Duration(sj.GapNanos))
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := w.RunSchedule(sched); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Violations = w.Violations()
	res.Coverage = w.Coverage().Bytes()
	return res
}

// Progress is one campaign progress observation.
type Progress struct {
	// Users is the campaign's total virtual users.
	Users int
	// Worlds is the total world count; WorldsDone how many are absorbed.
	Worlds     int
	WorldsDone int
	// Executed counts schedules actually run; Shared counts world
	// assignments served from an already-executed identical schedule.
	Executed int
	Shared   int
}

// Finding is one aggregated interference finding.
type Finding struct {
	// Kind is the violation kind ("lost-update", "stale-read",
	// "session-collision", "op-error").
	Kind string `json:"kind"`
	// Detail is the violation detail.
	Detail string `json:"detail"`
	// Schedule is the first schedule (codec form) that surfaced it —
	// the reproduction recipe.
	Schedule string `json:"schedule"`
	// Worlds counts how many worlds reproduced it.
	Worlds int `json:"worlds"`
}

// Report is a finished load campaign.
type Report struct {
	Workload string `json:"workload"`
	Users    int    `json:"users"`
	Cohort   int    `json:"cohort"`
	Worlds   int    `json:"worlds"`
	Budget   int    `json:"budget"`
	Seed     int64  `json:"seed"`
	// Executed and Shared describe cost, not outcome: they vary with
	// the sharing ablation and are deliberately absent from Render.
	Executed int `json:"executed"`
	Shared   int `json:"shared"`
	// CoverageBits is the population count of the merged coverage
	// bitmap.
	CoverageBits int `json:"coverageBits"`
	// Findings are the aggregated violations, in kind+detail order.
	Findings []Finding `json:"findings"`
}

// Render prints the canonical findings report. It includes only
// determinism-covered fields — same bytes at any parallelism, sharing
// mode, and execution placement for a fixed seed.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load campaign: workload=%s users=%d cohort=%d worlds=%d budget=%d seed=%d\n",
		r.Workload, r.Users, r.Cohort, r.Worlds, r.Budget, r.Seed)
	fmt.Fprintf(&b, "coverage: %d bits\n", r.CoverageBits)
	fmt.Fprintf(&b, "findings: %d\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] %s (worlds: %d)\n    schedule %s\n", f.Kind, f.Detail, f.Worlds, f.Schedule)
	}
	return b.String()
}

// worldPlan is the campaign's precomputed shape: per-world sizes and
// schedule lists, all derived from the options alone.
type worldPlan struct {
	sizes []int // world i's cohort size
	// scheds maps a world size to its explored schedule list.
	scheds map[int][]Schedule
	// unique holds the deduplicated (size, schedule) executions; every
	// world of a size absorbs all of that size's jobs.
	unique []ScheduleJob
	// jobsOf maps world index -> unique job indices, in schedule order.
	jobsOf [][]int
}

// plan lays the campaign out: split Users into worlds of Cohort,
// explore up to Budget schedules per distinct world size, and run each
// world under every schedule of its size — deduplicating identical
// (size, schedule) executions, which is what makes a million-user
// campaign cost a handful of world runs.
func plan(wl Workload, o Options) worldPlan {
	p := worldPlan{scheds: make(map[int][]Schedule)}
	users := o.Users
	for users > 0 {
		n := o.Cohort
		if n > users {
			n = users
		}
		p.sizes = append(p.sizes, n)
		users -= n
	}
	jobsBySize := make(map[int][]int)
	for _, n := range p.sizes {
		jobs, ok := jobsBySize[n]
		if !ok {
			scheds := ExploreSchedules(wl.OpCounts(n), o.Seed, o.Budget)
			p.scheds[n] = scheds
			for _, s := range scheds {
				jobs = append(jobs, len(p.unique))
				p.unique = append(p.unique, ScheduleJob{
					Index:    len(p.unique),
					Workload: wl.Name,
					Users:    n,
					Schedule: s.String(),
					Mode:     o.Mode,
					GapNanos: int64(gapFor(o, len(s.Slots))),
				})
			}
			jobsBySize[n] = jobs
		}
		p.jobsOf = append(p.jobsOf, jobs)
	}
	return p
}

// gapFor is the virtual slot gap: Duration spread across the world's
// slots, floored at the AJAX-safe default.
func gapFor(o Options, slots int) time.Duration {
	if o.Duration <= 0 || slots == 0 {
		return 0 // NewWorld applies registry.ActionGap
	}
	gap := o.Duration / time.Duration(slots)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Run executes the load campaign.
func Run(ctx context.Context, o Options) (*Report, error) {
	if o.Users < 1 {
		o.Users = DefaultCohort
	}
	if o.Cohort < 1 {
		o.Cohort = DefaultCohort
	}
	if o.Cohort > o.Users {
		o.Cohort = o.Users
	}
	if o.Budget < 1 {
		o.Budget = DefaultScheduleBudget
	}
	wl, err := LookupWorkload(o.Workload)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	p := plan(wl, o)

	// Execute the unique jobs: a distributor if offered, else locally.
	// With sharing disabled every world executes its own copies — same
	// inputs, same deterministic outputs, more cost.
	jobs := p.unique
	if o.DisableSharing {
		jobs = nil
		for _, worldJobs := range p.jobsOf {
			for _, ji := range worldJobs {
				j := p.unique[ji]
				j.Index = len(jobs)
				jobs = append(jobs, j)
			}
		}
	}
	results, err := executeJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	// resultsOf returns world wi's results under either sharing mode.
	flatNext := 0
	resultsOf := func(wi int) []ScheduleResult {
		out := make([]ScheduleResult, 0, len(p.jobsOf[wi]))
		for _, ji := range p.jobsOf[wi] {
			if o.DisableSharing {
				out = append(out, results[flatNext])
				flatNext++
			} else {
				out = append(out, results[ji])
			}
		}
		return out
	}

	rep := &Report{
		Workload: wl.Name,
		Users:    o.Users,
		Cohort:   o.Cohort,
		Worlds:   len(p.sizes),
		Budget:   o.Budget,
		Seed:     o.Seed,
		Executed: len(jobs),
	}
	if !o.DisableSharing {
		for _, worldJobs := range p.jobsOf {
			rep.Shared += len(worldJobs)
		}
		rep.Shared -= len(p.unique)
	}

	// Absorb in world index order — completion order never shows.
	var cov errmodel.Bitmap
	byKey := make(map[string]*Finding)
	var order []string
	for wi := range p.sizes {
		worldSeen := make(map[string]bool)
		for si, res := range resultsOf(wi) {
			sched := p.scheds[p.sizes[wi]][si]
			if res.Err != "" {
				return nil, fmt.Errorf("multiuser: world %d schedule %s: %s", wi, sched, res.Err)
			}
			cov.Merge(res.Coverage)
			for _, v := range res.Violations {
				key := v.Kind + "\x00" + v.Detail
				f, ok := byKey[key]
				if !ok {
					f = &Finding{Kind: v.Kind, Detail: v.Detail, Schedule: sched.String()}
					byKey[key] = f
					order = append(order, key)
				}
				if !worldSeen[key] {
					worldSeen[key] = true
					f.Worlds++
				}
			}
		}
		if o.OnProgress != nil {
			o.OnProgress(Progress{
				Users:      o.Users,
				Worlds:     len(p.sizes),
				WorldsDone: wi + 1,
				Executed:   rep.Executed,
				Shared:     rep.Shared,
			})
		}
	}
	sort.Strings(order)
	for _, key := range order {
		rep.Findings = append(rep.Findings, *byKey[key])
	}
	rep.CoverageBits = cov.Bits()
	return rep, nil
}

// executeJobs runs schedule jobs through the distributor hook when one
// is offered (and willing), else locally with bounded parallelism.
func executeJobs(ctx context.Context, o Options, sjobs []ScheduleJob) ([]ScheduleResult, error) {
	if len(sjobs) == 0 {
		return nil, nil
	}
	if o.Execute != nil {
		if results, ok := o.Execute(ctx, sjobs); ok {
			if len(results) != len(sjobs) {
				return nil, fmt.Errorf("multiuser: distributor returned %d results for %d jobs", len(results), len(sjobs))
			}
			ordered := make([]ScheduleResult, len(sjobs))
			seen := make([]bool, len(sjobs))
			for _, r := range results {
				if r.Index < 0 || r.Index >= len(sjobs) || seen[r.Index] {
					return nil, fmt.Errorf("multiuser: distributor returned bad or duplicate job index %d", r.Index)
				}
				seen[r.Index] = true
				ordered[r.Index] = r
			}
			return ordered, nil
		}
	}
	par := o.Parallelism
	if par < 1 {
		par = 1
	}
	if par > len(sjobs) {
		par = len(sjobs)
	}
	results := make([]ScheduleResult, len(sjobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = ExecuteScheduleJob(sjobs[idx])
			}
		}()
	}
feed:
	for i := range sjobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
