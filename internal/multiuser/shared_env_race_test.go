package multiuser

// Race coverage for the shared-env request path. Worlds serialize
// users onto the virtual clock, so the simulator itself never races —
// but the shared infrastructure (webapp.Server's session map, the
// netsim URL parse cache, cow state cells, app state mutexes, the
// coverage readers) must hold up under genuinely concurrent clients
// too: the jobs engine runs campaigns in parallel and the serve
// daemon's metrics exporter reads state while jobs run. Run with
// `go test -race` (CI does) to make this test meaningful.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
)

func TestSharedEnvConcurrentClients(t *testing.T) {
	env := registry.MustNewEnv(browser.DeveloperMode,
		registry.WithApps(apps.SitesApp(), apps.DocsApp(), apps.YahooApp()))

	const clients = 4
	const rounds = 25

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client keeps its own per-host cookie jar (as a real
			// browser would), so every app server mints exactly one
			// session per client and every request exercises the
			// session map.
			jar := make(map[string]string)
			fetch := func(host, pathAndQuery string) {
				req := netsim.NewRequest("GET", "http://"+host+pathAndQuery)
				if cookie := jar[host]; cookie != "" {
					req.SetHeader("Cookie", cookie)
				}
				resp, err := env.Network.Fetch(req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if sc := resp.Header["Set-Cookie"]; sc != "" && jar[host] == "" {
					jar[host] = sc
				}
			}
			for r := 0; r < rounds; r++ {
				fetch(apps.SitesHost, fmt.Sprintf("/notes?me=u%d", c))
				fetch(apps.SitesHost, fmt.Sprintf("/notes/save?me=u%d&list=", c))
				fetch(apps.DocsHost, "/tally")
				fetch(apps.DocsHost, fmt.Sprintf("/tally/bump?v=%d", r))
				fetch(apps.YahooHost, fmt.Sprintf("/presence/hello?name=u%d", c))
				fetch(apps.YahooHost, "/presence")
			}
		}(c)
	}

	// Concurrent coverage readers — the lanes the explorer and the
	// metrics exporter read while requests mutate state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < clients*rounds; i++ {
			for _, name := range env.AppNames() {
				st, ok := env.State(name)
				if !ok {
					continue
				}
				if cs, ok := st.(registry.CoverageSource); ok {
					cs.CoverageMarks()
				}
				if scs, ok := st.(registry.SessionCoverageSource); ok {
					scs.SessionCoverageMarks()
				}
			}
		}
	}()
	wg.Wait()

	// Every client held a distinct session on every app it touched.
	for _, name := range []string{apps.SitesName, apps.DocsName, apps.YahooName} {
		st := env.MustState(name)
		scs, ok := st.(registry.SessionCoverageSource)
		if !ok {
			t.Fatalf("%s state lost its session coverage lane", name)
		}
		if got := len(scs.SessionCoverageMarks()); got != clients {
			t.Errorf("%s holds %d sessions, want %d", name, got, clients)
		}
	}
}
