package multiuser

// Schedules: the replayable value at the heart of the interleaving
// explorer. A schedule is a realized interleaving of user turns — one
// user index per slot — and running a world under a schedule is fully
// deterministic, so the schedule string IS the reproduction recipe for
// any contention finding, the same way a trace archive reproduces a
// single-user bug.
//
// A schedule must be a linear extension of the users' per-user op
// chains: user u appears exactly as many times as u has ops, and u's
// k-th appearance runs u's k-th op. The base schedule is fully
// sequential (user 0's whole script, then user 1's, ...), which is
// contention-free by construction; the explorer perturbs it into
// seeded random linear extensions, deduped by a chained two-lane
// FNV-1a digest — the same dedupe idiom the campaign PruneTable uses
// for trace prefixes.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/fnv1a"
)

// Schedule is one interleaving: Slots[k] is the user acting at slot k.
type Schedule struct {
	// Users is the number of users in the world the schedule drives.
	Users int
	// Slots is the turn order, one entry per op across all users.
	Slots []int
}

// String renders the schedule in its strict codec form:
// "users:N;slots:a,b,c". ParseSchedule inverts it exactly.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "users:%d;slots:", s.Users)
	for i, u := range s.Slots {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(u))
	}
	return b.String()
}

// ParseSchedule parses the codec form. It is strict: both fields must
// appear in order, every slot must be a user index in [0, users), and
// trailing garbage is an error — a schedule that survives a round trip
// is byte-identical.
func ParseSchedule(text string) (Schedule, error) {
	rest, ok := strings.CutPrefix(text, "users:")
	if !ok {
		return Schedule{}, fmt.Errorf("multiuser: schedule %q: missing users: prefix", text)
	}
	numStr, slotsPart, ok := strings.Cut(rest, ";slots:")
	if !ok {
		return Schedule{}, fmt.Errorf("multiuser: schedule %q: missing ;slots: section", text)
	}
	users, err := strconv.Atoi(numStr)
	if err != nil || users < 1 {
		return Schedule{}, fmt.Errorf("multiuser: schedule %q: bad user count %q", text, numStr)
	}
	s := Schedule{Users: users}
	if slotsPart == "" {
		return s, nil
	}
	for _, f := range strings.Split(slotsPart, ",") {
		u, err := strconv.Atoi(f)
		if err != nil || u < 0 || u >= users {
			return Schedule{}, fmt.Errorf("multiuser: schedule %q: bad slot %q", text, f)
		}
		s.Slots = append(s.Slots, u)
	}
	return s, nil
}

// scheduleDigest identifies one schedule. Two independent 64-bit lanes
// (distinct bases, reversed visit order), exactly like the campaign
// prefix digests: dedupe acts on digest equality alone, and one lane's
// 2^-64 collision odds per pair become 2^-128 with the second.
type scheduleDigest struct {
	h1, h2 uint64
}

// digest hashes the schedule's user count and slot sequence.
func (s Schedule) digest() scheduleDigest {
	h1 := fnv1a.AddUint64(fnv1a.Offset, uint64(s.Users))
	h2 := fnv1a.AddUint64(fnv1a.AddByte(fnv1a.Offset, 0x9e), uint64(s.Users))
	for i := range s.Slots {
		h1 = fnv1a.AddUint64(h1, uint64(s.Slots[i]))
		h2 = fnv1a.AddUint64(h2, uint64(s.Slots[len(s.Slots)-1-i]))
	}
	return scheduleDigest{h1: h1, h2: h2}
}

// Sequential returns the contention-free base schedule for the given
// per-user op counts: user 0's whole chain, then user 1's, and so on.
func Sequential(opCounts []int) Schedule {
	s := Schedule{Users: len(opCounts)}
	for u, n := range opCounts {
		for i := 0; i < n; i++ {
			s.Slots = append(s.Slots, u)
		}
	}
	return s
}

// randomExtension draws one uniform random linear extension of the
// per-user op chains: at every slot, pick uniformly among the users
// with ops remaining. Seeded rng makes the draw deterministic.
func randomExtension(opCounts []int, rng *rand.Rand) Schedule {
	remaining := append([]int(nil), opCounts...)
	total := 0
	for _, n := range remaining {
		total += n
	}
	s := Schedule{Users: len(opCounts), Slots: make([]int, 0, total)}
	live := make([]int, 0, len(remaining))
	for u, n := range remaining {
		if n > 0 {
			live = append(live, u)
		}
	}
	for total > 0 {
		k := rng.Intn(len(live))
		u := live[k]
		s.Slots = append(s.Slots, u)
		remaining[u]--
		total--
		if remaining[u] == 0 {
			live = append(live[:k], live[k+1:]...)
		}
	}
	return s
}

// ExploreSchedules generates up to budget distinct schedules for the
// given per-user op chains: the sequential base first, then seeded
// random linear extensions, deduped by digest. The result depends only
// on (opCounts, seed, budget) — the coordinator of a distributed load
// campaign generates the very same list every worker executes. The
// attempt budget is bounded, so few-user worlds (whose linear
// extensions run out) return fewer than budget schedules rather than
// spinning.
func ExploreSchedules(opCounts []int, seed int64, budget int) []Schedule {
	if budget < 1 {
		budget = 1
	}
	seen := make(map[scheduleDigest]struct{}, budget)
	base := Sequential(opCounts)
	seen[base.digest()] = struct{}{}
	out := []Schedule{base}
	rng := rand.New(rand.NewSource(seed))
	for attempts := 0; len(out) < budget && attempts < budget*16+64; attempts++ {
		s := randomExtension(opCounts, rng)
		d := s.digest()
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		out = append(out, s)
	}
	return out
}

// validate checks that the schedule is a linear extension of the given
// per-user op chains.
func (s Schedule) validate(opCounts []int) error {
	if s.Users != len(opCounts) {
		return fmt.Errorf("multiuser: schedule for %d users driving a %d-user world", s.Users, len(opCounts))
	}
	used := make([]int, len(opCounts))
	for i, u := range s.Slots {
		if u < 0 || u >= len(opCounts) {
			return fmt.Errorf("multiuser: schedule slot %d names user %d of %d", i, u, len(opCounts))
		}
		used[u]++
		if used[u] > opCounts[u] {
			return fmt.Errorf("multiuser: schedule gives user %d more turns than its %d ops", u, opCounts[u])
		}
	}
	for u, n := range used {
		if n != opCounts[u] {
			return fmt.Errorf("multiuser: schedule gives user %d %d of %d turns", u, n, opCounts[u])
		}
	}
	return nil
}
