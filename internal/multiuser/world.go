package multiuser

// World: N virtual users sharing ONE registry.Env. Every user gets a
// private browser (own cookie jar, so webapp.Server keys a session per
// user) on the environment's shared clock and network — the server
// state is the only thing they share, which is exactly the paper's
// deployment picture of Sites/Docs/GMail serving many sessions of one
// backing store.
//
// Concurrency is simulated, not raced: a schedule serializes the
// users' ops onto the virtual clock, one op per slot, with a fixed
// virtual gap after each. The world is single-goroutine and fully
// deterministic — the same schedule always produces the same server
// state, the same observations, and the same coverage bitmap — so a
// schedule value is a complete reproduction recipe.

import (
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/errmodel"
	"github.com/dslab-epfl/warr/internal/fnv1a"
	"github.com/dslab-epfl/warr/internal/registry"
)

// User is one virtual user: a private browser and tab, a script, and
// what running it observed.
type User struct {
	// Index is the user's position in the world (schedule slots name it).
	Index int
	// Tag is the script's role tag; checks filter users by it.
	Tag string
	// Browser is the user's private browser (own cookies — own session).
	Browser *browser.Browser
	// Tab is the user's single tab.
	Tab *browser.Tab
	// Obs collects observations ops record (page text the user saw).
	Obs []string
	// Err is the first op failure; later ops are skipped, later slots
	// still consume virtual time, and checks treat the user as
	// incomplete.
	Err error

	ops  []Op
	next int
}

// World is one shared environment plus its virtual users.
type World struct {
	// Env is the shared world: one clock, one network, one state per app.
	Env *registry.Env
	// Users are the virtual users in index order.
	Users []*User

	wl  Workload
	gap time.Duration
	cov errmodel.Bitmap
}

// NewWorld builds a shared world for the workload with n users. gap is
// the virtual time between schedule slots; 0 means registry.ActionGap
// (comfortably past the AJAX latency, like single-user replay pacing).
func NewWorld(wl Workload, n int, mode browser.Mode, gap time.Duration) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("multiuser: world needs at least 1 user, got %d", n)
	}
	if gap <= 0 {
		gap = registry.ActionGap
	}
	env, err := registry.NewEnv(mode, registry.WithApps(wl.Apps()...))
	if err != nil {
		return nil, err
	}
	w := &World{Env: env, wl: wl, gap: gap}
	for u := 0; u < n; u++ {
		script := wl.Script(u, n)
		b := browser.New(env.Clock, env.Network, mode)
		w.Users = append(w.Users, &User{
			Index:   u,
			Tag:     script.Tag,
			Browser: b,
			Tab:     b.NewTab(),
			ops:     script.Ops,
		})
	}
	return w, nil
}

// OpCounts returns the world's per-user op counts.
func (w *World) OpCounts() []int {
	counts := make([]int, len(w.Users))
	for i, u := range w.Users {
		counts[i] = len(u.ops)
	}
	return counts
}

// RunSchedule drives the world through the schedule: slot k runs the
// named user's next op, pumps that user's navigations, advances the
// shared clock by the gap, and pumps every tab in user order so async
// work (AJAX, timers) lands identically run after run.
func (w *World) RunSchedule(s Schedule) error {
	if err := s.validate(w.OpCounts()); err != nil {
		return err
	}
	for _, idx := range s.Slots {
		w.step(w.Users[idx])
	}
	w.observe()
	return nil
}

// step runs one schedule slot for user u.
func (w *World) step(u *User) {
	op := u.ops[u.next]
	u.next++
	if u.Err == nil {
		if err := op.Do(w, u); err != nil {
			u.Err = fmt.Errorf("multiuser: user %d op %q: %w", u.Index, op.Desc, err)
		}
		// Click handlers assign window.location; pumping performs the
		// pending navigation inside the user's own slot.
		u.Tab.Pump()
	}
	w.Env.Clock.Advance(w.gap)
	for _, v := range w.Users {
		v.Tab.Pump()
	}
	w.observe()
}

// observe folds the shared server state into the world's coverage
// bitmap: the per-app state lane (registry.CoverageSource, chained
// exactly like errmodel.Snapshot) plus the per-session lane
// (registry.SessionCoverageSource), which is what lets the explorer
// tell cross-user interference from single-user novelty.
func (w *World) observe() {
	for _, name := range w.Env.AppNames() {
		st, ok := w.Env.State(name)
		if !ok {
			continue
		}
		if cs, ok := st.(registry.CoverageSource); ok {
			amark := fnv1a.AddString(fnv1a.AddString(fnv1a.Offset, "app"), name)
			for _, m := range cs.CoverageMarks() {
				w.cov.Set(fnv1a.AddUint64(amark, m))
			}
		}
		if scs, ok := st.(registry.SessionCoverageSource); ok {
			smark := fnv1a.AddString(fnv1a.AddString(fnv1a.Offset, "session"), name)
			for _, m := range scs.SessionCoverageMarks() {
				w.cov.Set(fnv1a.AddUint64(smark, m))
			}
		}
	}
}

// Coverage returns the world's accumulated coverage bitmap.
func (w *World) Coverage() *errmodel.Bitmap {
	bm := w.cov
	return &bm
}

// Violations runs the workload check over the finished world. Op
// failures surface first, as "op-error" violations — a user whose
// script broke must be visible, not silently excluded from checks.
func (w *World) Violations() []Violation {
	var out []Violation
	for _, u := range w.Users {
		if u.Err != nil {
			out = append(out, Violation{Kind: "op-error", Detail: u.Err.Error()})
		}
	}
	return append(out, w.wl.Check(w)...)
}
