package multiuser

import (
	"context"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
)

func TestScheduleCodecRoundTrip(t *testing.T) {
	s := Schedule{Users: 3, Slots: []int{0, 1, 0, 2, 1, 2}}
	text := s.String()
	if text != "users:3;slots:0,1,0,2,1,2" {
		t.Fatalf("codec form = %q", text)
	}
	got, err := ParseSchedule(text)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", text, err)
	}
	if got.String() != text {
		t.Fatalf("round trip %q -> %q", text, got.String())
	}
}

func TestParseScheduleRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"slots:0,1",
		"users:0;slots:",
		"users:2;slots:2",  // slot out of range
		"users:2;slots:-1", // negative slot
		"users:x;slots:0",
		"users:2;slots:0,,1",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestSequentialIsLinearExtension(t *testing.T) {
	counts := []int{2, 3, 1}
	s := Sequential(counts)
	if err := s.validate(counts); err != nil {
		t.Fatalf("sequential schedule invalid: %v", err)
	}
	if s.String() != "users:3;slots:0,0,1,1,1,2" {
		t.Fatalf("sequential = %q", s.String())
	}
}

func TestExploreSchedulesDeterministicAndValid(t *testing.T) {
	counts := []int{2, 2, 2}
	a := ExploreSchedules(counts, 7, 12)
	b := ExploreSchedules(counts, 7, 12)
	if len(a) != len(b) {
		t.Fatalf("same seed, %d vs %d schedules", len(a), len(b))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
		if err := a[i].validate(counts); err != nil {
			t.Errorf("schedule %q invalid: %v", a[i], err)
		}
		if seen[a[i].String()] {
			t.Errorf("schedule %q duplicated", a[i])
		}
		seen[a[i].String()] = true
	}
	if a[0].String() != Sequential(counts).String() {
		t.Fatalf("first schedule %q is not the sequential base", a[0])
	}
	if len(a) < 2 {
		t.Fatalf("explorer found no perturbed schedules")
	}
}

func TestExploreSchedulesExhaustsSmallSpaces(t *testing.T) {
	// One user, two ops: exactly one linear extension exists.
	got := ExploreSchedules([]int{2}, 1, 50)
	if len(got) != 1 {
		t.Fatalf("single-user world has %d schedules, want 1", len(got))
	}
}

// runWorld executes one schedule of a workload and returns the world.
func runWorld(t *testing.T, name string, n int, s Schedule) *World {
	t.Helper()
	wl, err := LookupWorkload(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(wl, n, browser.DeveloperMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunSchedule(s); err != nil {
		t.Fatal(err)
	}
	for _, u := range w.Users {
		if u.Err != nil {
			t.Fatalf("user %d failed: %v", u.Index, u.Err)
		}
	}
	return w
}

func violationKinds(vs []Violation) []string {
	var kinds []string
	for _, v := range vs {
		kinds = append(kinds, v.Kind)
	}
	return kinds
}

func TestSequentialScheduleIsContentionFree(t *testing.T) {
	for _, name := range []string{"sites-notes", "docs-tally", "yahoo-presence", "mixed"} {
		wl, err := LookupWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		n := 3
		w := runWorld(t, name, n, Sequential(wl.OpCounts(n)))
		if vs := w.Violations(); len(vs) != 0 {
			t.Errorf("%s: sequential schedule raised %v", name, vs)
		}
	}
}

func TestInterleavedScheduleLosesUpdate(t *testing.T) {
	// Both users render the empty notes list before either saves: the
	// second save overwrites the first user's note.
	w := runWorld(t, "sites-notes", 2, Schedule{Users: 2, Slots: []int{0, 1, 0, 1}})
	vs := w.Violations()
	if len(vs) != 1 || vs[0].Kind != "lost-update" {
		t.Fatalf("violations = %v, want one lost-update", vs)
	}
	st := w.Env.MustState(apps.SitesName).(*apps.Sites)
	if notes := st.Notes(); len(notes) != 1 {
		t.Fatalf("final notes = %v, want exactly the surviving note", notes)
	}
}

func TestInterleavedScheduleReadsStaleTally(t *testing.T) {
	// Both users render tally=0 and bake "+1 -> 1" into the page; both
	// commit 1, so one increment vanishes.
	w := runWorld(t, "docs-tally", 2, Schedule{Users: 2, Slots: []int{0, 1, 0, 1}})
	vs := w.Violations()
	if len(vs) != 1 || vs[0].Kind != "stale-read" {
		t.Fatalf("violations = %v, want one stale-read", vs)
	}
	st := w.Env.MustState(apps.DocsName).(*apps.Docs)
	if st.Tally() != 1 {
		t.Fatalf("tally = %d, want 1 (one lost increment)", st.Tally())
	}
}

func TestInterleavedScheduleCollidesSessions(t *testing.T) {
	// User 1 announces between user 0's hello and read: the portal
	// greets user 0 with user 1's name.
	w := runWorld(t, "yahoo-presence", 2, Schedule{Users: 2, Slots: []int{0, 1, 0, 1}})
	vs := w.Violations()
	if len(vs) != 1 || vs[0].Kind != "session-collision" {
		t.Fatalf("violations = %v, want one session-collision", vs)
	}
}

func TestWorldsAreDeterministic(t *testing.T) {
	s := Schedule{Users: 2, Slots: []int{0, 1, 0, 1}}
	a := runWorld(t, "mixed", 2, s)
	b := runWorld(t, "mixed", 2, s)
	av, bv := a.Violations(), b.Violations()
	if len(av) != len(bv) {
		t.Fatalf("violations diverged: %v vs %v", av, bv)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("violation %d diverged: %v vs %v", i, av[i], bv[i])
		}
	}
	if a.Coverage().Fingerprint() != b.Coverage().Fingerprint() {
		t.Fatalf("coverage diverged: %s vs %s", a.Coverage().Fingerprint(), b.Coverage().Fingerprint())
	}
}

func TestSessionLaneSeparatesUsers(t *testing.T) {
	// Two users, same server state contributions, but distinct
	// sessions: the session lane must tell a 2-user world from a 1-user
	// world that reached the same app state.
	wl, err := LookupWorkload("yahoo-presence")
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewWorld(wl, 2, browser.DeveloperMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential: user 1 announces last in both worlds, so the
	// app-state lane (lastName) converges; only sessions differ.
	if err := two.RunSchedule(Sequential(wl.OpCounts(2))); err != nil {
		t.Fatal(err)
	}
	st := two.Env.MustState(apps.YahooName).(*apps.Yahoo)
	marks := st.SessionCoverageMarks()
	if len(marks) != 2 {
		t.Fatalf("2-user world has %d session marks, want 2", len(marks))
	}
	if marks[0] == marks[1] {
		t.Fatalf("distinct sessions hashed to the same mark")
	}
}

func TestCampaignFindsContentionOnlyBug(t *testing.T) {
	// The tentpole acceptance check: the interleaving explorer finds
	// the seeded lost-update...
	rep, err := Run(context.Background(), Options{
		Workload: "sites-notes", Users: 2, Cohort: 2, Budget: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "lost-update" {
			found = true
			if f.Schedule == "" {
				t.Fatalf("finding carries no schedule: %+v", f)
			}
			// The attached schedule must reproduce the finding on its own.
			sched, err := ParseSchedule(f.Schedule)
			if err != nil {
				t.Fatalf("finding schedule %q: %v", f.Schedule, err)
			}
			w := runWorld(t, "sites-notes", sched.Users, sched)
			if kinds := violationKinds(w.Violations()); len(kinds) == 0 || kinds[0] != "lost-update" {
				t.Fatalf("schedule %q did not reproduce: %v", f.Schedule, kinds)
			}
		}
	}
	if !found {
		t.Fatalf("explorer missed the seeded lost-update; findings = %+v", rep.Findings)
	}

	// ...and the equivalent single-user campaign (same users, worlds of
	// one) cannot: no interleaving crosses worlds.
	solo, err := Run(context.Background(), Options{
		Workload: "sites-notes", Users: 2, Cohort: 1, Budget: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Findings) != 0 {
		t.Fatalf("single-user campaign found %+v", solo.Findings)
	}
}

func TestCampaignDeterministicAcrossParallelismAndSharing(t *testing.T) {
	base := Options{Workload: "mixed", Users: 8, Cohort: 4, Budget: 8, Seed: 42}
	var renders []string
	for _, o := range []Options{
		base,
		{Workload: base.Workload, Users: base.Users, Cohort: base.Cohort, Budget: base.Budget, Seed: base.Seed, Parallelism: 8},
		{Workload: base.Workload, Users: base.Users, Cohort: base.Cohort, Budget: base.Budget, Seed: base.Seed, DisableSharing: true},
		{Workload: base.Workload, Users: base.Users, Cohort: base.Cohort, Budget: base.Budget, Seed: base.Seed, Parallelism: 8, DisableSharing: true},
	} {
		rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, rep.Render())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("render %d diverged:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
	if !strings.Contains(renders[0], "findings:") {
		t.Fatalf("render missing findings header:\n%s", renders[0])
	}
}

func TestCampaignSharingOnlyChangesCost(t *testing.T) {
	shared, err := Run(context.Background(), Options{
		Workload: "docs-tally", Users: 12, Cohort: 3, Budget: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Run(context.Background(), Options{
		Workload: "docs-tally", Users: 12, Cohort: 3, Budget: 2, Seed: 5, DisableSharing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Render() != flat.Render() {
		t.Fatalf("sharing changed findings:\n%s\nvs\n%s", shared.Render(), flat.Render())
	}
	// 4 worlds cycling 2 schedules: sharing executes 2, flat all 4.
	if shared.Executed >= flat.Executed {
		t.Fatalf("sharing executed %d, flat %d — sharing saved nothing", shared.Executed, flat.Executed)
	}
	if shared.Shared == 0 {
		t.Fatalf("sharing reported no shared worlds")
	}
}

func TestCampaignThroughExecuteHookMatchesLocal(t *testing.T) {
	opts := Options{Workload: "sites-notes", Users: 6, Cohort: 2, Budget: 4, Seed: 9}
	local, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	remoteCalls := 0
	remote := opts
	remote.Execute = func(ctx context.Context, sjobs []ScheduleJob) ([]ScheduleResult, bool) {
		remoteCalls++
		// Return results deliberately out of order: the campaign must
		// reorder by index.
		out := make([]ScheduleResult, 0, len(sjobs))
		for i := len(sjobs) - 1; i >= 0; i-- {
			out = append(out, ExecuteScheduleJob(sjobs[i]))
		}
		return out, true
	}
	dist, err := Run(context.Background(), remote)
	if err != nil {
		t.Fatal(err)
	}
	if remoteCalls == 0 {
		t.Fatalf("execute hook never called")
	}
	if dist.Render() != local.Render() {
		t.Fatalf("distributed findings diverged:\n%s\nvs\n%s", dist.Render(), local.Render())
	}
}

func TestCampaignProgressReachesAllWorlds(t *testing.T) {
	var last Progress
	_, err := Run(context.Background(), Options{
		Workload: "yahoo-presence", Users: 9, Cohort: 3, Budget: 2, Seed: 3,
		OnProgress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Worlds != 3 || last.WorldsDone != 3 {
		t.Fatalf("final progress = %+v", last)
	}
	if last.Users != 9 {
		t.Fatalf("progress users = %d", last.Users)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := WorkloadNames()
	for _, want := range []string{"sites-notes", "docs-tally", "yahoo-presence", "mixed"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q not registered (have %v)", want, names)
		}
	}
	if _, err := LookupWorkload("no-such-workload"); err == nil {
		t.Errorf("unknown workload lookup succeeded")
	}
}
