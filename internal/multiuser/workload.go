package multiuser

// Workloads: the multi-user scripts the load campaign runs. A workload
// names the applications one shared world hosts, gives every virtual
// user an op script, and checks the finished world for interference
// violations — the contention-only finding class (lost updates, stale
// reads, session collisions) that no single-user campaign can reach.
//
// Workloads are a registry of their own, deliberately separate from
// the scenario registry: scenarios are single-user traces the corpus
// tool records and archives, workloads are parameterized multi-user
// scripts with no recorded form.

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/registry"
)

// Violation is one interference finding a workload check raised.
type Violation struct {
	// Kind is "lost-update", "stale-read", or "session-collision" (new
	// workloads may add kinds; the campaign treats them as opaque).
	Kind string `json:"kind"`
	// Detail describes the specific violation.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Op is one atomic user interaction: one turn of the schedule.
type Op struct {
	// Desc names the op in -list style introspection.
	Desc string
	// Do performs the interaction against the user's tab.
	Do func(w *World, u *User) error
}

// UserScript is one user's role and op chain.
type UserScript struct {
	// Tag names the role; workload checks filter users by it.
	Tag string
	// Ops is the chain the schedule interleaves.
	Ops []Op
}

// Workload is a multi-user script over a set of applications.
type Workload struct {
	// Name is the registry key ("sites-notes", ...).
	Name string
	// Desc is the one-line description -list prints.
	Desc string
	// Apps returns the application plugins one shared world hosts.
	Apps func() []registry.App
	// Script returns user u's role and op chain in an n-user world.
	Script func(u, n int) UserScript
	// Check inspects the finished world for interference violations.
	Check func(w *World) []Violation
}

// OpCounts returns the per-user op counts of an n-user world — the
// chain lengths schedules are linear extensions of.
func (wl Workload) OpCounts(n int) []int {
	counts := make([]int, n)
	for u := 0; u < n; u++ {
		counts[u] = len(wl.Script(u, n).Ops)
	}
	return counts
}

var (
	workloadMu  sync.Mutex
	workloads   = make(map[string]Workload)
	workloadSeq []string
)

// RegisterWorkload adds a workload to the registry; duplicate names
// are a programming error.
func RegisterWorkload(wl Workload) error {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if wl.Name == "" || wl.Apps == nil || wl.Script == nil || wl.Check == nil {
		return fmt.Errorf("multiuser: workload %q is incomplete", wl.Name)
	}
	if _, dup := workloads[wl.Name]; dup {
		return fmt.Errorf("multiuser: workload %q already registered", wl.Name)
	}
	workloads[wl.Name] = wl
	workloadSeq = append(workloadSeq, wl.Name)
	return nil
}

func mustRegisterWorkload(wl Workload) {
	if err := RegisterWorkload(wl); err != nil {
		panic(err)
	}
}

// LookupWorkload resolves a workload by name.
func LookupWorkload(name string) (Workload, error) {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	wl, ok := workloads[name]
	if !ok {
		known := append([]string(nil), workloadSeq...)
		sort.Strings(known)
		return Workload{}, fmt.Errorf("multiuser: unknown workload %q (known: %s)", name, strings.Join(known, ", "))
	}
	return wl, nil
}

// WorkloadNames lists the registered workloads, sorted.
func WorkloadNames() []string {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	names := append([]string(nil), workloadSeq...)
	sort.Strings(names)
	return names
}

// Workloads lists the registered workloads in name order.
func Workloads() []Workload {
	out := make([]Workload, 0)
	for _, name := range WorkloadNames() {
		wl, _ := LookupWorkload(name)
		out = append(out, wl)
	}
	return out
}

// navOp navigates the user's tab to a URL.
func navOp(desc, rawURL string) Op {
	return Op{Desc: desc, Do: func(w *World, u *User) error {
		return u.Tab.Navigate(rawURL)
	}}
}

// clickOp clicks the element the locator finds.
func clickOp(desc string, target registry.Locator) Op {
	return Op{Desc: desc, Do: func(w *World, u *User) error {
		frame, n := registry.Locate(u.Tab, target)
		if n == nil {
			return fmt.Errorf("multiuser: no element %s on %s", target, u.Tab.URL())
		}
		x, y, ok := u.Tab.AbsoluteCenter(frame, n)
		if !ok {
			return fmt.Errorf("multiuser: element %s has no layout box", target)
		}
		u.Tab.Click(x, y)
		return nil
	}}
}

// noteName is user u's note in the sites-notes workload.
func noteName(u int) string { return fmt.Sprintf("note-u%d", u) }

// userName is user u's identity in the yahoo-presence workload.
func userName(u int) string { return fmt.Sprintf("user-%d", u) }

// completed reports whether the user ran every op without error.
func (u *User) completed() bool { return u.Err == nil && u.next == len(u.ops) }

// sitesNotesScript: open the shared notes page (the server composes the
// add-note URL from the list it reads NOW), then click "Add note"
// (which writes back the list as read at render time, plus the user's
// own note) — a read-modify-write whose read happens one schedule turn
// before its write.
func sitesNotesScript(u int) UserScript {
	me := noteName(u)
	return UserScript{Tag: "sites-notes", Ops: []Op{
		navOp("open shared notes as "+me,
			"http://"+apps.SitesHost+"/notes?me="+url.QueryEscape(me)),
		clickOp("add note "+me, registry.ByID("addnote")),
	}}
}

// sitesNotesCheck: every completed user's note must survive into the
// final list; a missing note was overwritten by a concurrent save.
func sitesNotesCheck(w *World) []Violation {
	st := w.Env.MustState(apps.SitesName).(*apps.Sites)
	final := st.Notes()
	have := make(map[string]bool, len(final))
	for _, n := range final {
		have[n] = true
	}
	var out []Violation
	for _, u := range w.Users {
		if u.Tag != "sites-notes" || !u.completed() {
			continue
		}
		if !have[noteName(u.Index)] {
			out = append(out, Violation{
				Kind: "lost-update",
				Detail: fmt.Sprintf("sites notes: %s overwritten (final list %q)",
					noteName(u.Index), strings.Join(final, "|")),
			})
		}
	}
	return out
}

// docsTallyScript: open the shared tally (the page bakes the successor
// value N+1 into the bump control at render time), then click "+1"
// (which stores that stale successor absolutely).
func docsTallyScript() UserScript {
	return UserScript{Tag: "docs-tally", Ops: []Op{
		navOp("open shared tally", "http://"+apps.DocsHost+"/tally"),
		clickOp("bump tally", registry.ByID("bump")),
	}}
}

// docsTallyCheck: the tally must equal the number of completed
// bumpers; anything less means increments were computed from stale
// reads.
func docsTallyCheck(w *World) []Violation {
	st := w.Env.MustState(apps.DocsName).(*apps.Docs)
	bumpers := 0
	for _, u := range w.Users {
		if u.Tag == "docs-tally" && u.completed() {
			bumpers++
		}
	}
	if got := st.Tally(); bumpers > 0 && got != bumpers {
		return []Violation{{
			Kind:   "stale-read",
			Detail: fmt.Sprintf("docs tally: %d of %d increments survived", got, bumpers),
		}}
	}
	return nil
}

// yahooPresenceScript: announce presence (the portal stores the name in
// the session AND in a global last-arrival slot), then reload the
// presence page and record who it greets. The page greets the global
// slot — a session collision whenever another user arrived in between.
func yahooPresenceScript(u int) UserScript {
	me := userName(u)
	return UserScript{Tag: "yahoo-presence", Ops: []Op{
		navOp("announce presence as "+me,
			"http://"+apps.YahooHost+"/presence/hello?name="+url.QueryEscape(me)),
		{Desc: "read presence greeting", Do: func(w *World, u *User) error {
			if err := u.Tab.Navigate("http://" + apps.YahooHost + "/presence"); err != nil {
				return err
			}
			n := registry.Find(u.Tab, registry.ByID("who"))
			if n == nil {
				return fmt.Errorf("multiuser: presence page has no #who on %s", u.Tab.URL())
			}
			u.Obs = append(u.Obs, strings.TrimSpace(n.TextContent()))
			return nil
		}},
	}}
}

// yahooPresenceCheck: each completed user must be greeted by their own
// name; being greeted as someone else is cross-session leakage.
func yahooPresenceCheck(w *World) []Violation {
	var out []Violation
	for _, u := range w.Users {
		if u.Tag != "yahoo-presence" || !u.completed() || len(u.Obs) == 0 {
			continue
		}
		want := "Hello, " + userName(u.Index)
		if got := u.Obs[len(u.Obs)-1]; got != want {
			out = append(out, Violation{
				Kind:   "session-collision",
				Detail: fmt.Sprintf("yahoo presence: %s greeted as %q", userName(u.Index), got),
			})
		}
	}
	return out
}

func init() {
	mustRegisterWorkload(Workload{
		Name: "sites-notes",
		Desc: "shared Sites notes list; saves write back the list as read at render time (lost updates)",
		Apps: func() []registry.App { return []registry.App{apps.SitesApp()} },
		Script: func(u, n int) UserScript {
			return sitesNotesScript(u)
		},
		Check: sitesNotesCheck,
	})
	mustRegisterWorkload(Workload{
		Name: "docs-tally",
		Desc: "shared Docs counter; the +1 control carries the successor read at render time (stale reads)",
		Apps: func() []registry.App { return []registry.App{apps.DocsApp()} },
		Script: func(u, n int) UserScript {
			return docsTallyScript()
		},
		Check: docsTallyCheck,
	})
	mustRegisterWorkload(Workload{
		Name: "yahoo-presence",
		Desc: "Yahoo presence greeting rendered from a portal-global slot instead of the session (session collisions)",
		Apps: func() []registry.App { return []registry.App{apps.YahooApp()} },
		Script: func(u, n int) UserScript {
			return yahooPresenceScript(u)
		},
		Check: yahooPresenceCheck,
	})
	mustRegisterWorkload(Workload{
		Name: "mixed",
		Desc: "Sites, Docs, and Yahoo users sharing one world (all three interference classes)",
		Apps: func() []registry.App {
			return []registry.App{apps.SitesApp(), apps.DocsApp(), apps.YahooApp()}
		},
		Script: func(u, n int) UserScript {
			switch u % 3 {
			case 0:
				return sitesNotesScript(u)
			case 1:
				return docsTallyScript()
			default:
				return yahooPresenceScript(u)
			}
		},
		Check: func(w *World) []Violation {
			out := sitesNotesCheck(w)
			out = append(out, docsTallyCheck(w)...)
			out = append(out, yahooPresenceCheck(w)...)
			return out
		},
	})
}
