package event

import "github.com/dslab-epfl/warr/internal/dom"

// This file exports the serializable portion of an Event for durable
// world images (internal/image). A frame's script globals can hold an
// event past its dispatch — inline handlers bind the live event to the
// interpreter's "event" global — so imaging a browser must capture
// event state including the unexported policy flags. Node references
// (Target, CurrentTarget) are deliberately excluded: the image codec
// translates nodes by id itself.

// State is everything an Event carries except its node references.
type State struct {
	Type    string     `json:"type"`
	Phase   Phase      `json:"phase,omitempty"`
	Bubbles bool       `json:"bubbles,omitempty"`
	Trusted bool       `json:"trusted,omitempty"`
	Mouse   *MouseData `json:"mouse,omitempty"`
	Key     *KeyData   `json:"key,omitempty"`
	Drag    *DragData  `json:"drag,omitempty"`

	DeveloperMode      bool `json:"developerMode,omitempty"`
	PropagationStopped bool `json:"propagationStopped,omitempty"`
	DefaultPrevented   bool `json:"defaultPrevented,omitempty"`
}

// State captures the event's serializable state. Payloads are copied,
// not aliased.
func (e *Event) State() State {
	st := State{
		Type:               e.Type,
		Phase:              e.Phase,
		Bubbles:            e.Bubbles,
		Trusted:            e.Trusted,
		DeveloperMode:      e.developerMode,
		PropagationStopped: e.propagationStopped,
		DefaultPrevented:   e.defaultPrevented,
	}
	if e.Mouse != nil {
		m := *e.Mouse
		st.Mouse = &m
	}
	if e.Key != nil {
		k := *e.Key
		st.Key = &k
	}
	if e.Drag != nil {
		d := *e.Drag
		st.Drag = &d
	}
	return st
}

// FromState rebuilds an event from captured state, re-attaching the
// given node references (which may be nil — an event read back after
// dispatch has no current target).
func FromState(st State, target, currentTarget *dom.Node) *Event {
	e := &Event{
		Type:               st.Type,
		Target:             target,
		CurrentTarget:      currentTarget,
		Phase:              st.Phase,
		Bubbles:            st.Bubbles,
		Trusted:            st.Trusted,
		developerMode:      st.DeveloperMode,
		propagationStopped: st.PropagationStopped,
		defaultPrevented:   st.DefaultPrevented,
	}
	// Payloads are written directly rather than through SetKeyData: the
	// policy check guards scripts mutating live events, not a faithful
	// restore of state that already passed it.
	if st.Mouse != nil {
		e.mouseData = *st.Mouse
		e.Mouse = &e.mouseData
	}
	if st.Key != nil {
		e.keyData = *st.Key
		e.Key = &e.keyData
	}
	if st.Drag != nil {
		e.dragData = *st.Drag
		e.Drag = &e.dragData
	}
	return e
}
