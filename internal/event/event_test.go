package event

import (
	"errors"
	"testing"

	"github.com/dslab-epfl/warr/internal/dom"
)

// tree builds html > body > div#mid > button#btn and returns all four.
func tree() (html, body, mid, btn *dom.Node) {
	html = dom.NewElement("html")
	body = dom.NewElement("body")
	mid = dom.NewElement("div", "id", "mid")
	btn = dom.NewElement("button", "id", "btn")
	html.AppendChild(body)
	body.AppendChild(mid)
	mid.AppendChild(btn)
	return
}

func TestDispatchPhaseOrder(t *testing.T) {
	html, body, mid, btn := tree()
	var got []string
	rec := func(name string, phase Phase) Handler {
		return func(e *Event) {
			got = append(got, name+":"+e.Phase.String())
		}
	}
	Listen(html, TypeClick, true, rec("html", CapturePhase))
	Listen(html, TypeClick, false, rec("html", BubblePhase))
	Listen(body, TypeClick, true, rec("body", CapturePhase))
	Listen(body, TypeClick, false, rec("body", BubblePhase))
	Listen(mid, TypeClick, true, rec("mid", CapturePhase))
	Listen(mid, TypeClick, false, rec("mid", BubblePhase))
	Listen(btn, TypeClick, true, rec("btn", 0))
	Listen(btn, TypeClick, false, rec("btn2", 0))

	Dispatch(New(TypeClick, btn))

	want := []string{
		"html:capture", "body:capture", "mid:capture",
		"btn:target", "btn2:target",
		"mid:bubble", "body:bubble", "html:bubble",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestStopPropagationInCapture(t *testing.T) {
	_, body, _, btn := tree()
	reached := false
	Listen(body, TypeClick, true, func(e *Event) { e.StopPropagation() })
	Listen(btn, TypeClick, false, func(e *Event) { reached = true })
	Dispatch(New(TypeClick, btn))
	if reached {
		t.Fatal("event reached target despite capture-phase stopPropagation")
	}
}

func TestStopPropagationInBubble(t *testing.T) {
	html, _, mid, btn := tree()
	htmlSaw := false
	Listen(mid, TypeClick, false, func(e *Event) { e.StopPropagation() })
	Listen(html, TypeClick, false, func(e *Event) { htmlSaw = true })
	Dispatch(New(TypeClick, btn))
	if htmlSaw {
		t.Fatal("bubble continued past stopPropagation")
	}
}

func TestStopPropagationSameNodeStillRuns(t *testing.T) {
	_, _, _, btn := tree()
	second := false
	Listen(btn, TypeClick, false, func(e *Event) { e.StopPropagation() })
	Listen(btn, TypeClick, false, func(e *Event) { second = true })
	Dispatch(New(TypeClick, btn))
	if !second {
		t.Fatal("stopPropagation must not cancel same-node listeners")
	}
}

func TestPreventDefault(t *testing.T) {
	_, _, _, btn := tree()
	Listen(btn, TypeClick, false, func(e *Event) { e.PreventDefault() })
	if Dispatch(New(TypeClick, btn)) {
		t.Fatal("Dispatch = true, want false after preventDefault")
	}
	if Dispatch(New(TypeKeyDown, btn)) != true {
		t.Fatal("unrelated event should not be default-prevented")
	}
}

func TestNonBubblingEvents(t *testing.T) {
	_, body, _, btn := tree()
	bodySaw := false
	Listen(body, TypeFocus, false, func(e *Event) { bodySaw = true })
	Dispatch(New(TypeFocus, btn))
	if bodySaw {
		t.Fatal("focus must not bubble")
	}
	// but it is seen during capture
	Listen(body, TypeFocus, true, func(e *Event) { bodySaw = true })
	Dispatch(New(TypeFocus, btn))
	if !bodySaw {
		t.Fatal("focus must be visible in capture phase")
	}
}

func TestTrustedEventKeyDataSettable(t *testing.T) {
	_, _, _, btn := tree()
	e := New(TypeKeyPress, btn)
	if !e.Trusted {
		t.Fatal("New must produce trusted events")
	}
	if err := e.SetKeyData(KeyData{Key: "a", Code: 65}); err != nil {
		t.Fatalf("trusted SetKeyData: %v", err)
	}
	if e.Key.Code != 65 {
		t.Fatal("key data not set")
	}
}

func TestSyntheticKeyDataReadOnlyInUserMode(t *testing.T) {
	_, _, _, btn := tree()
	e := NewSynthetic(TypeKeyPress, btn, false)
	err := e.SetKeyData(KeyData{Key: "a", Code: 65})
	if !errors.Is(err, ErrReadOnlyProperty) {
		t.Fatalf("err = %v, want ErrReadOnlyProperty", err)
	}
	if e.Key != nil {
		t.Fatal("key data must remain unset")
	}
}

func TestSyntheticKeyDataSettableInDeveloperMode(t *testing.T) {
	// The paper's replayer enabler: the developer browser allows setting
	// KeyboardEvent properties, making replayed events indistinguishable
	// from user-generated ones.
	_, _, _, btn := tree()
	e := NewSynthetic(TypeKeyPress, btn, true)
	if err := e.SetKeyData(KeyData{Key: "H", Code: 72, Shift: true}); err != nil {
		t.Fatalf("developer-mode SetKeyData: %v", err)
	}
	if e.Key == nil || e.Key.Code != 72 || !e.Key.Shift {
		t.Fatal("key data not applied")
	}
}

func TestSyntheticMouseDataAlwaysSettable(t *testing.T) {
	_, _, _, btn := tree()
	e := NewSynthetic(TypeClick, btn, false)
	e.SetMouseData(MouseData{X: 82, Y: 44})
	if e.Mouse == nil || e.Mouse.X != 82 {
		t.Fatal("mouse data not set")
	}
	e.SetDragData(DragData{DX: 5, DY: -3})
	if e.Drag == nil || e.Drag.DY != -3 {
		t.Fatal("drag data not set")
	}
}

func TestDispatchNilTarget(t *testing.T) {
	if !Dispatch(New(TypeClick, nil)) {
		t.Fatal("nil-target dispatch should allow default")
	}
}

func TestCurrentTargetTracksNode(t *testing.T) {
	_, body, _, btn := tree()
	var seen []*dom.Node
	Listen(body, TypeClick, false, func(e *Event) { seen = append(seen, e.CurrentTarget) })
	Listen(btn, TypeClick, false, func(e *Event) { seen = append(seen, e.CurrentTarget) })
	e := New(TypeClick, btn)
	Dispatch(e)
	if len(seen) != 2 || seen[0] != btn || seen[1] != body {
		t.Fatal("CurrentTarget did not track dispatch nodes")
	}
	if e.CurrentTarget != nil || e.Phase != 0 {
		t.Fatal("event not reset after dispatch")
	}
}

func TestTargetIsStableThroughDispatch(t *testing.T) {
	_, body, _, btn := tree()
	Listen(body, TypeClick, false, func(e *Event) {
		if e.Target != btn {
			t.Error("Target changed during dispatch")
		}
	})
	Dispatch(New(TypeClick, btn))
}

func TestPhaseString(t *testing.T) {
	if CapturePhase.String() != "capture" || TargetPhase.String() != "target" ||
		BubblePhase.String() != "bubble" || Phase(0).String() != "none" {
		t.Fatal("Phase.String broken")
	}
}

func TestListenerAddedDuringDispatchDoesNotRun(t *testing.T) {
	_, _, _, btn := tree()
	late := false
	Listen(btn, TypeClick, false, func(e *Event) {
		Listen(btn, TypeClick, false, func(e *Event) { late = true })
	})
	Dispatch(New(TypeClick, btn))
	if late {
		t.Fatal("listener added during dispatch ran for the same event")
	}
}

func TestNonHandlerListenerIgnored(t *testing.T) {
	_, _, _, btn := tree()
	btn.AddListener(dom.Listener{Type: TypeClick, Fn: "not a handler"})
	// Must not panic.
	Dispatch(New(TypeClick, btn))
}
