package vclock

import (
	"testing"
	"time"
)

func TestNewStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	if got, want := c.Since(Epoch), 5*time.Second; got != want {
		t.Fatalf("Since(Epoch) = %v, want %v", got, want)
	}
}

func TestAdvanceNegativeIsNoOp(t *testing.T) {
	c := New()
	c.Advance(-time.Second)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("negative advance moved clock to %v", c.Now())
	}
}

func TestAfterFuncFiresOnAdvance(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(100*time.Millisecond, func() { fired = true })
	c.Advance(50 * time.Millisecond)
	if fired {
		t.Fatal("timer fired before deadline")
	}
	c.Advance(50 * time.Millisecond)
	if !fired {
		t.Fatal("timer did not fire at deadline")
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestSameDeadlineFiresInRegistrationOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestStopPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !c.Stop(tm) {
		t.Fatal("Stop returned false for pending timer")
	}
	if c.Stop(tm) {
		t.Fatal("second Stop returned true")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestNestedTimersWithinWindowFire(t *testing.T) {
	c := New()
	var events []string
	c.AfterFunc(10*time.Millisecond, func() {
		events = append(events, "outer")
		c.AfterFunc(5*time.Millisecond, func() {
			events = append(events, "inner")
		})
	})
	c.Advance(20 * time.Millisecond)
	if len(events) != 2 || events[0] != "outer" || events[1] != "inner" {
		t.Fatalf("events = %v, want [outer inner]", events)
	}
}

func TestNestedTimerBeyondWindowDefers(t *testing.T) {
	c := New()
	var events []string
	c.AfterFunc(10*time.Millisecond, func() {
		events = append(events, "outer")
		c.AfterFunc(50*time.Millisecond, func() {
			events = append(events, "inner")
		})
	})
	c.Advance(20 * time.Millisecond)
	if len(events) != 1 {
		t.Fatalf("events = %v, want [outer]", events)
	}
	c.Advance(40 * time.Millisecond)
	if len(events) != 2 {
		t.Fatalf("events = %v, want [outer inner]", events)
	}
}

func TestZeroDelayRunsOnRunDue(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(0, func() { fired = true })
	if fired {
		t.Fatal("zero-delay timer ran synchronously")
	}
	c.RunDue()
	if !fired {
		t.Fatal("RunDue did not fire due timer")
	}
}

func TestClockDoesNotRewindWhenAdvancingPastTimers(t *testing.T) {
	c := New()
	c.AfterFunc(time.Millisecond, func() {})
	c.Advance(time.Hour)
	if got := c.Since(Epoch); got != time.Hour {
		t.Fatalf("Since = %v, want 1h", got)
	}
}

func TestDrainEmptiesQueue(t *testing.T) {
	c := New()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 10 {
			c.AfterFunc(time.Millisecond, reschedule)
		}
	}
	c.AfterFunc(time.Millisecond, reschedule)
	if !c.Drain(100) {
		t.Fatal("Drain did not empty a finite chain")
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestDrainBoundsInfiniteChain(t *testing.T) {
	c := New()
	var reschedule func()
	reschedule = func() { c.AfterFunc(time.Millisecond, reschedule) }
	c.AfterFunc(time.Millisecond, reschedule)
	if c.Drain(50) {
		t.Fatal("Drain reported an infinite chain as emptied")
	}
}

func TestPendingTimers(t *testing.T) {
	c := New()
	if n := c.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d, want 0", n)
	}
	c.AfterFunc(time.Second, func() {})
	c.AfterFunc(2*time.Second, func() {})
	if n := c.PendingTimers(); n != 2 {
		t.Fatalf("PendingTimers = %d, want 2", n)
	}
	c.Advance(time.Second)
	if n := c.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1", n)
	}
}

func TestNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a timer on an empty clock")
	}
	c.AfterFunc(3*time.Second, func() {})
	dl, ok := c.NextDeadline()
	if !ok || !dl.Equal(Epoch.Add(3*time.Second)) {
		t.Fatalf("NextDeadline = %v,%v", dl, ok)
	}
}
