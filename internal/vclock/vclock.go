// Package vclock provides a deterministic virtual clock used by the
// simulated browser, network, and replayer.
//
// The paper's browser runs in real time; a reproduction must be
// deterministic so that timing experiments (WaRR command inter-arrival
// times, WebErr timing-error injection, asynchronous application loading)
// are exactly repeatable. All time in this repository flows through a
// Clock: timers fire only when the clock is advanced, and advancing the
// clock runs due timers in deadline order.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a scheduled callback registered with a Clock.
type Timer struct {
	id       uint64
	deadline time.Time
	fn       func()
	stopped  bool
	index    int // heap index, -1 when popped
}

// Deadline returns the virtual time at which the timer fires.
func (t *Timer) Deadline() time.Time { return t.deadline }

// timerHeap orders timers by (deadline, id) so that timers scheduled for
// the same instant fire in registration order, keeping runs deterministic.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].id < h[j].id
	}
	return h[i].deadline.Before(h[j].deadline)
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Clock is a deterministic virtual clock.
//
// The zero value is not usable; construct with New. Clock is safe for
// concurrent use, but callbacks run on the goroutine that calls Advance.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	nextID uint64
	// fireObservers are notified after each timer callback runs. The
	// WaRR Recorder's nondeterminism extension uses this to log timer
	// firings alongside user actions (paper §III-A: the engine-embedded
	// design "can easily be extended to record various sources of
	// nondeterminism (e.g., timers)").
	fireObservers []func(deadline time.Time)
}

// Epoch is the instant at which every new Clock starts. The specific date
// is arbitrary but fixed so traces recorded in tests are byte-identical
// across runs.
var Epoch = time.Date(2011, time.June, 27, 10, 0, 0, 0, time.UTC)

// New returns a Clock positioned at Epoch.
func New() *Clock {
	return &Clock{now: Epoch}
}

// NewAt returns a Clock positioned at the given instant. Environment
// forking uses it so a forked world's clock starts exactly where the
// parent's stood at the checkpoint.
func NewAt(t time.Time) *Clock {
	return &Clock{now: t}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// AfterFunc schedules fn to run once d has elapsed on the virtual clock.
// A non-positive d schedules fn at the current instant; it still runs only
// on the next Advance (or RunDue) call, mirroring how a JavaScript
// setTimeout(fn, 0) runs only after the current script completes.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &Timer{
		id:       c.nextID,
		deadline: c.now.Add(d),
		fn:       fn,
	}
	c.nextID++
	heap.Push(&c.timers, t)
	return t
}

// Stop cancels a timer. It reports whether the timer was still pending.
func (c *Clock) Stop(t *Timer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	heap.Remove(&c.timers, t.index)
	return true
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the window, in deadline order. Callbacks may schedule new
// timers; those also fire if their deadlines fall within the window.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	c.advanceTo(target)
}

// AdvanceTo moves the clock forward to instant t (no-op if t is in the past).
func (c *Clock) AdvanceTo(t time.Time) {
	c.advanceTo(t)
}

func (c *Clock) advanceTo(target time.Time) {
	for {
		c.mu.Lock()
		if len(c.timers) == 0 || c.timers[0].deadline.After(target) {
			if target.After(c.now) {
				c.now = target
			}
			c.mu.Unlock()
			return
		}
		t := heap.Pop(&c.timers).(*Timer)
		if t.deadline.After(c.now) {
			c.now = t.deadline
		}
		fn := t.fn
		observers := c.fireObservers
		c.mu.Unlock()
		if !t.stopped {
			fn()
			for _, o := range observers {
				o(t.deadline)
			}
		}
	}
}

// AddFireObserver registers fn to run after every timer callback, with
// the timer's deadline. Observers cannot be removed; they live as long
// as the clock.
func (c *Clock) AddFireObserver(fn func(deadline time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fireObservers = append(c.fireObservers, fn)
}

// RunDue fires every timer due at or before the current instant without
// moving the clock. It is the virtual analogue of draining a JavaScript
// event loop's macrotask queue.
func (c *Clock) RunDue() {
	c.advanceTo(c.Now())
}

// PendingTimers returns the number of timers not yet fired.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// NextDeadline returns the deadline of the earliest pending timer and
// whether one exists.
func (c *Clock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) == 0 {
		return time.Time{}, false
	}
	return c.timers[0].deadline, true
}

// Drain advances the clock until no timers remain or the step limit is
// reached, and reports whether the queue emptied. It bounds runaway timer
// chains (an application that reschedules itself forever would otherwise
// hang a test).
func (c *Clock) Drain(limit int) bool {
	for i := 0; i < limit; i++ {
		dl, ok := c.NextDeadline()
		if !ok {
			return true
		}
		c.AdvanceTo(dl)
	}
	_, ok := c.NextDeadline()
	return !ok
}
