package registry

import (
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
)

// Copy-on-write application snapshots. Env.Fork does not snapshot every
// hosted application eagerly: a campaign world hosts many applications
// but each trace usually touches one, and building seven unused server
// states per checkpoint dominated the fork cost. Instead, each hosted
// application lives in a stateCell; a fork's cell starts lazy, pointing
// at its parent's cell, and materializes — takes the Snapshot — on the
// first access from either side:
//
//   - the fork's first request to (or State() lookup of) the app pulls
//     the snapshot on demand;
//   - the parent materializes all pending fork cells *before* it next
//     serves or hands out that app's state, so the snapshot always
//     captures the app exactly as it stood at fork time.
//
// An application no side ever touches again never materializes at all.
// The remaining contract (documented on Snapshotter) is the one every
// request-driven application already satisfies: between Fork and the
// next access through the environment, the state is only reached via
// its Handler or Env.State — not through an AppState pointer retained
// from before the fork.

// stateCell holds one environment's instance of one application,
// possibly still lazy (un-materialized fork snapshot).
type stateCell struct {
	app App

	mu sync.Mutex
	// st is the materialized state; nil while the cell is lazy.
	st AppState
	// src is the parent cell a lazy snapshot materializes from.
	src *stateCell
	// pending lists fork cells that still depend on this cell's current
	// state; they are materialized before the state is next touched.
	pending []*stateCell
}

// materialize returns the cell's state, snapshotting from the source
// chain on first use. The cell's lock is never held across the call
// into the source: the source's touch may drain a pending list that
// contains this very cell, re-entering materialize on the same
// goroutine (the nil-check under the lock makes that idempotent).
func (c *stateCell) materialize() AppState {
	c.mu.Lock()
	if c.st != nil {
		st := c.st
		c.mu.Unlock()
		return st
	}
	src := c.src
	c.mu.Unlock()

	srcSt := src.touch()
	c.mu.Lock()
	if c.st == nil {
		c.st = srcSt.(Snapshotter).Snapshot()
		c.src = nil
	}
	st := c.st
	c.mu.Unlock()
	return st
}

// touch materializes every pending fork snapshot of this cell and
// returns its state — the required step before the state is served,
// handed out, reset, or mutated, so pending forks capture it as it
// stood when they forked.
func (c *stateCell) touch() AppState {
	for {
		c.mu.Lock()
		pending := c.pending
		c.pending = nil
		c.mu.Unlock()
		if len(pending) == 0 {
			break
		}
		for _, f := range pending {
			f.materialize()
		}
	}
	return c.materialize()
}

// dependOn registers c as a lazy snapshot of src.
func (c *stateCell) dependOn(src *stateCell) {
	c.src = src
	src.mu.Lock()
	src.pending = append(src.pending, c)
	src.mu.Unlock()
}

// snapshottable reports whether the cell's (possibly still lazy) state
// implements Snapshotter, without materializing anything.
func (c *stateCell) snapshottable() bool {
	c.mu.Lock()
	st, src := c.st, c.src
	c.mu.Unlock()
	if st != nil {
		_, ok := st.(Snapshotter)
		return ok
	}
	return src.snapshottable()
}

// appPort is the netsim.Handler an Env registers per hosted
// application: it routes each request through the cell so pending fork
// snapshots are settled before the handler can mutate the state.
type appPort struct {
	cell *stateCell
}

// Serve implements netsim.Handler.
func (p *appPort) Serve(req *netsim.Request) *netsim.Response {
	return p.cell.touch().Handler().Serve(req)
}
