package registry

import (
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
)

// ScenarioBuilder assembles a Scenario declaratively: each call appends
// one typed step, Verify installs the oracle, and Build returns the
// finished value. It replaces hand-rolled Run closures with an
// introspectable step list — the replay tools can show what a workload
// does without running it.
//
//	sc := registry.NewScenario(calendarApp, "Create event").
//		ClickID("new").
//		Pause().
//		Type("Standup").
//		ClickName("save").
//		Verify(eventWasStored).
//		MustBuild()
type ScenarioBuilder struct {
	sc   Scenario
	errs []error
}

// NewScenario starts a builder for a session against app, starting at
// the app's start URL.
func NewScenario(app App, name string) *ScenarioBuilder {
	b := &ScenarioBuilder{}
	if app == nil {
		b.errs = append(b.errs, fmt.Errorf("scenario %q: nil app", name))
		b.sc = Scenario{Name: name}
		return b
	}
	b.sc = Scenario{Name: name, App: app.Name(), StartURL: app.StartURL()}
	return b
}

// NewScenarioAt starts a builder with an explicit application name and
// start URL — for parameterized workloads (e.g. the Table I search
// scenario, instantiated per engine) or apps not represented by an App
// value.
func NewScenarioAt(appName, name, startURL string) *ScenarioBuilder {
	return &ScenarioBuilder{sc: Scenario{Name: name, App: appName, StartURL: startURL}}
}

// StartAt overrides the start URL.
func (b *ScenarioBuilder) StartAt(url string) *ScenarioBuilder {
	b.sc.StartURL = url
	return b
}

// AddStep appends any Step — the extension point for custom step types.
func (b *ScenarioBuilder) AddStep(s Step) *ScenarioBuilder {
	if s == nil {
		b.errs = append(b.errs, fmt.Errorf("scenario %q: nil step", b.sc.Name))
		return b
	}
	b.sc.Steps = append(b.sc.Steps, s)
	return b
}

// Click clicks the located element.
func (b *ScenarioBuilder) Click(l Locator) *ScenarioBuilder {
	return b.AddStep(ClickStep{Target: l})
}

// ClickID clicks the element with the given id.
func (b *ScenarioBuilder) ClickID(id string) *ScenarioBuilder { return b.Click(ByID(id)) }

// ClickName clicks the element with the given name attribute.
func (b *ScenarioBuilder) ClickName(name string) *ScenarioBuilder { return b.Click(ByName(name)) }

// ClickText clicks the tag element with the given trimmed text.
func (b *ScenarioBuilder) ClickText(tag, text string) *ScenarioBuilder {
	return b.Click(ByTagText(tag, text))
}

// DoubleClick double-clicks the located element.
func (b *ScenarioBuilder) DoubleClick(l Locator) *ScenarioBuilder {
	return b.AddStep(ClickStep{Target: l, Double: true})
}

// DoubleClickID double-clicks the element with the given id.
func (b *ScenarioBuilder) DoubleClickID(id string) *ScenarioBuilder {
	return b.DoubleClick(ByID(id))
}

// Drag drags the located element by (dx, dy).
func (b *ScenarioBuilder) Drag(l Locator, dx, dy int) *ScenarioBuilder {
	return b.AddStep(DragStep{Target: l, DX: dx, DY: dy})
}

// DragName drags the element with the given name attribute by (dx, dy).
func (b *ScenarioBuilder) DragName(name string, dx, dy int) *ScenarioBuilder {
	return b.Drag(ByName(name), dx, dy)
}

// Type types text into the focused element, one keystroke per KeyGap.
func (b *ScenarioBuilder) Type(text string) *ScenarioBuilder {
	return b.AddStep(TypeStep{Text: text})
}

// TypeEvery types text with an explicit per-keystroke gap.
func (b *ScenarioBuilder) TypeEvery(text string, gap time.Duration) *ScenarioBuilder {
	return b.AddStep(TypeStep{Text: text, Gap: gap})
}

// Press presses one named key ("Enter").
func (b *ScenarioBuilder) Press(key string) *ScenarioBuilder {
	return b.AddStep(KeyStep{Key: key})
}

// PressEnter presses the Enter key.
func (b *ScenarioBuilder) PressEnter() *ScenarioBuilder { return b.Press(browser.KeyEnter) }

// Wait advances virtual time by d.
func (b *ScenarioBuilder) Wait(d time.Duration) *ScenarioBuilder {
	return b.AddStep(WaitStep{D: d})
}

// Pause waits one ActionGap — the patient user's think time between
// actions, long enough for asynchronously loaded functionality to
// arrive.
func (b *ScenarioBuilder) Pause() *ScenarioBuilder { return b.Wait(ActionGap) }

// Do appends a custom action described by desc.
func (b *ScenarioBuilder) Do(desc string, fn func(env *Env, tab *browser.Tab) error) *ScenarioBuilder {
	return b.AddStep(FuncStep{Desc: desc, Fn: fn})
}

// Verify installs the scenario's oracle.
func (b *ScenarioBuilder) Verify(fn func(env *Env, tab *browser.Tab) error) *ScenarioBuilder {
	b.sc.VerifyFunc = fn
	return b
}

// Build validates and returns the scenario.
func (b *ScenarioBuilder) Build() (Scenario, error) {
	if len(b.errs) > 0 {
		// Recorded errors already name the scenario.
		return Scenario{}, b.errs[0]
	}
	switch {
	case b.sc.Name == "":
		return Scenario{}, fmt.Errorf("scenario has empty name")
	case b.sc.App == "":
		return Scenario{}, fmt.Errorf("scenario %q has empty app name", b.sc.Name)
	case b.sc.StartURL == "":
		return Scenario{}, fmt.Errorf("scenario %q has empty start URL", b.sc.Name)
	case len(b.sc.Steps) == 0:
		return Scenario{}, fmt.Errorf("scenario %q has no steps", b.sc.Name)
	}
	return b.sc, nil
}

// MustBuild is Build panicking on error — for statically known-good
// scenarios.
func (b *ScenarioBuilder) MustBuild() Scenario {
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
