package registry

import (
	"fmt"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
)

// Scenario pacing: users act a few hundred milliseconds apart, matching
// the elapsed-tick magnitudes of the paper's Fig. 4 trace. ActionGap
// must exceed DefaultAJAXLatency so patient users find asynchronously
// loaded functionality ready.
const (
	ActionGap = 300 * time.Millisecond
	KeyGap    = 200 * time.Millisecond
)

// ---- locators ----

type locatorKind int

const (
	locatorNone locatorKind = iota
	locatorID
	locatorName
	locatorTagText
)

// Locator selects the element a step acts on, mirroring how users find
// targets: by id, by form-control name, or by visible text within a
// tag. The zero value matches nothing.
type Locator struct {
	kind locatorKind
	a, b string
}

// ByID locates the element with the given id attribute.
func ByID(id string) Locator { return Locator{kind: locatorID, a: id} }

// ByName locates the element with the given name attribute.
func ByName(name string) Locator { return Locator{kind: locatorName, a: name} }

// ByTagText locates the element of the given tag whose trimmed text
// content equals text — the way the Fig. 4 trace identifies the
// id-less Save control (//td/div[text()="Save"]).
func ByTagText(tag, text string) Locator { return Locator{kind: locatorTagText, a: tag, b: text} }

// String renders the locator the way error messages show targets.
func (l Locator) String() string {
	switch l.kind {
	case locatorID:
		return "#" + l.a
	case locatorName:
		return "[name=" + l.a + "]"
	case locatorTagText:
		return l.a + "[" + l.b + "]"
	default:
		return "(no locator)"
	}
}

// predicate compiles the locator into a node test.
func (l Locator) predicate() func(*dom.Node) bool {
	switch l.kind {
	case locatorID:
		return func(n *dom.Node) bool { return n.Type == dom.ElementNode && n.ID() == l.a }
	case locatorName:
		return func(n *dom.Node) bool {
			return n.Type == dom.ElementNode && n.AttrOr("name", "") == l.a
		}
	case locatorTagText:
		return func(n *dom.Node) bool {
			return n.Type == dom.ElementNode && n.Tag == l.a &&
				strings.TrimSpace(n.TextContent()) == l.b
		}
	default:
		return func(*dom.Node) bool { return false }
	}
}

// Locate finds the first matching element across all of the tab's
// frames, returning its frame.
func Locate(tab *browser.Tab, l Locator) (*browser.Frame, *dom.Node) {
	pred := l.predicate()
	for _, f := range tab.MainFrame().Descendants() {
		if f.Doc() == nil {
			continue
		}
		if n := f.Doc().Root().Find(pred); n != nil {
			return f, n
		}
	}
	return nil, nil
}

// Find returns the first element the locator matches in any of the
// tab's frames, or nil — the lookup scenario oracles use.
func Find(tab *browser.Tab, l Locator) *dom.Node {
	_, n := Locate(tab, l)
	return n
}

// ---- typed steps ----

// Step is one typed user action of a scenario. Steps drive the tab's
// hardware-level input path (Click, TypeText, Drag, PressKey), which is
// what makes them visible to the engine-embedded WaRR Recorder.
type Step interface {
	// Do performs the action against the tab.
	Do(env *Env, tab *browser.Tab) error
	// String renders the step for -list style introspection.
	String() string
}

// ClickStep clicks (or double-clicks) the center of the located
// element.
type ClickStep struct {
	Target Locator
	Double bool
}

// Do implements Step.
func (s ClickStep) Do(env *Env, tab *browser.Tab) error {
	frame, n := Locate(tab, s.Target)
	if n == nil {
		return fmt.Errorf("scenario: no element %s on %s", s.Target, tab.URL())
	}
	x, y, ok := tab.AbsoluteCenter(frame, n)
	if !ok {
		return fmt.Errorf("scenario: element %s has no layout box", s.Target)
	}
	if s.Double {
		tab.DoubleClick(x, y)
	} else {
		tab.Click(x, y)
	}
	return nil
}

func (s ClickStep) String() string {
	if s.Double {
		return "doubleclick " + s.Target.String()
	}
	return "click " + s.Target.String()
}

// DragStep drags the located element by (DX, DY).
type DragStep struct {
	Target Locator
	DX, DY int
}

// Do implements Step.
func (s DragStep) Do(env *Env, tab *browser.Tab) error {
	frame, n := Locate(tab, s.Target)
	if n == nil {
		return fmt.Errorf("scenario: no element %s on %s", s.Target, tab.URL())
	}
	x, y, ok := tab.AbsoluteCenter(frame, n)
	if !ok {
		return fmt.Errorf("scenario: element %s has no layout box", s.Target)
	}
	tab.Drag(x, y, s.DX, s.DY)
	return nil
}

func (s DragStep) String() string {
	return fmt.Sprintf("drag %s by (%d,%d)", s.Target, s.DX, s.DY)
}

// TypeStep types text into the focused element, one keystroke per Gap
// of virtual time — giving the recorded trace realistic per-key elapsed
// ticks. A zero Gap means KeyGap.
type TypeStep struct {
	Text string
	Gap  time.Duration
}

// Do implements Step.
func (s TypeStep) Do(env *Env, tab *browser.Tab) error {
	gap := s.Gap
	if gap == 0 {
		gap = KeyGap
	}
	for _, ch := range s.Text {
		tab.AdvanceTime(gap)
		tab.TypeText(string(ch))
	}
	return nil
}

func (s TypeStep) String() string { return fmt.Sprintf("type %q", s.Text) }

// KeyStep presses one named key (e.g. "Enter") with its standard
// keyCode — the keystroke whose settable properties require the
// developer-mode browser at replay (§IV-C).
type KeyStep struct {
	Key string
}

// Do implements Step.
func (s KeyStep) Do(env *Env, tab *browser.Tab) error {
	code := browser.NamedKeyCode(s.Key)
	if code == 0 {
		return fmt.Errorf("scenario: unknown key %q", s.Key)
	}
	tab.PressKey(s.Key, code, browser.KeyMods{})
	return nil
}

func (s KeyStep) String() string { return "press " + s.Key }

// WaitStep advances virtual time — the think time separating user
// actions, and the patience window asynchronous loads need.
type WaitStep struct {
	D time.Duration
}

// Do implements Step.
func (s WaitStep) Do(env *Env, tab *browser.Tab) error {
	tab.AdvanceTime(s.D)
	return nil
}

func (s WaitStep) String() string { return "wait " + s.D.String() }

// FuncStep is the escape hatch for actions the typed steps do not
// cover. Desc is what introspection shows.
type FuncStep struct {
	Desc string
	Fn   func(env *Env, tab *browser.Tab) error
}

// Do implements Step.
func (s FuncStep) Do(env *Env, tab *browser.Tab) error {
	if s.Fn == nil {
		return fmt.Errorf("scenario: FuncStep %q has nil Fn", s.Desc)
	}
	return s.Fn(env, tab)
}

func (s FuncStep) String() string {
	if s.Desc != "" {
		return s.Desc
	}
	return "custom step"
}
