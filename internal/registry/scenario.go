package registry

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
)

// Scenario is one scripted user session with a built-in oracle: the
// workloads of Table II, the §VI overhead experiment, and anything a
// plugin registers. A scenario built by the ScenarioBuilder carries
// typed Steps; RunFunc is the legacy escape hatch for hand-rolled
// sessions. Verify is the test oracle deciding whether the session's
// observable effect happened — it is applied to the recording
// environment and again to any environment a trace was replayed in.
type Scenario struct {
	// Name is the interaction, e.g. "Edit site" (Table II's Scenario
	// column).
	Name string
	// App is the application's registered name, e.g. "Google Sites"
	// (Table II's Application column).
	App string
	// StartURL is the page the session starts on.
	StartURL string
	// Steps are the typed user actions, in order.
	Steps []Step
	// RunFunc, when set, performs the user actions instead of Steps.
	RunFunc func(env *Env, tab *browser.Tab) error
	// VerifyFunc checks the session's effect on the application.
	VerifyFunc func(env *Env, tab *browser.Tab) error
}

// Run performs the user actions against a tab already on StartURL:
// RunFunc when set, the typed Steps otherwise.
func (s Scenario) Run(env *Env, tab *browser.Tab) error {
	if s.RunFunc != nil {
		return s.RunFunc(env, tab)
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("scenario %q has no steps", s.Name)
	}
	for i, st := range s.Steps {
		if err := st.Do(env, tab); err != nil {
			return fmt.Errorf("step %d (%s): %w", i+1, st, err)
		}
	}
	return nil
}

// Verify applies the scenario's oracle; a scenario without one passes
// vacuously.
func (s Scenario) Verify(env *Env, tab *browser.Tab) error {
	if s.VerifyFunc == nil {
		return nil
	}
	return s.VerifyFunc(env, tab)
}
