// Package registry is the pluggable application/scenario registry
// behind WaRR's environment API. The paper's value proposition is
// recording *any* AJAX web application and replaying it faithfully
// elsewhere (§III); the registry is what keeps the environment an open
// world: a web application is an App plugin (name, host, start URL, and
// a factory for fresh per-environment server state), a workload is a
// Scenario registered under a command-line name, and every tool — the
// recorder, the replayer, WebErr campaigns, the golden-trace corpus —
// resolves both through a Registry instead of a closed, hard-coded set.
//
// The five applications of the paper's evaluation register themselves
// into the Default registry from internal/apps; external applications
// do the same through the public warr.RegisterApp / warr.RegisterScenario
// surface, after which they are recordable by warr-record, replayable
// by warr-replay, and campaign-testable by weberr with no changes to
// this module.
package registry

import (
	"fmt"
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
)

// App is one pluggable web application: the blueprint every simulated
// environment instantiates. Implementations must be safe to share —
// all per-environment mutable state belongs in the AppState values
// NewState returns, so that two environments hosting the same App never
// observe each other.
type App interface {
	// Name identifies the application ("Google Sites", "Calendar").
	// It is the key scenarios and oracles resolve the app's state by.
	Name() string
	// Host is the network host the application serves ("sites.test").
	// Prefix it with "https://" semantics by choosing the start URL
	// scheme; the host itself is scheme-less.
	Host() string
	// StartURL is the page a recorded session against this application
	// starts on ("http://sites.test/").
	StartURL() string
	// NewState creates fresh, isolated server state for one
	// environment and is called once per NewEnv.
	NewState() AppState
}

// AppState is one environment's instance of an application: its mutable
// server state plus the handler serving it.
type AppState interface {
	// Handler serves the application's requests.
	Handler() netsim.Handler
	// Reset restores the state to what NewState returned — the reset
	// semantics replay isolation relies on when an environment is
	// reused instead of rebuilt.
	Reset()
}

// Snapshotter is the optional checkpoint capability of an AppState.
// States that implement it make their environment forkable: Env.Fork
// snapshots every hosted application, and the campaign executor's
// trie scheduler can then share trace prefixes across replays instead
// of re-executing them.
//
// Snapshot must return a fully independent deep copy: same stored data,
// same issued sessions (webapp.Server.CopySessionsFrom does that half
// for webapp-based servers), and no mutable state shared with the
// original — the two instances will serve concurrent worlds.
//
// States without a Snapshotter still work everywhere: Env.Fork fails
// with *NotSnapshottableError and callers fall back to the semantics
// Snapshot would have reproduced — Reset (or a fresh NewState) followed
// by a replay of the trace prefix from command zero, i.e. exactly what
// the campaign executor's flat mode does for every trace. The fallback
// is correct for any app; it just pays the full prefix re-execution a
// snapshot avoids.
type Snapshotter interface {
	Snapshot() AppState
}

// CoverageSource is the optional coverage capability of an AppState:
// the per-app state-transition lane of the replay coverage signal.
// CoverageMarks derives a set of 64-bit marks from the current server
// state — one mark per distinct observable fact (a stored page, a sent
// mail, a served query, a bucketed counter). Marks must be a pure
// function of the state: a forked or image-restored world reports the
// same marks as the original, and no history beyond what the state
// itself records is required.
//
// States without a CoverageSource still fuzz fine — their campaigns
// fall back to digest-only dedup plus the DOM/event lanes of the
// coverage fingerprint; `weberr -list` surfaces which apps degrade.
type CoverageSource interface {
	CoverageMarks() []uint64
}

// SessionCoverageSource is the optional per-session coverage lane of
// an AppState. Where CoverageMarks hashes what the application stores,
// SessionCoverageMarks hashes WHO the application knows: one mark per
// live server-side session, covering its id and values. In a
// single-user world the lane is one mark that moves with that user's
// session; in a shared multi-user world it separates cross-user
// interference (another session's values changed) from single-user
// novelty, which is exactly the distinction the interleaving
// explorer's coverage bitmap needs.
type SessionCoverageSource interface {
	SessionCoverageMarks() []uint64
}

// HasCoverageMarks probes whether an application's states implement
// CoverageSource, by building one throwaway state.
func HasCoverageMarks(a App) bool {
	if a == nil {
		return false
	}
	_, ok := a.NewState().(CoverageSource)
	return ok
}

// NotSnapshottableError reports an Env.Fork against an application
// whose state does not implement Snapshotter.
type NotSnapshottableError struct{ App string }

func (e *NotSnapshottableError) Error() string {
	return fmt.Sprintf("registry: app %q state does not implement Snapshotter; fork unavailable (use Reset + prefix replay)", e.App)
}

// ---- typed registration and lookup errors ----

// DuplicateAppError reports a second registration under a taken name.
type DuplicateAppError struct{ Name string }

func (e *DuplicateAppError) Error() string {
	return fmt.Sprintf("registry: app %q is already registered", e.Name)
}

// DuplicateScenarioError reports a second registration under a taken
// scenario name.
type DuplicateScenarioError struct{ Name string }

func (e *DuplicateScenarioError) Error() string {
	return fmt.Sprintf("registry: scenario %q is already registered", e.Name)
}

// HostCollisionError reports two applications claiming one network host.
type HostCollisionError struct {
	Host string
	// App is the application being registered; Existing holds the host.
	App, Existing string
}

func (e *HostCollisionError) Error() string {
	return fmt.Sprintf("registry: app %q claims host %q, already served by %q",
		e.App, e.Host, e.Existing)
}

// StartURLCollisionError reports two applications claiming one start URL.
type StartURLCollisionError struct {
	URL string
	// App is the application being registered; Existing holds the URL.
	App, Existing string
}

func (e *StartURLCollisionError) Error() string {
	return fmt.Sprintf("registry: app %q claims start URL %q, already claimed by %q",
		e.App, e.URL, e.Existing)
}

// UnknownAppError reports a lookup of an unregistered application.
type UnknownAppError struct {
	Name string
	// Known lists the registered app names, for the error message.
	Known []string
}

func (e *UnknownAppError) Error() string {
	return fmt.Sprintf("registry: unknown app %q (registered: %s)",
		e.Name, joinOrNone(e.Known))
}

// UnknownScenarioError reports a lookup of an unregistered scenario.
type UnknownScenarioError struct {
	Name string
	// Known lists the registered scenario names, for the error message.
	Known []string
}

func (e *UnknownScenarioError) Error() string {
	return fmt.Sprintf("registry: unknown scenario %q (registered: %s)",
		e.Name, joinOrNone(e.Known))
}

func joinOrNone(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// ---- the registry ----

// ScenarioFactory builds a fresh Scenario value; scenarios are
// registered as factories so every caller gets independent closures.
type ScenarioFactory func() Scenario

// Registry maps names to App plugins and ScenarioFactory values. The
// zero value is not usable; call New. All methods are safe for
// concurrent use.
type Registry struct {
	mu            sync.RWMutex
	apps          map[string]App
	appOrder      []string
	hosts         map[string]string // host -> app name
	startURLs     map[string]string // start URL -> app name
	scenarios     map[string]ScenarioFactory
	scenarioOrder []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		apps:      make(map[string]App),
		hosts:     make(map[string]string),
		startURLs: make(map[string]string),
		scenarios: make(map[string]ScenarioFactory),
	}
}

// RegisterApp adds an application plugin. It fails with a typed error
// when the name, host, or start URL is empty or collides with an
// already-registered application.
func (r *Registry) RegisterApp(a App) error {
	if a == nil {
		return fmt.Errorf("registry: RegisterApp(nil)")
	}
	name, host, url := a.Name(), a.Host(), a.StartURL()
	switch {
	case name == "":
		return fmt.Errorf("registry: app has empty name")
	case host == "":
		return fmt.Errorf("registry: app %q has empty host", name)
	case url == "":
		return fmt.Errorf("registry: app %q has empty start URL", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.apps[name]; ok {
		return &DuplicateAppError{Name: name}
	}
	if owner, ok := r.hosts[host]; ok {
		return &HostCollisionError{Host: host, App: name, Existing: owner}
	}
	if owner, ok := r.startURLs[url]; ok {
		return &StartURLCollisionError{URL: url, App: name, Existing: owner}
	}
	r.apps[name] = a
	r.appOrder = append(r.appOrder, name)
	r.hosts[host] = name
	r.startURLs[url] = name
	return nil
}

// MustRegisterApp is RegisterApp for init-time self-registration: a
// collision is a programming error, so it panics.
func (r *Registry) MustRegisterApp(a App) {
	if err := r.RegisterApp(a); err != nil {
		panic(err)
	}
}

// App resolves a registered application by name.
func (r *Registry) App(name string) (App, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.apps[name]
	if !ok {
		return nil, &UnknownAppError{Name: name, Known: append([]string(nil), r.appOrder...)}
	}
	return a, nil
}

// Apps returns the registered applications in registration order.
func (r *Registry) Apps() []App {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]App, len(r.appOrder))
	for i, name := range r.appOrder {
		out[i] = r.apps[name]
	}
	return out
}

// AppNames returns the registered application names in registration
// order.
func (r *Registry) AppNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.appOrder...)
}

// RegisterScenario adds a named workload. The name is what warr-record,
// warr-replay, and weberr accept on the command line.
func (r *Registry) RegisterScenario(name string, f ScenarioFactory) error {
	if name == "" {
		return fmt.Errorf("registry: scenario has empty name")
	}
	if f == nil {
		return fmt.Errorf("registry: scenario %q has nil factory", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scenarios[name]; ok {
		return &DuplicateScenarioError{Name: name}
	}
	r.scenarios[name] = f
	r.scenarioOrder = append(r.scenarioOrder, name)
	return nil
}

// MustRegisterScenario is RegisterScenario for init-time
// self-registration.
func (r *Registry) MustRegisterScenario(name string, f ScenarioFactory) {
	if err := r.RegisterScenario(name, f); err != nil {
		panic(err)
	}
}

// Scenario builds a fresh instance of the named scenario. An
// unregistered name fails with *UnknownScenarioError — a typed error,
// never a nil-function panic.
func (r *Registry) Scenario(name string) (Scenario, error) {
	r.mu.RLock()
	f, ok := r.scenarios[name]
	known := append([]string(nil), r.scenarioOrder...)
	r.mu.RUnlock()
	if !ok {
		return Scenario{}, &UnknownScenarioError{Name: name, Known: known}
	}
	return f(), nil
}

// ScenarioNames returns the registered scenario names in registration
// order.
func (r *Registry) ScenarioNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.scenarioOrder...)
}

// ---- the default registry ----

// Default is the process-wide registry. The five paper applications
// self-register here from internal/apps; external applications do the
// same through the public API.
var Default = New()

// RegisterApp registers an application in the Default registry.
func RegisterApp(a App) error { return Default.RegisterApp(a) }

// MustRegisterApp registers an application in the Default registry,
// panicking on collision.
func MustRegisterApp(a App) { Default.MustRegisterApp(a) }

// LookupApp resolves an application in the Default registry.
func LookupApp(name string) (App, error) { return Default.App(name) }

// Apps lists the Default registry's applications in registration order.
func Apps() []App { return Default.Apps() }

// AppNames lists the Default registry's application names.
func AppNames() []string { return Default.AppNames() }

// RegisterScenario registers a workload in the Default registry.
func RegisterScenario(name string, f ScenarioFactory) error {
	return Default.RegisterScenario(name, f)
}

// MustRegisterScenario registers a workload in the Default registry,
// panicking on collision.
func MustRegisterScenario(name string, f ScenarioFactory) {
	Default.MustRegisterScenario(name, f)
}

// LookupScenario builds the named scenario from the Default registry.
func LookupScenario(name string) (Scenario, error) { return Default.Scenario(name) }

// ScenarioNames lists the Default registry's scenario names.
func ScenarioNames() []string { return Default.ScenarioNames() }
