package registry

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// Durable environment images. Fork copies a world within one process;
// an image is the same world as bytes — clock instant, network latency,
// every hosted application's server state, and (decoded separately by
// internal/browser) the whole browser stack. ImageMarshaler is the
// serialization capability an AppState opts into, the durable
// counterpart of Snapshotter: Snapshot deep-copies in memory, Marshal
// round-trips through bytes, and both must land on a state the other
// world cannot observe.

// ImageMarshaler is the optional durable-image capability of an
// AppState. MarshalImage serializes the state's mutable content — the
// same content Snapshot would copy; for webapp-based servers that
// includes the issued sessions (webapp.Server.ExportSessions).
// UnmarshalImage restores that content into a state freshly built by
// the App's NewState, replacing whatever NewState seeded. The encoding
// is the application's own business, but it must be deterministic:
// identical states must marshal to identical bytes, because image
// identity (and the distributed executor's image store) is keyed by
// content digest.
type ImageMarshaler interface {
	MarshalImage() ([]byte, error)
	UnmarshalImage(data []byte) error
}

// NotImageableError reports an image operation against an application
// whose state does not implement ImageMarshaler.
type NotImageableError struct{ App string }

func (e *NotImageableError) Error() string {
	return fmt.Sprintf("registry: app %q state does not implement ImageMarshaler; image unavailable (replay the trace prefix instead)", e.App)
}

// AppImage is one application's serialized server state.
type AppImage struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// EnvImage is the environment-level half of a world image: the virtual
// instant, the network latency, and every hosted application's state.
// The browser half is a browser.Image, decoded onto the clock and
// network this half reconstructs.
type EnvImage struct {
	Now     time.Time  `json:"now"`
	Latency int64      `json:"latencyNS"`
	Apps    []AppImage `json:"apps"`
}

// EncodeImage captures the environment half of a world image. It fails
// with *NotImageableError when a hosted application's state does not
// implement ImageMarshaler. Like State, it settles pending fork
// snapshots before touching each state.
func (e *Env) EncodeImage() (*EnvImage, error) {
	img := &EnvImage{
		Now:     e.Clock.Now(),
		Latency: int64(e.Network.Latency()),
		Apps:    make([]AppImage, 0, len(e.apps)),
	}
	for _, a := range e.apps {
		name := a.Name()
		st := e.cells[name].touch()
		m, ok := st.(ImageMarshaler)
		if !ok {
			return nil, &NotImageableError{App: name}
		}
		data, err := m.MarshalImage()
		if err != nil {
			return nil, fmt.Errorf("registry: marshaling app %q: %w", name, err)
		}
		img.Apps = append(img.Apps, AppImage{Name: name, Data: data})
	}
	return img, nil
}

// RestoreEnv rebuilds an environment from its image halves: the clock
// is recreated at the imaged instant, the network at the imaged
// latency, each hosted application's state is built fresh and loaded
// from its AppImage, and the browser image is decoded onto them. The
// application selection works like NewEnv (default: the Default
// registry) but serves as the pool of definitions the imaged names
// resolve against: the image decides what the restored world hosts. A
// process may well register more applications than the one that
// captured the image — a worker linking a plugin the coordinator does
// not — and must still restore it faithfully, because an image is a
// closed world and widening it on restore would silently change what
// the campaign tests. An imaged app with no definition in the
// selection is unrecoverable.
func RestoreEnv(img *EnvImage, bimg *browser.Image, opts ...EnvOption) (*Env, *browser.DecodedImage, error) {
	cfg := envConfig{latency: DefaultAJAXLatency}
	for _, o := range opts {
		o(&cfg)
	}
	var selected []App
	if cfg.registry != nil {
		selected = cfg.registry.Apps()
	} else if len(cfg.apps) == 0 {
		selected = Default.Apps()
	}
	selected = append(selected, cfg.apps...)

	pool := make(map[string]App, len(selected))
	for _, a := range selected {
		if _, dup := pool[a.Name()]; dup {
			return nil, nil, &DuplicateAppError{Name: a.Name()}
		}
		pool[a.Name()] = a
	}

	clock := vclock.NewAt(img.Now)
	network := netsim.New(clock)
	network.SetLatency(time.Duration(img.Latency))

	e := &Env{
		Clock:   clock,
		Network: network,
		cells:   make(map[string]*stateCell, len(img.Apps)),
	}
	for _, ai := range img.Apps {
		name := ai.Name
		a, ok := pool[name]
		if !ok {
			return nil, nil, fmt.Errorf("registry: image hosts app %q, which is not registered in this process", name)
		}
		if _, dup := e.cells[name]; dup {
			return nil, nil, fmt.Errorf("registry: image lists app %q twice", name)
		}
		st := a.NewState()
		if st == nil {
			return nil, nil, fmt.Errorf("registry: app %q NewState returned nil", name)
		}
		m, ok := st.(ImageMarshaler)
		if !ok {
			return nil, nil, &NotImageableError{App: name}
		}
		if err := m.UnmarshalImage(ai.Data); err != nil {
			return nil, nil, fmt.Errorf("registry: unmarshaling app %q: %w", name, err)
		}
		cell := &stateCell{app: a, st: st}
		e.apps = append(e.apps, a)
		e.cells[name] = cell
		network.Register(a.Host(), &appPort{cell: cell})
	}

	dec, err := browser.DecodeImage(bimg, clock, network)
	if err != nil {
		return nil, nil, err
	}
	e.Browser = dec.Browser()
	e.Browser.SetWorld(e)
	return e, dec, nil
}
