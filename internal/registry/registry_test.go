package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
)

// fakeApp is a minimal plugin for registry tests: a one-page site whose
// state counts the requests it served.
type fakeApp struct {
	name, host, url string
}

func (a fakeApp) Name() string     { return a.name }
func (a fakeApp) Host() string     { return a.host }
func (a fakeApp) StartURL() string { return a.url }
func (a fakeApp) NewState() AppState {
	return &fakeState{owner: a.name}
}

type fakeState struct {
	owner string

	mu   sync.Mutex
	hits int
}

func (s *fakeState) Handler() netsim.Handler {
	return netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return netsim.OK(fmt.Sprintf(
			"<html><head><title>%s</title></head><body><div id=\"who\">%s</div></body></html>",
			s.owner, s.owner))
	})
}

func (s *fakeState) Reset() {
	s.mu.Lock()
	s.hits = 0
	s.mu.Unlock()
}

func (s *fakeState) Hits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

func alphaApp() fakeApp { return fakeApp{"Alpha", "alpha.test", "http://alpha.test/"} }
func betaApp() fakeApp  { return fakeApp{"Beta", "beta.test", "http://beta.test/"} }

func TestRegisterAppDuplicateName(t *testing.T) {
	r := New()
	if err := r.RegisterApp(alphaApp()); err != nil {
		t.Fatal(err)
	}
	err := r.RegisterApp(fakeApp{"Alpha", "other.test", "http://other.test/"})
	var dup *DuplicateAppError
	if !errors.As(err, &dup) {
		t.Fatalf("second registration: got %v, want *DuplicateAppError", err)
	}
	if dup.Name != "Alpha" {
		t.Errorf("error names %q", dup.Name)
	}
	// The first registration must be untouched.
	if got := r.AppNames(); len(got) != 1 || got[0] != "Alpha" {
		t.Errorf("registry after failed registration: %v", got)
	}
}

func TestRegisterAppHostCollision(t *testing.T) {
	r := New()
	if err := r.RegisterApp(alphaApp()); err != nil {
		t.Fatal(err)
	}
	err := r.RegisterApp(fakeApp{"Other", "alpha.test", "http://alpha.test/start"})
	var coll *HostCollisionError
	if !errors.As(err, &coll) {
		t.Fatalf("got %v, want *HostCollisionError", err)
	}
	if coll.Host != "alpha.test" || coll.Existing != "Alpha" || coll.App != "Other" {
		t.Errorf("collision details: %+v", coll)
	}
}

func TestRegisterAppStartURLCollision(t *testing.T) {
	r := New()
	if err := r.RegisterApp(alphaApp()); err != nil {
		t.Fatal(err)
	}
	// Distinct host, same advertised start URL: a registry cannot route
	// a recorded trace's start page to two applications.
	err := r.RegisterApp(fakeApp{"Mirror", "mirror.test", "http://alpha.test/"})
	var coll *StartURLCollisionError
	if !errors.As(err, &coll) {
		t.Fatalf("got %v, want *StartURLCollisionError", err)
	}
	if coll.URL != "http://alpha.test/" || coll.Existing != "Alpha" {
		t.Errorf("collision details: %+v", coll)
	}
}

func TestUnknownScenarioIsTypedError(t *testing.T) {
	r := New()
	if err := r.RegisterScenario("known", func() Scenario { return Scenario{Name: "known"} }); err != nil {
		t.Fatal(err)
	}
	_, err := r.Scenario("missing")
	var unknown *UnknownScenarioError
	if !errors.As(err, &unknown) {
		t.Fatalf("got %v, want *UnknownScenarioError", err)
	}
	if unknown.Name != "missing" {
		t.Errorf("error names %q", unknown.Name)
	}
	if len(unknown.Known) != 1 || unknown.Known[0] != "known" {
		t.Errorf("known list = %v", unknown.Known)
	}
}

func TestDuplicateScenarioRegistration(t *testing.T) {
	r := New()
	f := func() Scenario { return Scenario{Name: "x"} }
	if err := r.RegisterScenario("x", f); err != nil {
		t.Fatal(err)
	}
	err := r.RegisterScenario("x", f)
	var dup *DuplicateScenarioError
	if !errors.As(err, &dup) {
		t.Fatalf("got %v, want *DuplicateScenarioError", err)
	}
}

func TestUnknownAppLookup(t *testing.T) {
	r := New()
	_, err := r.App("nowhere")
	var unknown *UnknownAppError
	if !errors.As(err, &unknown) {
		t.Fatalf("got %v, want *UnknownAppError", err)
	}
}

// TestEnvHostsTwoAppsIsolated registers two applications in one Env and
// checks both serve from their own state, while a sibling Env sees
// none of the traffic.
func TestEnvHostsTwoAppsIsolated(t *testing.T) {
	env, err := NewEnv(browser.UserMode, WithApps(alphaApp(), betaApp()))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewEnv(browser.UserMode, WithApps(alphaApp(), betaApp()))
	if err != nil {
		t.Fatal(err)
	}

	tab := env.Browser.NewTab()
	if err := tab.Navigate("http://alpha.test/"); err != nil {
		t.Fatal(err)
	}
	if got := tab.Title(); got != "Alpha" {
		t.Errorf("alpha page title = %q", got)
	}
	if err := tab.Navigate("http://beta.test/"); err != nil {
		t.Fatal(err)
	}
	if got := tab.Title(); got != "Beta" {
		t.Errorf("beta page title = %q", got)
	}

	alpha := env.MustState("Alpha").(*fakeState)
	beta := env.MustState("Beta").(*fakeState)
	if alpha.Hits() == 0 || beta.Hits() == 0 {
		t.Errorf("hits: alpha %d, beta %d — both apps must serve in one env",
			alpha.Hits(), beta.Hits())
	}
	if got := other.MustState("Alpha").(*fakeState).Hits(); got != 0 {
		t.Errorf("sibling env's alpha served %d requests", got)
	}

	// Reset restores both apps' initial state.
	env.Reset()
	if alpha.Hits() != 0 || beta.Hits() != 0 {
		t.Error("Reset left hit counts behind")
	}
}

func TestNewEnvRejectsCollidingApps(t *testing.T) {
	// Collisions among explicitly selected (possibly unregistered) apps
	// must fail env construction with the same typed errors.
	_, err := NewEnv(browser.UserMode, WithApps(alphaApp(), alphaApp()))
	var dup *DuplicateAppError
	if !errors.As(err, &dup) {
		t.Fatalf("got %v, want *DuplicateAppError", err)
	}
	_, err = NewEnv(browser.UserMode, WithApps(
		alphaApp(), fakeApp{"Alias", "alpha.test", "http://alpha.test/x"}))
	var hostColl *HostCollisionError
	if !errors.As(err, &hostColl) {
		t.Fatalf("got %v, want *HostCollisionError", err)
	}
}

func TestNewEnvEmptySelection(t *testing.T) {
	if _, err := NewEnv(browser.UserMode, WithRegistry(New())); err == nil {
		t.Fatal("empty registry produced an environment")
	}
}

func TestMustStatePanicsWithTypedError(t *testing.T) {
	env, err := NewEnv(browser.UserMode, WithApps(alphaApp()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustState on an unhosted app did not panic")
		}
		if _, ok := r.(*UnknownAppError); !ok {
			t.Fatalf("panic value %T, want *UnknownAppError", r)
		}
	}()
	env.MustState("Beta")
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewScenario(alphaApp(), "empty").Build(); err == nil {
		t.Error("builder accepted a scenario with no steps")
	}
	if _, err := NewScenarioAt("", "nameless app", "http://x/").ClickID("a").Build(); err == nil {
		t.Error("builder accepted an empty app name")
	}
	sc, err := NewScenario(alphaApp(), "ok").ClickID("who").Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.App != "Alpha" || sc.StartURL != "http://alpha.test/" || len(sc.Steps) != 1 {
		t.Errorf("built scenario: %+v", sc)
	}
	if got := sc.Steps[0].String(); got != "click #who" {
		t.Errorf("step renders as %q", got)
	}
}
