package registry

import (
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// DefaultAJAXLatency is the one-way network latency for asynchronous
// loads. The Sites editor takes this long to become usable after the
// Edit click — the window in which timing errors strike (§V-B).
const DefaultAJAXLatency = 150 * time.Millisecond

// Env is one isolated simulated world: a virtual clock, an in-memory
// network, a browser, and one fresh AppState per hosted application.
// Each Env is fully isolated — fresh server state, fresh clock — which
// is what makes record-in-one-environment, replay-in-another
// meaningful.
type Env struct {
	Clock   *vclock.Clock
	Network *netsim.Network
	Browser *browser.Browser

	apps   []App
	states map[string]AppState
}

// EnvOption configures NewEnv.
type EnvOption func(*envConfig)

type envConfig struct {
	registry *Registry
	apps     []App
	latency  time.Duration
}

// WithApps hosts exactly the given applications (plus any selected by
// WithRegistry) instead of the Default registry's full set. The apps
// need not be registered anywhere — an Env is its own closed world.
func WithApps(apps ...App) EnvOption {
	return func(c *envConfig) { c.apps = append(c.apps, apps...) }
}

// WithRegistry hosts every application of the given registry.
func WithRegistry(r *Registry) EnvOption {
	return func(c *envConfig) { c.registry = r }
}

// WithLatency overrides the environment's one-way network latency
// (default DefaultAJAXLatency).
func WithLatency(d time.Duration) EnvOption {
	return func(c *envConfig) { c.latency = d }
}

// NewEnv builds an isolated environment hosting the selected
// applications on a fresh network, with a browser of the given mode.
// With no options it hosts every application of the Default registry —
// the "demo world" of the paper's evaluation plus anything the process
// registered. It fails with a typed error when two selected
// applications collide on name, host, or start URL.
func NewEnv(mode browser.Mode, opts ...EnvOption) (*Env, error) {
	cfg := envConfig{latency: DefaultAJAXLatency}
	for _, o := range opts {
		o(&cfg)
	}
	var selected []App
	if cfg.registry != nil {
		selected = cfg.registry.Apps()
	} else if len(cfg.apps) == 0 {
		selected = Default.Apps()
	}
	selected = append(selected, cfg.apps...)
	if len(selected) == 0 {
		return nil, fmt.Errorf("registry: NewEnv with no applications (empty registry and no WithApps)")
	}

	clock := vclock.New()
	network := netsim.New(clock)
	network.SetLatency(cfg.latency)

	e := &Env{
		Clock:   clock,
		Network: network,
		states:  make(map[string]AppState, len(selected)),
	}
	hosts := make(map[string]string, len(selected))
	urls := make(map[string]string, len(selected))
	for _, a := range selected {
		name, host, url := a.Name(), a.Host(), a.StartURL()
		if _, ok := e.states[name]; ok {
			return nil, &DuplicateAppError{Name: name}
		}
		if owner, ok := hosts[host]; ok {
			return nil, &HostCollisionError{Host: host, App: name, Existing: owner}
		}
		if owner, ok := urls[url]; ok {
			return nil, &StartURLCollisionError{URL: url, App: name, Existing: owner}
		}
		st := a.NewState()
		if st == nil {
			return nil, fmt.Errorf("registry: app %q NewState returned nil", name)
		}
		e.apps = append(e.apps, a)
		e.states[name] = st
		hosts[host] = name
		urls[url] = name
		network.Register(host, st.Handler())
	}

	e.Browser = browser.New(clock, network, mode)
	return e, nil
}

// MustNewEnv is NewEnv panicking on error — the right call when the
// selected applications come from a registry, whose registration
// already rejected every collision NewEnv re-checks.
func MustNewEnv(mode browser.Mode, opts ...EnvOption) *Env {
	e, err := NewEnv(mode, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Apps returns the environment's applications in hosting order.
func (e *Env) Apps() []App { return append([]App(nil), e.apps...) }

// AppNames returns the environment's application names in hosting
// order.
func (e *Env) AppNames() []string {
	names := make([]string, len(e.apps))
	for i, a := range e.apps {
		names[i] = a.Name()
	}
	return names
}

// State returns the environment's instance of the named application.
func (e *Env) State(appName string) (AppState, bool) {
	st, ok := e.states[appName]
	return st, ok
}

// MustState is State for oracles that know the application is hosted;
// it panics with a typed error when it is not.
func (e *Env) MustState(appName string) AppState {
	st, ok := e.states[appName]
	if !ok {
		panic(&UnknownAppError{Name: appName, Known: e.AppNames()})
	}
	return st
}

// Reset restores every hosted application to its initial server state.
// The clock, network, and browser are untouched: Reset models the
// server side starting over, not the world rebooting.
func (e *Env) Reset() {
	for _, st := range e.states {
		st.Reset()
	}
}

// BrowserFactory returns a campaign EnvFactory: each call builds a
// fresh isolated environment (per the options) and hands out its
// browser. It panics on an invalid app selection at construction time —
// before any campaign starts — by building one throwaway environment
// eagerly.
func BrowserFactory(mode browser.Mode, opts ...EnvOption) func() *browser.Browser {
	MustNewEnv(mode, opts...) // validate the selection once, loudly
	return func() *browser.Browser { return MustNewEnv(mode, opts...).Browser }
}
