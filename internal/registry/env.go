package registry

import (
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// DefaultAJAXLatency is the one-way network latency for asynchronous
// loads. The Sites editor takes this long to become usable after the
// Edit click — the window in which timing errors strike (§V-B).
const DefaultAJAXLatency = 150 * time.Millisecond

// Env is one isolated simulated world: a virtual clock, an in-memory
// network, a browser, and one fresh AppState per hosted application.
// Each Env is fully isolated — fresh server state, fresh clock — which
// is what makes record-in-one-environment, replay-in-another
// meaningful.
type Env struct {
	Clock   *vclock.Clock
	Network *netsim.Network
	Browser *browser.Browser

	apps  []App
	cells map[string]*stateCell
}

// EnvOption configures NewEnv.
type EnvOption func(*envConfig)

type envConfig struct {
	registry *Registry
	apps     []App
	latency  time.Duration
}

// WithApps hosts exactly the given applications (plus any selected by
// WithRegistry) instead of the Default registry's full set. The apps
// need not be registered anywhere — an Env is its own closed world.
func WithApps(apps ...App) EnvOption {
	return func(c *envConfig) { c.apps = append(c.apps, apps...) }
}

// WithRegistry hosts every application of the given registry.
func WithRegistry(r *Registry) EnvOption {
	return func(c *envConfig) { c.registry = r }
}

// WithLatency overrides the environment's one-way network latency
// (default DefaultAJAXLatency).
func WithLatency(d time.Duration) EnvOption {
	return func(c *envConfig) { c.latency = d }
}

// NewEnv builds an isolated environment hosting the selected
// applications on a fresh network, with a browser of the given mode.
// With no options it hosts every application of the Default registry —
// the "demo world" of the paper's evaluation plus anything the process
// registered. It fails with a typed error when two selected
// applications collide on name, host, or start URL.
func NewEnv(mode browser.Mode, opts ...EnvOption) (*Env, error) {
	cfg := envConfig{latency: DefaultAJAXLatency}
	for _, o := range opts {
		o(&cfg)
	}
	var selected []App
	if cfg.registry != nil {
		selected = cfg.registry.Apps()
	} else if len(cfg.apps) == 0 {
		selected = Default.Apps()
	}
	selected = append(selected, cfg.apps...)
	if len(selected) == 0 {
		return nil, fmt.Errorf("registry: NewEnv with no applications (empty registry and no WithApps)")
	}

	clock := vclock.New()
	network := netsim.New(clock)
	network.SetLatency(cfg.latency)

	e := &Env{
		Clock:   clock,
		Network: network,
		cells:   make(map[string]*stateCell, len(selected)),
	}
	hosts := make(map[string]string, len(selected))
	urls := make(map[string]string, len(selected))
	for _, a := range selected {
		name, host, url := a.Name(), a.Host(), a.StartURL()
		if _, ok := e.cells[name]; ok {
			return nil, &DuplicateAppError{Name: name}
		}
		if owner, ok := hosts[host]; ok {
			return nil, &HostCollisionError{Host: host, App: name, Existing: owner}
		}
		if owner, ok := urls[url]; ok {
			return nil, &StartURLCollisionError{URL: url, App: name, Existing: owner}
		}
		st := a.NewState()
		if st == nil {
			return nil, fmt.Errorf("registry: app %q NewState returned nil", name)
		}
		cell := &stateCell{app: a, st: st}
		e.apps = append(e.apps, a)
		e.cells[name] = cell
		hosts[host] = name
		urls[url] = name
		// Requests route through the cell (cow.go) so that, once this
		// environment has forks, their pending snapshots settle before
		// a request can mutate the state.
		network.Register(host, &appPort{cell: cell})
	}

	e.Browser = browser.New(clock, network, mode)
	// The environment is the browser's world: forking the browser forks
	// the whole Env, server state included.
	e.Browser.SetWorld(e)
	return e, nil
}

// MustNewEnv is NewEnv panicking on error — the right call when the
// selected applications come from a registry, whose registration
// already rejected every collision NewEnv re-checks.
func MustNewEnv(mode browser.Mode, opts ...EnvOption) *Env {
	e, err := NewEnv(mode, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Apps returns the environment's applications in hosting order.
func (e *Env) Apps() []App { return append([]App(nil), e.apps...) }

// AppNames returns the environment's application names in hosting
// order.
func (e *Env) AppNames() []string {
	names := make([]string, len(e.apps))
	for i, a := range e.apps {
		names[i] = a.Name()
	}
	return names
}

// State returns the environment's instance of the named application.
// Handing the state out settles any pending fork snapshots first, so a
// caller mutating it directly cannot leak post-fork changes into forks
// (cow.go).
func (e *Env) State(appName string) (AppState, bool) {
	cell, ok := e.cells[appName]
	if !ok {
		return nil, false
	}
	return cell.touch(), true
}

// MustState is State for oracles that know the application is hosted;
// it panics with a typed error when it is not.
func (e *Env) MustState(appName string) AppState {
	st, ok := e.State(appName)
	if !ok {
		panic(&UnknownAppError{Name: appName, Known: e.AppNames()})
	}
	return st
}

// Reset restores every hosted application to its initial server state.
// The clock, network, and browser are untouched: Reset models the
// server side starting over, not the world rebooting.
func (e *Env) Reset() {
	for _, cell := range e.cells {
		cell.touch().Reset()
	}
}

// Fork deep-copies the whole environment at this instant: every hosted
// application's state is snapshotted through its Snapshotter, the
// network and clock are recreated (clock at the same virtual instant),
// and the browser — cookies, tabs, DOM, script state, pending timers
// and AJAX — is cloned onto them. The fork and the original evolve
// independently from here.
//
// Fork fails with *NotSnapshottableError when a hosted application's
// state does not implement Snapshotter. The documented fallback is the
// one flat campaign execution always uses: build a fresh environment
// (or Reset this one) and replay the trace prefix from command zero —
// behaviourally identical, minus the saved prefix execution.
func (e *Env) Fork() (*Env, error) {
	ne, _, err := e.fork()
	return ne, err
}

// ForkBrowser implements browser.World: it forks the environment and
// returns the browser-level fork (with its tab/frame mapping).
func (e *Env) ForkBrowser(b *browser.Browser) (*browser.Fork, error) {
	if b != e.Browser {
		return nil, fmt.Errorf("registry: ForkBrowser called with a browser this environment does not own")
	}
	_, fk, err := e.fork()
	return fk, err
}

func (e *Env) fork() (*Env, *browser.Fork, error) {
	clock := vclock.NewAt(e.Clock.Now())
	network := netsim.New(clock)
	network.SetLatency(e.Network.Latency())

	ne := &Env{
		Clock:   clock,
		Network: network,
		apps:    append([]App(nil), e.apps...),
		cells:   make(map[string]*stateCell, len(e.cells)),
	}
	for _, a := range e.apps {
		name := a.Name()
		parent := e.cells[name]
		if !parent.snapshottable() {
			return nil, nil, &NotSnapshottableError{App: name}
		}
		// Copy-on-write: the snapshot is deferred until either world
		// touches the application again (cow.go). Applications the
		// campaign never exercises are never copied at all.
		cell := &stateCell{app: a}
		cell.dependOn(parent)
		ne.cells[name] = cell
		network.Register(a.Host(), &appPort{cell: cell})
	}

	fk, err := e.Browser.CloneOnto(clock, network)
	if err != nil {
		return nil, nil, err
	}
	ne.Browser = fk.Browser
	ne.Browser.SetWorld(ne)
	return ne, fk, nil
}

// BrowserFactory returns a campaign EnvFactory: each call builds a
// fresh isolated environment (per the options) and hands out its
// browser. It panics on an invalid app selection at construction time —
// before any campaign starts — by building one throwaway environment
// eagerly.
func BrowserFactory(mode browser.Mode, opts ...EnvOption) func() *browser.Browser {
	MustNewEnv(mode, opts...) // validate the selection once, loudly
	return func() *browser.Browser { return MustNewEnv(mode, opts...).Browser }
}
