// Package fnv1a holds the FNV-1a hashing primitives shared by the
// repository's incremental digests and bounded caches (campaign prefix
// digests, the script parse cache, the browser page-template cache).
// One copy of the constants and byte loop keeps the call sites in sync.
package fnv1a

// Offset is the FNV-1a 64-bit offset basis — the hash of nothing.
const Offset uint64 = 14695981039346656037

// Prime is the FNV-1a 64-bit prime.
const Prime uint64 = 1099511628211

// AddByte chains one byte into h.
func AddByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= Prime
	return h
}

// AddString chains every byte of s into h.
func AddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= Prime
	}
	return h
}

// AddUint64 chains v into h, low byte first.
func AddUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= Prime
		v >>= 8
	}
	return h
}

// String hashes s from the offset basis.
func String(s string) uint64 {
	return AddString(Offset, s)
}
