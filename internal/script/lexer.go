// Package script implements the JavaScript-like language that the
// simulated web applications use for their client-side code.
//
// Why a full interpreter exists in this reproduction: the paper's central
// difficulty is that "the client-side code can dynamically change the
// content of a web page" (§I) — GMail regenerates element ids on load,
// Google Sites loads its editor asynchronously and crashes on an
// uninitialized variable when a user types too early (§V-C), and event
// handlers must actually run during replay for fidelity to be measurable.
// A static DOM cannot exhibit any of that; scripts running inside the
// simulated browser can.
//
// The language is a strict subset of JavaScript: var, functions and
// closures, if/else, while, for, arrays, object literals, strings,
// numbers, booleans, null/undefined, and the usual operators. Reference
// and type errors surface exactly where JavaScript raises them, which is
// what makes the Google Sites bug reproducible.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind identifies a lexical token.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokNumber
	tokString
	tokIdent
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true,
	"else": true, "while": true, "for": true, "true": true,
	"false": true, "null": true, "undefined": true, "break": true,
	"continue": true, "typeof": true,
}

// multi-character punctuators, longest first so maximal munch works.
var puncts = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "=", "+", "-", "*", "/", "%", "<", ">",
	"!", "(", ")", "{", "}", "[", "]", ";", ",", ".", ":", "?",
}

// SyntaxError reports a lexing or parsing failure with a line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: syntax error at line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src. Comments (// and /* */) are stripped.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			if err := l.blockComment(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.string(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.number()
		case isIdentStart(rune(c)):
			l.ident()
		default:
			if !l.punct() {
				return nil, &SyntaxError{Line: l.line, Msg: fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

func (l *lexer) blockComment() error {
	start := l.line
	l.pos += 2
	for l.pos < len(l.src) {
		if strings.HasPrefix(l.src[l.pos:], "*/") {
			l.pos += 2
			return nil
		}
		if l.src[l.pos] == '\n' {
			l.line++
		}
		l.pos++
	}
	return &SyntaxError{Line: start, Msg: "unterminated block comment"}
}

func (l *lexer) string(q byte) error {
	start := l.line
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case q:
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), line: start})
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return &SyntaxError{Line: start, Msg: "unterminated string"}
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"':
				b.WriteByte(e)
			default:
				b.WriteByte(e)
			}
			l.pos++
		case '\n':
			return &SyntaxError{Line: start, Msg: "newline in string literal"}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return &SyntaxError{Line: start, Msg: "unterminated string"}
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	var n float64
	fmt.Sscanf(text, "%g", &n)
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: n, line: l.line})
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) punct() bool {
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
			l.pos += len(p)
			return true
		}
	}
	return false
}
