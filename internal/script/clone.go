package script

import "sort"

// This file implements deep cloning of interpreter state — the script
// half of environment forking. A forked browser frame needs a copy of
// its global environment in which every mutable script value (objects,
// arrays, closures and the scope chains they capture) is independent of
// the original, while host values (DOM handles, native functions bound
// to the original frame) are translated by a host-supplied hook.

// Names returns the scope's own variable names in sorted order (not
// including parent scopes). Sorting makes clone traversal — and
// therefore any allocation pattern derived from it — deterministic.
func (s *Scope) Names() []string {
	names := make([]string, 0, len(s.vars))
	for name := range s.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Parent returns the enclosing scope (nil for a global scope).
func (s *Scope) Parent() *Scope { return s.parent }

// ForEachOwn visits the scope's own bindings in unspecified order —
// the allocation-free iteration for callers that do not need Names()'s
// sorting.
func (s *Scope) ForEachOwn(fn func(name string, v Value)) {
	for name, v := range s.vars {
		fn(name, v)
	}
}

// OwnLookup resolves name in this scope only, without consulting the
// parent chain.
func (s *Scope) OwnLookup(name string) (Value, bool) {
	v, ok := s.vars[name]
	return v, ok
}

// Cloner deep-copies script values and the scope chains closures
// capture. It memoizes every object, array, function, and scope it
// copies, so aliasing and cycles in the source survive the clone
// (two variables holding the same array still alias one array in the
// copy).
type Cloner struct {
	// mapHost translates values the cloner does not own: anything that
	// is not a primitive, *Object, *Array, or *Function. Returning
	// ok == false keeps the original value — correct for immutable
	// hosts, a documented sharing for exotic ones.
	mapHost func(Value) (Value, bool)

	values map[Value]Value
	scopes map[*Scope]*Scope
}

// NewCloner returns a cloner using mapHost (which may be nil) for host
// values.
func NewCloner(mapHost func(Value) (Value, bool)) *Cloner {
	return &Cloner{
		mapHost: mapHost,
		values:  make(map[Value]Value),
		scopes:  make(map[*Scope]*Scope),
	}
}

// MapScope pre-seeds a scope translation: every cloned closure whose
// chain reaches old is re-rooted at new. Forking maps each frame's old
// global scope to the fresh interpreter's global scope this way.
func (c *Cloner) MapScope(old, new *Scope) { c.scopes[old] = new }

// Value deep-copies v.
func (c *Cloner) Value(v Value) Value {
	switch v.(type) {
	case nil, undefinedType, bool, float64, string:
		return v
	}
	if dup, ok := c.values[v]; ok {
		return dup
	}
	// The host hook runs before the generic handling so a host can
	// substitute its own translation even for plain objects it installed
	// (the browser rebinds its console object this way).
	if c.mapHost != nil {
		if dup, ok := c.mapHost(v); ok {
			c.values[v] = dup
			return dup
		}
	}
	switch x := v.(type) {
	case *Array:
		dup := &Array{Elems: make([]Value, len(x.Elems))}
		c.values[v] = dup
		for i, e := range x.Elems {
			dup.Elems[i] = c.Value(e)
		}
		return dup
	case *Object:
		dup := NewObject()
		c.values[v] = dup
		for _, k := range x.Keys() {
			dup.props[k] = c.Value(x.props[k])
		}
		return dup
	case *Function:
		dup := &Function{name: x.name, params: x.params, body: x.body}
		c.values[v] = dup
		// The AST (params, body) is immutable and shared; only the
		// captured environment is copied.
		dup.env = c.Scope(x.env)
		return dup
	default:
		return v
	}
}

// Scope deep-copies a scope chain, following parents until a pre-seeded
// mapping (or nil) is reached.
func (c *Cloner) Scope(s *Scope) *Scope {
	if s == nil {
		return nil
	}
	if dup, ok := c.scopes[s]; ok {
		return dup
	}
	dup := &Scope{vars: make(map[string]Value, len(s.vars))}
	c.scopes[s] = dup
	dup.parent = c.Scope(s.parent)
	for name, v := range s.vars {
		dup.vars[name] = c.Value(v)
	}
	return dup
}
