package script

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
)

// roundTrip encodes every global the script defined in src, pushes the
// records through JSON (proving wire-safety), and decodes them into a
// fresh interpreter. Both interpreters are returned for probing.
func roundTrip(t *testing.T, src string, encodeHost func(Value) (any, bool), decodeHost func(json.RawMessage) (Value, error)) (orig, restored *Interp) {
	t.Helper()
	orig = New()
	if _, err := orig.Run(src); err != nil {
		t.Fatalf("running source: %v", err)
	}

	enc := NewValueEncoder(encodeHost)
	enc.TagScope(orig.Global, "global")
	type global struct {
		Name string
		Val  EncodedValue
	}
	var globals []global
	for _, name := range orig.Global.Names() {
		v, _ := orig.Global.OwnLookup(name)
		ev, err := enc.Encode(v)
		if err != nil {
			t.Fatalf("encoding global %q: %v", name, err)
		}
		globals = append(globals, global{name, ev})
	}

	// Everything must survive JSON marshaling — the image container
	// stores exactly these records.
	wire, err := json.Marshal(struct {
		Heap    []*HeapRecord
		Scopes  []*ScopeRecord
		Globals []global
	}{enc.Heap(), enc.Scopes(), globals})
	if err != nil {
		t.Fatalf("marshaling records: %v", err)
	}
	var decoded struct {
		Heap    []*HeapRecord
		Scopes  []*ScopeRecord
		Globals []global
	}
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatalf("unmarshaling records: %v", err)
	}

	restored = New()
	dec := NewValueDecoder(decoded.Heap, decoded.Scopes, decodeHost)
	dec.BindScope("global", restored.Global)
	if err := dec.Resolve(); err != nil {
		t.Fatalf("resolving decoded graph: %v", err)
	}
	for _, g := range decoded.Globals {
		v, err := dec.Decode(g.Val)
		if err != nil {
			t.Fatalf("decoding global %q: %v", g.Name, err)
		}
		restored.Define(g.Name, v)
	}
	return orig, restored
}

// probe runs src in both interpreters and asserts identical results.
func probe(t *testing.T, orig, restored *Interp, src string) {
	t.Helper()
	want, err1 := orig.Run(src)
	got, err2 := restored.Run(src)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("probe %q: original err %v, restored err %v", src, err1, err2)
	}
	if ToString(want) != ToString(got) {
		t.Fatalf("probe %q: original %q, restored %q", src, ToString(want), ToString(got))
	}
}

func TestCodecRoundTripPrimitivesAndHeap(t *testing.T) {
	src := `
var n = 42.5;
var neg = -0.0;
var s = "héllo\nworld";
var b = true;
var z = null;
var u = undefined;
var arr = [1, "two", [3, 4]];
var alias = arr;
var obj = {a: 1, nested: {deep: "yes"}, list: arr};
obj.self = obj;
var counter = 10;
function inc() { counter = counter + 1; return counter; }
var adder = function(x) { return function(y) { return x + y; }; };
var add5 = adder(5);
`
	orig, restored := roundTrip(t, src, nil, nil)

	for _, p := range []string{
		`n + 1`,
		`s.length`,
		`b ? "t" : "f"`,
		`typeof z`,
		`typeof u`,
		`arr[2][1]`,
		`obj.nested.deep`,
		`obj.self.a`,
		`inc() + inc()`, // closure over global: mutates counter identically
		`counter`,
		`add5(7)`, // closure over a serialized local scope
	} {
		probe(t, orig, restored, p)
	}

	// Aliasing must survive: pushing through one name shows through the
	// other, and through the object holding the same array.
	probe(t, orig, restored, `alias.push(99); arr[arr.length - 1] + obj.list.length`)

	// Independence: mutating the restored world must not touch the
	// original.
	if _, err := restored.Run(`counter = 1000; arr.push("x")`); err != nil {
		t.Fatalf("mutating restored: %v", err)
	}
	v, err := orig.Run(`counter`)
	if err != nil || ToString(v) != "12" {
		t.Fatalf("original counter after restored mutation: %v (err %v), want 12", ToString(v), err)
	}
}

func TestCodecRoundTripNonFiniteNumbers(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e308, 5e-324} {
		ev, err := NewValueEncoder(nil).Encode(f)
		if err != nil {
			t.Fatalf("encoding %v: %v", f, err)
		}
		dec := NewValueDecoder(nil, nil, nil)
		if err := dec.Resolve(); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(ev)
		if err != nil {
			t.Fatalf("decoding %v: %v", f, err)
		}
		g, ok := got.(float64)
		if !ok {
			t.Fatalf("decoded %v to %T", f, got)
		}
		if math.IsNaN(f) {
			if !math.IsNaN(g) {
				t.Fatalf("NaN decoded to %v", g)
			}
		} else if g != f || math.Signbit(g) != math.Signbit(f) {
			t.Fatalf("%v decoded to %v", f, g)
		}
	}
}

func TestCodecHostTokens(t *testing.T) {
	clicks := 0
	host := &NativeFunc{Name: "click", Fn: func([]Value) (Value, error) {
		clicks++
		return float64(clicks), nil
	}}
	orig := New()
	orig.Define("click", host)
	if _, err := orig.Run(`var saved = click; var box = {fn: click};`); err != nil {
		t.Fatal(err)
	}

	enc := NewValueEncoder(func(v Value) (any, bool) {
		if v == Value(host) {
			return "host:click", true
		}
		return nil, false
	})
	enc.TagScope(orig.Global, "global")
	encoded := map[string]EncodedValue{}
	for _, name := range []string{"saved", "box"} {
		v, _ := orig.Global.OwnLookup(name)
		ev, err := enc.Encode(v)
		if err != nil {
			t.Fatalf("encoding %q: %v", name, err)
		}
		encoded[name] = ev
	}

	restoredClicks := 0
	replacement := &NativeFunc{Name: "click", Fn: func([]Value) (Value, error) {
		restoredClicks++
		return float64(restoredClicks), nil
	}}
	decoded := 0
	dec := NewValueDecoder(enc.Heap(), enc.Scopes(), func(raw json.RawMessage) (Value, error) {
		var tok string
		if err := json.Unmarshal(raw, &tok); err != nil {
			return nil, err
		}
		if tok != "host:click" {
			return nil, fmt.Errorf("unexpected token %q", tok)
		}
		decoded++
		return replacement, nil
	})
	if err := dec.Resolve(); err != nil {
		t.Fatal(err)
	}
	restored := New()
	for name, ev := range encoded {
		v, err := dec.Decode(ev)
		if err != nil {
			t.Fatalf("decoding %q: %v", name, err)
		}
		restored.Define(name, v)
	}

	// The same token decodes to the identical value everywhere it
	// appears, mirroring the clone path's host memoization.
	if decoded != 1 {
		t.Fatalf("host hook invoked %d times, want 1 (memoized)", decoded)
	}
	sv, _ := restored.Global.OwnLookup("saved")
	bv, _ := restored.Global.OwnLookup("box")
	if sv != Value(replacement) {
		t.Fatalf("saved decoded to %T, want the replacement host", sv)
	}
	if bv.(*Object).props["fn"] != Value(replacement) {
		t.Fatal("box.fn is not the replacement host")
	}
	if v, err := restored.Run(`saved() + box.fn()`); err != nil || ToString(v) != "3" {
		t.Fatalf("calling restored host: %v (err %v), want 3", ToString(v), err)
	}
	if clicks != 0 {
		t.Fatalf("original host invoked %d times by restored world", clicks)
	}
}

func TestCodecUnsupportedValue(t *testing.T) {
	orphan := &NativeFunc{Name: "orphan", Fn: func([]Value) (Value, error) { return Undefined, nil }}
	enc := NewValueEncoder(func(Value) (any, bool) { return nil, false })
	_, err := enc.Encode(orphan)
	var ue *UnsupportedValueError
	if !errors.As(err, &ue) {
		t.Fatalf("encoding unclaimed host: err %v, want *UnsupportedValueError", err)
	}
	if ue.Value != Value(orphan) {
		t.Fatalf("error carries %v, want the orphan", ue.Value)
	}
}

func TestCodecRejectsCorruptRecords(t *testing.T) {
	dec := NewValueDecoder([]*HeapRecord{{ID: 1, Kind: "arr"}}, nil, nil)
	if err := dec.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(EncodedValue{T: "ref", ID: 99}); err == nil {
		t.Fatal("dangling heap reference decoded without error")
	}
	if _, err := dec.Decode(EncodedValue{T: "mystery"}); err == nil {
		t.Fatal("unknown value kind decoded without error")
	}

	bad := NewValueDecoder([]*HeapRecord{{ID: 1, Kind: "wat"}}, nil, nil)
	if err := bad.Resolve(); err == nil {
		t.Fatal("unknown heap kind resolved without error")
	}

	unbound := NewValueDecoder([]*HeapRecord{{ID: 1, Kind: "fn", Env: &ScopeRef{Tok: "nowhere"}}}, nil, nil)
	if err := unbound.Resolve(); err == nil {
		t.Fatal("unbound scope token resolved without error")
	}
}

func TestCodecASTRoundTripAllNodes(t *testing.T) {
	// One function body exercising every AST node kind the parser can
	// produce inside a function.
	src := `
function everything(a, b) {
	var x = 1;
	var noinit;
	function inner(p) { return p * 2; }
	if (a > b) { x = x + 1; } else { x = x - 1; }
	if (x) { x = x; }
	while (x < 5) { x = x + 1; if (x == 3) { continue; } if (x == 4) { break; } }
	for (var i = 0; i < 3; i = i + 1) { x = x + i; }
	for (;;) { break; }
	var arr = [1, "two", true, null, undefined];
	var obj = {k: 1, j: "s"};
	var f = function(q) { return q; };
	var t = typeof x;
	var neg = -x;
	var not = !x;
	x++;
	--x;
	var cmp = (a >= b) && (a != b) || false;
	var pick = x > 2 ? "big" : "small";
	obj.k += arr[1 + 0].length;
	return inner(x) + f(x) + obj.k + (noinit == undefined ? 1 : 0);
}
var everything = everything;
`
	orig, restored := roundTrip(t, src, nil, nil)
	probe(t, orig, restored, `everything(7, 3)`)
	probe(t, orig, restored, `everything(1, 9)`)
}
