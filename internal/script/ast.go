package script

// AST node types. Every node records the source line for error messages.

type node interface{ nodeLine() int }

type base struct{ line int }

func (b base) nodeLine() int { return b.line }

// ---- statements ----

type program struct {
	base
	stmts []node
}

type varDecl struct {
	base
	name string
	init node // nil when declared without initializer
}

type funcDecl struct {
	base
	name   string
	params []string
	body   []node
}

type exprStmt struct {
	base
	expr node
}

type ifStmt struct {
	base
	cond node
	then []node
	alt  []node // nil when no else
}

type whileStmt struct {
	base
	cond node
	body []node
}

type forStmt struct {
	base
	init node // statement or nil
	cond node // nil = true
	post node // expression or nil
	body []node
}

type returnStmt struct {
	base
	expr node // nil = undefined
}

type breakStmt struct{ base }

type continueStmt struct{ base }

// ---- expressions ----

type numberLit struct {
	base
	val float64
}

type stringLit struct {
	base
	val string
}

type boolLit struct {
	base
	val bool
}

type nullLit struct{ base }

type undefinedLit struct{ base }

type identExpr struct {
	base
	name string
}

type arrayLit struct {
	base
	elems []node
}

type objectLit struct {
	base
	keys []string
	vals []node
}

type funcLit struct {
	base
	params []string
	body   []node
}

type unaryExpr struct {
	base
	op      string // "!", "-", "typeof"
	operand node
}

type updateExpr struct {
	base
	op      string // "++" or "--"
	prefix  bool
	operand node // identExpr or memberExpr
}

type binaryExpr struct {
	base
	op          string
	left, right node
}

type logicalExpr struct {
	base
	op          string // "&&" or "||"
	left, right node
}

type condExpr struct {
	base
	cond, then, alt node
}

type assignExpr struct {
	base
	op     string // "=", "+=", "-=", "*=", "/="
	target node   // identExpr or memberExpr
	value  node
}

type callExpr struct {
	base
	callee node
	args   []node
}

type memberExpr struct {
	base
	object   node
	property string // non-empty for obj.prop
	index    node   // non-nil for obj[expr]
}
