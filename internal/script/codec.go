package script

// This file implements serialization of interpreter state — the script
// half of durable world images (WARR-IMAGE). Where clone.go deep-copies
// a value graph between two live interpreters, the codec here flattens
// the same graph — objects, arrays, closures, the scope chains they
// capture, and the host values a browser frame installed — into
// JSON-marshalable records and rebuilds it in a fresh interpreter.
//
// The design mirrors Cloner exactly:
//
//   - primitives (null, undefined, bool, number, string) encode inline;
//   - heap values (*Array, *Object, *Function) are assigned an id on
//     first encounter, before recursing, so aliasing and cycles in the
//     source survive the round trip;
//   - host values (DOM handles, native functions, anything the script
//     package does not own) are translated by a caller-supplied hook to
//     an opaque token; the hook runs before the generic handling so a
//     host can claim plain objects it installed (the browser's console
//     object);
//   - scope chains are flattened to records, except scopes the caller
//     tagged (frame global scopes), which are referenced by token and
//     whose variables are not serialized — the browser serializes frame
//     globals itself, filtered against the frame's builtins.
//
// Function bodies are serialized as their AST. The node list in ast.go
// is closed; the codec's switches are exhaustive over it and fail loudly
// on anything unknown, so a new node type cannot silently produce a
// lossy image.

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// EncodedValue is one serialized script value: a primitive inline, a
// reference into the encoder's heap, or an opaque host token.
type EncodedValue struct {
	// T is the value kind: "null", "undef", "bool", "num", "str",
	// "ref" (heap id in ID), or "host" (token in H).
	T string `json:"t"`
	// B carries bool values.
	B bool `json:"b,omitempty"`
	// N carries numbers, formatted with strconv.FormatFloat 'g'/-1 so
	// every float64 — including -0, NaN and the infinities — round-trips.
	N string `json:"n,omitempty"`
	// S carries strings.
	S string `json:"s,omitempty"`
	// ID references a HeapRecord (ids start at 1).
	ID int `json:"id,omitempty"`
	// H is the host token produced by the encoder's EncodeHost hook.
	H json.RawMessage `json:"h,omitempty"`
}

// HeapRecord is one serialized heap value. Kind selects which fields
// are meaningful.
type HeapRecord struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // "arr", "obj", or "fn"

	// Elems holds array elements, in order.
	Elems []EncodedValue `json:"elems,omitempty"`

	// Keys/Vals hold object properties in sorted key order.
	Keys []string       `json:"keys,omitempty"`
	Vals []EncodedValue `json:"vals,omitempty"`

	// Name, Params, Body and Env describe a function.
	Name   string         `json:"name,omitempty"`
	Params []string       `json:"params,omitempty"`
	Body   []*EncodedNode `json:"body,omitempty"`
	Env    *ScopeRef      `json:"env,omitempty"`
}

// ScopeRef references a scope: by record id for scopes the codec owns,
// or by the caller's tag for pre-bound scopes (frame globals).
type ScopeRef struct {
	ID  int    `json:"id,omitempty"`
	Tok string `json:"tok,omitempty"`
}

// ScopeRecord is one serialized scope: its parent link and its own
// bindings in sorted name order. Tagged scopes are never recorded —
// they appear only as ScopeRef tokens.
type ScopeRecord struct {
	ID     int            `json:"id"`
	Parent *ScopeRef      `json:"parent,omitempty"`
	Names  []string       `json:"names,omitempty"`
	Vals   []EncodedValue `json:"vals,omitempty"`
}

// UnsupportedValueError reports a value the codec cannot serialize: a
// host value the EncodeHost hook did not claim. The browser's hook
// claims every host value it mints durably; what remains are ephemeral
// method closures (element.setAttribute pulled into a variable), which
// have no stable identity to serialize.
type UnsupportedValueError struct {
	// Value is the offending value.
	Value Value
}

func (e *UnsupportedValueError) Error() string {
	return fmt.Sprintf("script: value of type %s (%T) cannot be serialized into an image", TypeOf(e.Value), e.Value)
}

// encodeNumber formats a float64 so it round-trips exactly.
func encodeNumber(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func decodeNumber(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("script: bad encoded number %q: %w", s, err)
	}
	return f, nil
}

// ---- encoding ----

// ValueEncoder flattens a script value graph into heap and scope
// records. It memoizes every heap value and scope it encodes, so
// aliasing and cycles survive; encode as many roots as needed with
// Encode, then collect Heap() and Scopes() once.
type ValueEncoder struct {
	// EncodeHost translates values the codec does not own — anything
	// that is not a primitive, *Array, *Object or *Function — into a
	// JSON-marshalable token. It runs before the generic handling, so a
	// host can claim plain objects it installed. Returning ok == false
	// for a value the codec does not own makes Encode fail with
	// *UnsupportedValueError.
	EncodeHost func(Value) (any, bool)

	values    map[Value]EncodedValue
	heap      []*HeapRecord
	scopes    []*ScopeRecord
	scopeIDs  map[*Scope]int
	scopeToks map[*Scope]string
}

// NewValueEncoder returns an encoder using encodeHost (which may be
// nil) for host values.
func NewValueEncoder(encodeHost func(Value) (any, bool)) *ValueEncoder {
	return &ValueEncoder{
		EncodeHost: encodeHost,
		values:     make(map[Value]EncodedValue),
		scopeIDs:   make(map[*Scope]int),
		scopeToks:  make(map[*Scope]string),
	}
}

// TagScope registers a scope the caller owns: references to it encode
// as the token, and its variables are not serialized. Frame global
// scopes are tagged this way — the browser serializes frame globals
// separately, filtered against the frame's builtins.
func (e *ValueEncoder) TagScope(s *Scope, tok string) { e.scopeToks[s] = tok }

// Heap returns the heap records accumulated so far, in id order.
func (e *ValueEncoder) Heap() []*HeapRecord { return e.heap }

// Scopes returns the scope records accumulated so far, in id order.
func (e *ValueEncoder) Scopes() []*ScopeRecord { return e.scopes }

// Encode serializes one value, recording reachable heap values and
// scopes as a side effect.
func (e *ValueEncoder) Encode(v Value) (EncodedValue, error) {
	switch x := v.(type) {
	case nil:
		return EncodedValue{T: "null"}, nil
	case undefinedType:
		return EncodedValue{T: "undef"}, nil
	case bool:
		return EncodedValue{T: "bool", B: x}, nil
	case float64:
		return EncodedValue{T: "num", N: encodeNumber(x)}, nil
	case string:
		return EncodedValue{T: "str", S: x}, nil
	}
	if ev, ok := e.values[v]; ok {
		return ev, nil
	}
	// The host hook runs before the generic handling, mirroring Cloner.
	if e.EncodeHost != nil {
		if tok, ok := e.EncodeHost(v); ok {
			raw, err := json.Marshal(tok)
			if err != nil {
				return EncodedValue{}, fmt.Errorf("script: marshaling host token for %T: %w", v, err)
			}
			ev := EncodedValue{T: "host", H: raw}
			e.values[v] = ev
			return ev, nil
		}
	}
	switch x := v.(type) {
	case *Array:
		rec := e.newHeapRecord("arr")
		ev := EncodedValue{T: "ref", ID: rec.ID}
		e.values[v] = ev // before recursing: cycles and aliasing
		rec.Elems = make([]EncodedValue, len(x.Elems))
		for i, el := range x.Elems {
			enc, err := e.Encode(el)
			if err != nil {
				return EncodedValue{}, err
			}
			rec.Elems[i] = enc
		}
		return ev, nil
	case *Object:
		rec := e.newHeapRecord("obj")
		ev := EncodedValue{T: "ref", ID: rec.ID}
		e.values[v] = ev
		rec.Keys = x.Keys()
		rec.Vals = make([]EncodedValue, len(rec.Keys))
		for i, k := range rec.Keys {
			enc, err := e.Encode(x.props[k])
			if err != nil {
				return EncodedValue{}, err
			}
			rec.Vals[i] = enc
		}
		return ev, nil
	case *Function:
		rec := e.newHeapRecord("fn")
		ev := EncodedValue{T: "ref", ID: rec.ID}
		e.values[v] = ev
		rec.Name = x.name
		rec.Params = x.params
		body, err := encodeNodes(x.body)
		if err != nil {
			return EncodedValue{}, err
		}
		rec.Body = body
		env, err := e.encodeScope(x.env)
		if err != nil {
			return EncodedValue{}, err
		}
		rec.Env = env
		return ev, nil
	default:
		return EncodedValue{}, &UnsupportedValueError{Value: v}
	}
}

func (e *ValueEncoder) newHeapRecord(kind string) *HeapRecord {
	rec := &HeapRecord{ID: len(e.heap) + 1, Kind: kind}
	e.heap = append(e.heap, rec)
	return rec
}

// encodeScope serializes a scope chain, following parents until a
// tagged scope (or nil) is reached.
func (e *ValueEncoder) encodeScope(s *Scope) (*ScopeRef, error) {
	if s == nil {
		return nil, nil
	}
	if tok, ok := e.scopeToks[s]; ok {
		return &ScopeRef{Tok: tok}, nil
	}
	if id, ok := e.scopeIDs[s]; ok {
		return &ScopeRef{ID: id}, nil
	}
	rec := &ScopeRecord{ID: len(e.scopes) + 1}
	e.scopes = append(e.scopes, rec)
	e.scopeIDs[s] = rec.ID // before recursing: closures can alias chains
	parent, err := e.encodeScope(s.parent)
	if err != nil {
		return nil, err
	}
	rec.Parent = parent
	rec.Names = s.Names()
	rec.Vals = make([]EncodedValue, len(rec.Names))
	for i, name := range rec.Names {
		enc, err := e.Encode(s.vars[name])
		if err != nil {
			return nil, err
		}
		rec.Vals[i] = enc
	}
	return &ScopeRef{ID: rec.ID}, nil
}

// ---- decoding ----

// ValueDecoder rebuilds a value graph from heap and scope records.
// Construction is two-phase: Resolve first creates every heap value and
// scope as an empty shell, then fills them in — so cycles, aliasing,
// and closures over serialized scopes all land correctly. Bind tagged
// scopes with BindScope before calling Resolve.
type ValueDecoder struct {
	// DecodeHost rebuilds a host value from the token its encoder
	// produced. It must be non-nil if any encoded value has kind "host".
	DecodeHost func(json.RawMessage) (Value, error)

	heap      []*HeapRecord
	scopeRecs []*ScopeRecord
	vals      map[int]Value
	scopes    map[int]*Scope
	byTok     map[string]*Scope
	hosts     map[string]Value
	resolved  bool
}

// NewValueDecoder returns a decoder over the encoder's heap and scope
// records, using decodeHost (which may be nil when no host values were
// encoded) for host tokens.
func NewValueDecoder(heap []*HeapRecord, scopes []*ScopeRecord, decodeHost func(json.RawMessage) (Value, error)) *ValueDecoder {
	return &ValueDecoder{
		DecodeHost: decodeHost,
		heap:       heap,
		scopeRecs:  scopes,
		vals:       make(map[int]Value),
		scopes:     make(map[int]*Scope),
		byTok:      make(map[string]*Scope),
		hosts:      make(map[string]Value),
	}
}

// BindScope binds a tagged scope token to a live scope — the decode
// counterpart of TagScope. Frame global scopes are bound to the fresh
// interpreter's global scope this way. Must precede Resolve.
func (d *ValueDecoder) BindScope(tok string, s *Scope) { d.byTok[tok] = s }

// Resolve materializes every heap value and scope: shells first, then
// contents. It must be called exactly once, before Decode.
func (d *ValueDecoder) Resolve() error {
	if d.resolved {
		return fmt.Errorf("script: ValueDecoder.Resolve called twice")
	}
	d.resolved = true
	// Phase 1: shells. Function ASTs are decoded here — they carry no
	// references into the graph.
	for _, rec := range d.heap {
		if _, dup := d.vals[rec.ID]; dup {
			return fmt.Errorf("script: duplicate heap id %d", rec.ID)
		}
		switch rec.Kind {
		case "arr":
			d.vals[rec.ID] = &Array{Elems: make([]Value, len(rec.Elems))}
		case "obj":
			d.vals[rec.ID] = NewObject()
		case "fn":
			body, err := decodeNodes(rec.Body)
			if err != nil {
				return err
			}
			d.vals[rec.ID] = &Function{name: rec.Name, params: rec.Params, body: body}
		default:
			return fmt.Errorf("script: unknown heap record kind %q", rec.Kind)
		}
	}
	for _, rec := range d.scopeRecs {
		if _, dup := d.scopes[rec.ID]; dup {
			return fmt.Errorf("script: duplicate scope id %d", rec.ID)
		}
		d.scopes[rec.ID] = &Scope{vars: make(map[string]Value, len(rec.Names))}
	}
	// Phase 2: fill. Every reference now resolves to a shell.
	for _, rec := range d.heap {
		switch rec.Kind {
		case "arr":
			arr := d.vals[rec.ID].(*Array)
			for i, ev := range rec.Elems {
				v, err := d.Decode(ev)
				if err != nil {
					return err
				}
				arr.Elems[i] = v
			}
		case "obj":
			obj := d.vals[rec.ID].(*Object)
			if len(rec.Keys) != len(rec.Vals) {
				return fmt.Errorf("script: object record %d has %d keys but %d values", rec.ID, len(rec.Keys), len(rec.Vals))
			}
			for i, k := range rec.Keys {
				v, err := d.Decode(rec.Vals[i])
				if err != nil {
					return err
				}
				obj.props[k] = v
			}
		case "fn":
			fn := d.vals[rec.ID].(*Function)
			env, err := d.resolveScope(rec.Env)
			if err != nil {
				return err
			}
			fn.env = env
		}
	}
	for _, rec := range d.scopeRecs {
		sc := d.scopes[rec.ID]
		parent, err := d.resolveScope(rec.Parent)
		if err != nil {
			return err
		}
		sc.parent = parent
		if len(rec.Names) != len(rec.Vals) {
			return fmt.Errorf("script: scope record %d has %d names but %d values", rec.ID, len(rec.Names), len(rec.Vals))
		}
		for i, name := range rec.Names {
			v, err := d.Decode(rec.Vals[i])
			if err != nil {
				return err
			}
			sc.vars[name] = v
		}
	}
	return nil
}

// Decode rebuilds one value. Resolve must have run first.
func (d *ValueDecoder) Decode(ev EncodedValue) (Value, error) {
	switch ev.T {
	case "null":
		return nil, nil
	case "undef":
		return Undefined, nil
	case "bool":
		return ev.B, nil
	case "num":
		return decodeNumber(ev.N)
	case "str":
		return ev.S, nil
	case "ref":
		if !d.resolved {
			return nil, fmt.Errorf("script: Decode before Resolve")
		}
		v, ok := d.vals[ev.ID]
		if !ok {
			return nil, fmt.Errorf("script: dangling heap reference %d", ev.ID)
		}
		return v, nil
	case "host":
		if d.DecodeHost == nil {
			return nil, fmt.Errorf("script: encoded host value but no DecodeHost hook")
		}
		// Identical tokens decode to the identical value, mirroring the
		// clone path's host memoization.
		key := string(ev.H)
		if v, ok := d.hosts[key]; ok {
			return v, nil
		}
		v, err := d.DecodeHost(ev.H)
		if err != nil {
			return nil, err
		}
		d.hosts[key] = v
		return v, nil
	default:
		return nil, fmt.Errorf("script: unknown encoded value kind %q", ev.T)
	}
}

func (d *ValueDecoder) resolveScope(ref *ScopeRef) (*Scope, error) {
	if ref == nil {
		return nil, nil
	}
	if ref.Tok != "" {
		s, ok := d.byTok[ref.Tok]
		if !ok {
			return nil, fmt.Errorf("script: unbound scope token %q", ref.Tok)
		}
		return s, nil
	}
	s, ok := d.scopes[ref.ID]
	if !ok {
		return nil, fmt.Errorf("script: dangling scope reference %d", ref.ID)
	}
	return s, nil
}

// ---- AST codec ----

// EncodedNode is one serialized AST node. K selects the kind; the
// remaining fields are reused across kinds (A/B/C for child nodes,
// List/List2 for node slices).
type EncodedNode struct {
	K      string         `json:"k"`
	Line   int            `json:"l,omitempty"`
	Name   string         `json:"n,omitempty"`
	Op     string         `json:"o,omitempty"`
	Val    string         `json:"v,omitempty"`
	Flag   bool           `json:"f,omitempty"`
	Prop   string         `json:"p,omitempty"`
	Params []string       `json:"ps,omitempty"`
	Keys   []string       `json:"ks,omitempty"`
	A      *EncodedNode   `json:"a,omitempty"`
	B      *EncodedNode   `json:"b,omitempty"`
	C      *EncodedNode   `json:"c,omitempty"`
	List   []*EncodedNode `json:"xs,omitempty"`
	List2  []*EncodedNode `json:"ys,omitempty"`
}

// encodeNodes serializes a statement or expression list; nil maps to
// nil.
func encodeNodes(nodes []node) ([]*EncodedNode, error) {
	if nodes == nil {
		return nil, nil
	}
	out := make([]*EncodedNode, len(nodes))
	for i, n := range nodes {
		en, err := encodeNode(n)
		if err != nil {
			return nil, err
		}
		out[i] = en
	}
	return out, nil
}

// encodeNode serializes one AST node; nil maps to nil (optional
// children: var initializers, for-loop clauses, member indexes).
func encodeNode(n node) (*EncodedNode, error) {
	if n == nil {
		return nil, nil
	}
	en := &EncodedNode{Line: n.nodeLine()}
	var err error
	switch x := n.(type) {
	case *program:
		en.K = "prog"
		en.List, err = encodeNodes(x.stmts)
	case *varDecl:
		en.K = "var"
		en.Name = x.name
		en.A, err = encodeNode(x.init)
	case *funcDecl:
		en.K = "fdecl"
		en.Name = x.name
		en.Params = x.params
		en.List, err = encodeNodes(x.body)
	case *exprStmt:
		en.K = "expr"
		en.A, err = encodeNode(x.expr)
	case *ifStmt:
		en.K = "if"
		en.Flag = x.alt != nil
		if en.A, err = encodeNode(x.cond); err == nil {
			if en.List, err = encodeNodes(x.then); err == nil {
				en.List2, err = encodeNodes(x.alt)
			}
		}
	case *whileStmt:
		en.K = "while"
		if en.A, err = encodeNode(x.cond); err == nil {
			en.List, err = encodeNodes(x.body)
		}
	case *forStmt:
		en.K = "for"
		if en.A, err = encodeNode(x.init); err == nil {
			if en.B, err = encodeNode(x.cond); err == nil {
				if en.C, err = encodeNode(x.post); err == nil {
					en.List, err = encodeNodes(x.body)
				}
			}
		}
	case *returnStmt:
		en.K = "ret"
		en.A, err = encodeNode(x.expr)
	case *breakStmt:
		en.K = "brk"
	case *continueStmt:
		en.K = "cont"
	case *numberLit:
		en.K = "num"
		en.Val = encodeNumber(x.val)
	case *stringLit:
		en.K = "str"
		en.Val = x.val
	case *boolLit:
		en.K = "bool"
		en.Flag = x.val
	case *nullLit:
		en.K = "null"
	case *undefinedLit:
		en.K = "undef"
	case *identExpr:
		en.K = "id"
		en.Name = x.name
	case *arrayLit:
		en.K = "arr"
		en.List, err = encodeNodes(x.elems)
	case *objectLit:
		en.K = "obj"
		en.Keys = x.keys
		en.List, err = encodeNodes(x.vals)
	case *funcLit:
		en.K = "flit"
		en.Params = x.params
		en.List, err = encodeNodes(x.body)
	case *unaryExpr:
		en.K = "un"
		en.Op = x.op
		en.A, err = encodeNode(x.operand)
	case *updateExpr:
		en.K = "upd"
		en.Op = x.op
		en.Flag = x.prefix
		en.A, err = encodeNode(x.operand)
	case *binaryExpr:
		en.K = "bin"
		en.Op = x.op
		if en.A, err = encodeNode(x.left); err == nil {
			en.B, err = encodeNode(x.right)
		}
	case *logicalExpr:
		en.K = "log"
		en.Op = x.op
		if en.A, err = encodeNode(x.left); err == nil {
			en.B, err = encodeNode(x.right)
		}
	case *condExpr:
		en.K = "cond"
		if en.A, err = encodeNode(x.cond); err == nil {
			if en.B, err = encodeNode(x.then); err == nil {
				en.C, err = encodeNode(x.alt)
			}
		}
	case *assignExpr:
		en.K = "asgn"
		en.Op = x.op
		if en.A, err = encodeNode(x.target); err == nil {
			en.B, err = encodeNode(x.value)
		}
	case *callExpr:
		en.K = "call"
		if en.A, err = encodeNode(x.callee); err == nil {
			en.List, err = encodeNodes(x.args)
		}
	case *memberExpr:
		en.K = "mem"
		en.Prop = x.property
		if en.A, err = encodeNode(x.object); err == nil {
			en.B, err = encodeNode(x.index)
		}
	default:
		return nil, fmt.Errorf("script: unknown AST node type %T", n)
	}
	if err != nil {
		return nil, err
	}
	return en, nil
}

// decodeNodes rebuilds a node list; nil maps to nil.
func decodeNodes(ens []*EncodedNode) ([]node, error) {
	if ens == nil {
		return nil, nil
	}
	out := make([]node, len(ens))
	for i, en := range ens {
		n, err := decodeNode(en)
		if err != nil {
			return nil, err
		}
		if n == nil {
			return nil, fmt.Errorf("script: nil node inside encoded node list")
		}
		out[i] = n
	}
	return out, nil
}

// decodeNode rebuilds one AST node; nil maps to nil.
func decodeNode(en *EncodedNode) (node, error) {
	if en == nil {
		return nil, nil
	}
	b := base{line: en.Line}
	switch en.K {
	case "prog":
		stmts, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &program{base: b, stmts: stmts}, nil
	case "var":
		init, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		return &varDecl{base: b, name: en.Name, init: init}, nil
	case "fdecl":
		body, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &funcDecl{base: b, name: en.Name, params: en.Params, body: body}, nil
	case "expr":
		expr, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		return &exprStmt{base: b, expr: expr}, nil
	case "if":
		cond, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		then, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		var alt []node
		if en.Flag {
			if alt, err = decodeNodes(en.List2); err != nil {
				return nil, err
			}
			if alt == nil {
				alt = []node{}
			}
		}
		return &ifStmt{base: b, cond: cond, then: then, alt: alt}, nil
	case "while":
		cond, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		body, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &whileStmt{base: b, cond: cond, body: body}, nil
	case "for":
		init, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		cond, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		post, err := decodeNode(en.C)
		if err != nil {
			return nil, err
		}
		body, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &forStmt{base: b, init: init, cond: cond, post: post, body: body}, nil
	case "ret":
		expr, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		return &returnStmt{base: b, expr: expr}, nil
	case "brk":
		return &breakStmt{base: b}, nil
	case "cont":
		return &continueStmt{base: b}, nil
	case "num":
		f, err := decodeNumber(en.Val)
		if err != nil {
			return nil, err
		}
		return &numberLit{base: b, val: f}, nil
	case "str":
		return &stringLit{base: b, val: en.Val}, nil
	case "bool":
		return &boolLit{base: b, val: en.Flag}, nil
	case "null":
		return &nullLit{base: b}, nil
	case "undef":
		return &undefinedLit{base: b}, nil
	case "id":
		return &identExpr{base: b, name: en.Name}, nil
	case "arr":
		elems, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &arrayLit{base: b, elems: elems}, nil
	case "obj":
		vals, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		if len(en.Keys) != len(vals) {
			return nil, fmt.Errorf("script: object literal with %d keys but %d values", len(en.Keys), len(vals))
		}
		return &objectLit{base: b, keys: en.Keys, vals: vals}, nil
	case "flit":
		body, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &funcLit{base: b, params: en.Params, body: body}, nil
	case "un":
		operand, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		return &unaryExpr{base: b, op: en.Op, operand: operand}, nil
	case "upd":
		operand, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		return &updateExpr{base: b, op: en.Op, prefix: en.Flag, operand: operand}, nil
	case "bin":
		left, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		right, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		return &binaryExpr{base: b, op: en.Op, left: left, right: right}, nil
	case "log":
		left, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		right, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		return &logicalExpr{base: b, op: en.Op, left: left, right: right}, nil
	case "cond":
		cond, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		then, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		alt, err := decodeNode(en.C)
		if err != nil {
			return nil, err
		}
		return &condExpr{base: b, cond: cond, then: then, alt: alt}, nil
	case "asgn":
		target, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		value, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		return &assignExpr{base: b, op: en.Op, target: target, value: value}, nil
	case "call":
		callee, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		args, err := decodeNodes(en.List)
		if err != nil {
			return nil, err
		}
		return &callExpr{base: b, callee: callee, args: args}, nil
	case "mem":
		object, err := decodeNode(en.A)
		if err != nil {
			return nil, err
		}
		index, err := decodeNode(en.B)
		if err != nil {
			return nil, err
		}
		return &memberExpr{base: b, object: object, property: en.Prop, index: index}, nil
	default:
		return nil, fmt.Errorf("script: unknown encoded node kind %q", en.K)
	}
}
