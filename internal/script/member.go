package script

import (
	"fmt"
	"strings"
)

// getMember resolves obj.prop or obj[index].
func (in *Interp) getMember(obj Value, e *memberExpr, scope *Scope) (Value, error) {
	name, err := in.memberName(e, scope)
	if err != nil {
		return nil, err
	}
	switch o := obj.(type) {
	case nil:
		return nil, &RuntimeError{Kind: "TypeError",
			Msg: fmt.Sprintf("cannot read property %q of null", name), Line: e.line}
	case undefinedType:
		// This is the exact failure mode of the Google Sites bug: a
		// property access through a variable that was never initialized
		// because the editor had not finished loading (paper §V-C).
		return nil, &RuntimeError{Kind: "TypeError",
			Msg: fmt.Sprintf("cannot read property %q of undefined", name), Line: e.line}
	case *Array:
		return in.arrayMember(o, name, e)
	case string:
		return in.stringMember(o, name, e)
	case PropHolder:
		if v, ok := o.GetProp(name); ok {
			return v, nil
		}
		return Undefined, nil
	default:
		return Undefined, nil
	}
}

// setMember assigns obj.prop = val or obj[index] = val.
func (in *Interp) setMember(obj Value, e *memberExpr, val Value, scope *Scope) error {
	name, err := in.memberName(e, scope)
	if err != nil {
		return err
	}
	switch o := obj.(type) {
	case nil:
		return &RuntimeError{Kind: "TypeError",
			Msg: fmt.Sprintf("cannot set property %q of null", name), Line: e.line}
	case undefinedType:
		return &RuntimeError{Kind: "TypeError",
			Msg: fmt.Sprintf("cannot set property %q of undefined", name), Line: e.line}
	case *Array:
		idx, ok := arrayIndex(name)
		if !ok {
			return &RuntimeError{Kind: "TypeError",
				Msg: fmt.Sprintf("cannot set property %q of array", name), Line: e.line}
		}
		for len(o.Elems) <= idx {
			o.Elems = append(o.Elems, Undefined)
		}
		o.Elems[idx] = val
		return nil
	case PropHolder:
		if err := o.SetProp(name, val); err != nil {
			return &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: e.line}
		}
		return nil
	default:
		return &RuntimeError{Kind: "TypeError",
			Msg: fmt.Sprintf("cannot set property %q of %s", name, TypeOf(obj)), Line: e.line}
	}
}

// memberName produces the property key for either syntax (.prop or
// [expr]).
func (in *Interp) memberName(e *memberExpr, scope *Scope) (string, error) {
	if e.property != "" {
		return e.property, nil
	}
	idx, err := in.eval(e.index, scope)
	if err != nil {
		return "", err
	}
	return ToString(idx), nil
}

func arrayIndex(name string) (int, bool) {
	n := 0
	if name == "" {
		return 0, false
	}
	for _, r := range name {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// arrayMember resolves array properties and methods.
func (in *Interp) arrayMember(a *Array, name string, e *memberExpr) (Value, error) {
	if idx, ok := arrayIndex(name); ok {
		if idx < len(a.Elems) {
			return a.Elems[idx], nil
		}
		return Undefined, nil
	}
	switch name {
	case "length":
		return float64(len(a.Elems)), nil
	case "push":
		return &NativeFunc{Name: "push", Fn: func(args []Value) (Value, error) {
			a.Elems = append(a.Elems, args...)
			return float64(len(a.Elems)), nil
		}}, nil
	case "pop":
		return &NativeFunc{Name: "pop", Fn: func(args []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined, nil
			}
			v := a.Elems[len(a.Elems)-1]
			a.Elems = a.Elems[:len(a.Elems)-1]
			return v, nil
		}}, nil
	case "shift":
		return &NativeFunc{Name: "shift", Fn: func(args []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined, nil
			}
			v := a.Elems[0]
			a.Elems = a.Elems[1:]
			return v, nil
		}}, nil
	case "join":
		return &NativeFunc{Name: "join", Fn: func(args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, len(a.Elems))
			for i, el := range a.Elems {
				parts[i] = ToString(el)
			}
			return strings.Join(parts, sep), nil
		}}, nil
	case "indexOf":
		return &NativeFunc{Name: "indexOf", Fn: func(args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			for i, el := range a.Elems {
				if looseEquals(el, args[0]) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		}}, nil
	case "slice":
		return &NativeFunc{Name: "slice", Fn: func(args []Value) (Value, error) {
			start, end := 0, len(a.Elems)
			if len(args) > 0 {
				n, err := ToNumber(args[0])
				if err != nil {
					return nil, err
				}
				start = clampIndex(int(n), len(a.Elems))
			}
			if len(args) > 1 {
				n, err := ToNumber(args[1])
				if err != nil {
					return nil, err
				}
				end = clampIndex(int(n), len(a.Elems))
			}
			if start > end {
				start = end
			}
			out := make([]Value, end-start)
			copy(out, a.Elems[start:end])
			return NewArray(out...), nil
		}}, nil
	default:
		return Undefined, nil
	}
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// stringMember resolves string properties and methods.
func (in *Interp) stringMember(s string, name string, e *memberExpr) (Value, error) {
	if idx, ok := arrayIndex(name); ok {
		if idx < len(s) {
			return string(s[idx]), nil
		}
		return Undefined, nil
	}
	switch name {
	case "length":
		return float64(len(s)), nil
	case "charAt":
		return &NativeFunc{Name: "charAt", Fn: func(args []Value) (Value, error) {
			i, err := argIndex(args)
			if err != nil || i < 0 || i >= len(s) {
				return "", nil
			}
			return string(s[i]), nil
		}}, nil
	case "charCodeAt":
		return &NativeFunc{Name: "charCodeAt", Fn: func(args []Value) (Value, error) {
			i, err := argIndex(args)
			if err != nil || i < 0 || i >= len(s) {
				return float64(0), nil
			}
			return float64(s[i]), nil
		}}, nil
	case "indexOf":
		return &NativeFunc{Name: "indexOf", Fn: func(args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			return float64(strings.Index(s, ToString(args[0]))), nil
		}}, nil
	case "substring", "slice":
		return &NativeFunc{Name: name, Fn: func(args []Value) (Value, error) {
			start, end := 0, len(s)
			if len(args) > 0 {
				n, err := ToNumber(args[0])
				if err != nil {
					return nil, err
				}
				start = clampIndex(int(n), len(s))
			}
			if len(args) > 1 {
				n, err := ToNumber(args[1])
				if err != nil {
					return nil, err
				}
				end = clampIndex(int(n), len(s))
			}
			if start > end {
				start, end = end, start
			}
			return s[start:end], nil
		}}, nil
	case "toUpperCase":
		return &NativeFunc{Name: "toUpperCase", Fn: func(args []Value) (Value, error) {
			return strings.ToUpper(s), nil
		}}, nil
	case "toLowerCase":
		return &NativeFunc{Name: "toLowerCase", Fn: func(args []Value) (Value, error) {
			return strings.ToLower(s), nil
		}}, nil
	case "trim":
		return &NativeFunc{Name: "trim", Fn: func(args []Value) (Value, error) {
			return strings.TrimSpace(s), nil
		}}, nil
	case "split":
		return &NativeFunc{Name: "split", Fn: func(args []Value) (Value, error) {
			if len(args) == 0 {
				return NewArray(s), nil
			}
			parts := strings.Split(s, ToString(args[0]))
			vals := make([]Value, len(parts))
			for i, p := range parts {
				vals[i] = p
			}
			return NewArray(vals...), nil
		}}, nil
	case "replace":
		return &NativeFunc{Name: "replace", Fn: func(args []Value) (Value, error) {
			if len(args) < 2 {
				return s, nil
			}
			return strings.Replace(s, ToString(args[0]), ToString(args[1]), 1), nil
		}}, nil
	default:
		return Undefined, nil
	}
}

func argIndex(args []Value) (int, error) {
	if len(args) == 0 {
		return 0, nil
	}
	n, err := ToNumber(args[0])
	return int(n), err
}

// The host-independent builtins are stateless, so one shared instance
// serves every interpreter. Environments create one interpreter per
// frame per page load — and forks create another per frame — so
// per-interp closure construction was measurable churn.
var (
	parseIntBuiltin = &NativeFunc{Name: "parseInt", Fn: func(args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		n := 0
		neg := false
		i := 0
		if i < len(s) && (s[i] == '-' || s[i] == '+') {
			neg = s[i] == '-'
			i++
		}
		digits := 0
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			n = n*10 + int(s[i]-'0')
			digits++
		}
		if digits == 0 {
			return float64(0), nil
		}
		if neg {
			n = -n
		}
		return float64(n), nil
	}}
	stringBuiltin = &NativeFunc{Name: "String", Fn: func(args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return ToString(args[0]), nil
	}}
	numberBuiltin = &NativeFunc{Name: "Number", Fn: func(args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		n, err := ToNumber(args[0])
		if err != nil {
			return float64(0), nil
		}
		return n, nil
	}}
	fromCharCodeBuiltin = &NativeFunc{Name: "fromCharCode", Fn: func(args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			n, err := ToNumber(a)
			if err != nil {
				return nil, err
			}
			b.WriteRune(rune(int(n)))
		}
		return b.String(), nil
	}}
)

// InstallBuiltins defines the host-independent global functions the
// simulated applications rely on.
func InstallBuiltins(in *Interp) {
	in.Define("parseInt", parseIntBuiltin)
	in.Define("String", stringBuiltin)
	in.Define("Number", numberBuiltin)
	in.Define("fromCharCode", fromCharCodeBuiltin)
}
