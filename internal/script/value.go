package script

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value: nil (null), Undefined, float64, string, bool,
// *Array, *Object, *Function, *NativeFunc, or any host value implementing
// PropHolder and/or Callable.
type Value any

// undefinedType is the type of the Undefined sentinel.
type undefinedType struct{}

func (undefinedType) String() string { return "undefined" }

// Undefined is the JavaScript `undefined` value: the value of declared-
// but-uninitialized variables. The Google Sites bug the paper found
// (§V-C) manifests as a TypeError on a property access through this
// value.
var Undefined = undefinedType{}

// IsUndefined reports whether v is the undefined sentinel.
func IsUndefined(v Value) bool {
	_, ok := v.(undefinedType)
	return ok
}

// Object is a mutable property bag (JavaScript object literal).
type Object struct {
	props map[string]Value
}

// NewObject returns an empty object.
func NewObject() *Object { return &Object{props: make(map[string]Value)} }

// GetProp implements PropHolder.
func (o *Object) GetProp(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

// SetProp implements PropHolder.
func (o *Object) SetProp(name string, v Value) error {
	o.props[name] = v
	return nil
}

// Keys returns the object's property names, sorted for determinism.
func (o *Object) Keys() []string {
	keys := make([]string, 0, len(o.props))
	for k := range o.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Array is a JavaScript-style growable array.
type Array struct {
	Elems []Value
}

// NewArray returns an array holding elems.
func NewArray(elems ...Value) *Array { return &Array{Elems: elems} }

// PropHolder is implemented by values exposing named properties. Host
// environments (the browser's DOM bindings) implement this to expose
// element properties such as textContent.
type PropHolder interface {
	GetProp(name string) (Value, bool)
	SetProp(name string, v Value) error
}

// Callable is implemented by invocable values.
type Callable interface {
	CallFn(in *Interp, args []Value) (Value, error)
}

// Function is a user-defined function with its closure environment.
type Function struct {
	name   string
	params []string
	body   []node
	env    *Scope
}

// CallFn implements Callable.
func (f *Function) CallFn(in *Interp, args []Value) (Value, error) {
	return in.callFunction(f, args)
}

// NativeFunc adapts a Go function into a callable script value.
type NativeFunc struct {
	Name string
	Fn   func(args []Value) (Value, error)
}

// CallFn implements Callable.
func (f *NativeFunc) CallFn(in *Interp, args []Value) (Value, error) {
	return f.Fn(args)
}

// Interface compliance checks.
var (
	_ PropHolder = (*Object)(nil)
	_ Callable   = (*Function)(nil)
	_ Callable   = (*NativeFunc)(nil)
)

// Truthy converts a value to boolean following JavaScript semantics.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case undefinedType:
		return false
	case bool:
		return x
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return true
	}
}

// TypeOf returns the JavaScript typeof string for v.
func TypeOf(v Value) string {
	switch v.(type) {
	case nil:
		return "object" // typeof null === "object", faithfully
	case undefinedType:
		return "undefined"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case Callable:
		return "function"
	default:
		return "object"
	}
}

// ToString converts a value to its display string (console.log, string
// concatenation).
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case undefinedType:
		return "undefined"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(x)
	case string:
		return x
	case *Array:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = ToString(e)
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object Object]"
	case *Function:
		return "function " + x.name + "() { ... }"
	case *NativeFunc:
		return "function " + x.Name + "() { [native code] }"
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

// formatNumber renders floats the way JavaScript does: integers without a
// decimal point.
func formatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ToNumber converts a value to a number; non-numeric strings yield an
// error rather than NaN (the simulated apps never rely on NaN).
func ToNumber(v Value) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	case string:
		n, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("cannot convert %q to a number", x)
		}
		return n, nil
	case nil:
		return 0, nil
	default:
		return 0, fmt.Errorf("cannot convert %s to a number", TypeOf(v))
	}
}
