package script

import (
	"errors"
	"fmt"
)

// RuntimeError is a JavaScript-style runtime error (ReferenceError,
// TypeError, RangeError). The Google Sites bug from the paper's §V-C
// surfaces as one of these on the browser console.
type RuntimeError struct {
	Kind string // "ReferenceError", "TypeError", ...
	Msg  string
	Line int
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: %s (line %d)", e.Kind, e.Msg, e.Line)
}

// ErrStepLimit is returned when a script exceeds the interpreter's step
// budget (runaway loop protection for tests).
var ErrStepLimit = errors.New("script: step limit exceeded")

// control-flow signals, unwound through eval as errors.
type returnSignal struct{ val Value }

func (returnSignal) Error() string { return "return outside function" }

type breakSignal struct{}

func (breakSignal) Error() string { return "break outside loop" }

type continueSignal struct{}

func (continueSignal) Error() string { return "continue outside loop" }

// Scope is a lexical environment frame. The variable map is created on
// first Define: block scopes (if/loop bodies) usually declare nothing,
// and the interpreter opens one per executed block.
type Scope struct {
	vars   map[string]Value
	parent *Scope
}

// NewScope returns a scope nested in parent (nil for a global scope).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent}
}

// Define creates or overwrites name in this scope.
func (s *Scope) Define(name string, v Value) {
	if s.vars == nil {
		s.vars = make(map[string]Value, 4)
	}
	s.vars[name] = v
}

// Lookup resolves name through the scope chain.
func (s *Scope) Lookup(name string) (Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// assign sets name in the nearest defining scope; it reports false when
// the name is undeclared.
func (s *Scope) assign(name string, v Value) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

// DefaultMaxSteps bounds script execution; generous enough for every
// simulated application, small enough to fail fast on accidental infinite
// loops.
const DefaultMaxSteps = 2_000_000

// Interp evaluates parsed programs. One Interp corresponds to one
// JavaScript global environment (one browser frame).
type Interp struct {
	// Global is the global scope; hosts install bindings (document,
	// window, console) here.
	Global *Scope
	// MaxSteps bounds the number of AST evaluations per Run/Call.
	MaxSteps int

	steps int
}

// New returns an interpreter with an empty global scope.
func New() *Interp {
	return &Interp{Global: NewScope(nil), MaxSteps: DefaultMaxSteps}
}

// Define installs a global binding.
func (in *Interp) Define(name string, v Value) { in.Global.Define(name, v) }

// Run parses and executes src in the global scope, returning the value of
// the last expression statement. Parsing goes through the process-wide
// parse cache (parsecache.go): repeated sources — page scripts across
// loads, inline handlers across events — parse once.
func (in *Interp) Run(src string) (Value, error) {
	prog, err := parseCached(src)
	if err != nil {
		return nil, err
	}
	in.steps = 0
	v, err := in.execBlock(prog.stmts, in.Global)
	if err != nil {
		var rs returnSignal
		if errors.As(err, &rs) {
			return rs.val, nil
		}
		return nil, err
	}
	return v, nil
}

// Call invokes a callable value (typically an event handler) with args.
func (in *Interp) Call(fn Value, args ...Value) (Value, error) {
	c, ok := fn.(Callable)
	if !ok {
		return nil, &RuntimeError{Kind: "TypeError", Msg: fmt.Sprintf("%s is not a function", ToString(fn))}
	}
	in.steps = 0
	return c.CallFn(in, args)
}

func (in *Interp) callFunction(f *Function, args []Value) (Value, error) {
	scope := NewScope(f.env)
	for i, p := range f.params {
		if i < len(args) {
			scope.Define(p, args[i])
		} else {
			scope.Define(p, Undefined)
		}
	}
	scope.Define("arguments", NewArray(args...))
	_, err := in.execBlock(f.body, scope)
	if err != nil {
		var rs returnSignal
		if errors.As(err, &rs) {
			return rs.val, nil
		}
		return nil, err
	}
	return Undefined, nil
}

func (in *Interp) step(n node) error {
	in.steps++
	if in.MaxSteps > 0 && in.steps > in.MaxSteps {
		return fmt.Errorf("%w (line %d)", ErrStepLimit, n.nodeLine())
	}
	return nil
}

func (in *Interp) execBlock(stmts []node, scope *Scope) (Value, error) {
	var last Value = Undefined
	// Hoist function declarations, as JavaScript does.
	for _, s := range stmts {
		if fd, ok := s.(*funcDecl); ok {
			scope.Define(fd.name, &Function{name: fd.name, params: fd.params, body: fd.body, env: scope})
		}
	}
	for _, s := range stmts {
		v, err := in.exec(s, scope)
		if err != nil {
			return nil, err
		}
		if v != nil {
			last = v
		}
	}
	return last, nil
}

// exec executes a statement; expression statements yield their value.
func (in *Interp) exec(n node, scope *Scope) (Value, error) {
	if err := in.step(n); err != nil {
		return nil, err
	}
	switch s := n.(type) {
	case *program:
		return in.execBlock(s.stmts, scope)
	case *varDecl:
		var v Value = Undefined
		if s.init != nil {
			var err error
			v, err = in.eval(s.init, scope)
			if err != nil {
				return nil, err
			}
		}
		scope.Define(s.name, v)
		return nil, nil
	case *funcDecl:
		return nil, nil // hoisted by execBlock
	case *exprStmt:
		return in.eval(s.expr, scope)
	case *ifStmt:
		cond, err := in.eval(s.cond, scope)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			_, err = in.execBlock(s.then, NewScope(scope))
		} else if s.alt != nil {
			_, err = in.execBlock(s.alt, NewScope(scope))
		}
		return nil, err
	case *whileStmt:
		for {
			cond, err := in.eval(s.cond, scope)
			if err != nil {
				return nil, err
			}
			if !Truthy(cond) {
				return nil, nil
			}
			if stop, err := in.loopBody(s.body, scope); stop || err != nil {
				return nil, err
			}
		}
	case *forStmt:
		loopScope := NewScope(scope)
		if s.init != nil {
			if _, err := in.exec(s.init, loopScope); err != nil {
				return nil, err
			}
		}
		for {
			if s.cond != nil {
				cond, err := in.eval(s.cond, loopScope)
				if err != nil {
					return nil, err
				}
				if !Truthy(cond) {
					return nil, nil
				}
			}
			if stop, err := in.loopBody(s.body, loopScope); stop || err != nil {
				return nil, err
			}
			if s.post != nil {
				if _, err := in.eval(s.post, loopScope); err != nil {
					return nil, err
				}
			}
		}
	case *returnStmt:
		var v Value = Undefined
		if s.expr != nil {
			var err error
			v, err = in.eval(s.expr, scope)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnSignal{val: v}
	case *breakStmt:
		return nil, breakSignal{}
	case *continueStmt:
		return nil, continueSignal{}
	default:
		return nil, fmt.Errorf("script: unknown statement %T", n)
	}
}

// loopBody runs one iteration; stop=true means break.
func (in *Interp) loopBody(body []node, scope *Scope) (stop bool, err error) {
	_, err = in.execBlock(body, NewScope(scope))
	if err != nil {
		if errors.As(err, &breakSignal{}) {
			return true, nil
		}
		if errors.As(err, &continueSignal{}) {
			return false, nil
		}
		return true, err
	}
	return false, nil
}

func (in *Interp) eval(n node, scope *Scope) (Value, error) {
	if err := in.step(n); err != nil {
		return nil, err
	}
	switch e := n.(type) {
	case *numberLit:
		return e.val, nil
	case *stringLit:
		return e.val, nil
	case *boolLit:
		return e.val, nil
	case *nullLit:
		return nil, nil
	case *undefinedLit:
		return Undefined, nil
	case *identExpr:
		v, ok := scope.Lookup(e.name)
		if !ok {
			return nil, &RuntimeError{Kind: "ReferenceError", Msg: e.name + " is not defined", Line: e.line}
		}
		return v, nil
	case *arrayLit:
		arr := NewArray()
		for _, el := range e.elems {
			v, err := in.eval(el, scope)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *objectLit:
		obj := NewObject()
		for i, k := range e.keys {
			v, err := in.eval(e.vals[i], scope)
			if err != nil {
				return nil, err
			}
			obj.props[k] = v
		}
		return obj, nil
	case *funcLit:
		return &Function{name: "anonymous", params: e.params, body: e.body, env: scope}, nil
	case *unaryExpr:
		return in.evalUnary(e, scope)
	case *updateExpr:
		return in.evalUpdate(e, scope)
	case *binaryExpr:
		return in.evalBinary(e, scope)
	case *logicalExpr:
		left, err := in.eval(e.left, scope)
		if err != nil {
			return nil, err
		}
		if e.op == "&&" {
			if !Truthy(left) {
				return left, nil
			}
		} else if Truthy(left) {
			return left, nil
		}
		return in.eval(e.right, scope)
	case *condExpr:
		cond, err := in.eval(e.cond, scope)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.eval(e.then, scope)
		}
		return in.eval(e.alt, scope)
	case *assignExpr:
		return in.evalAssign(e, scope)
	case *callExpr:
		return in.evalCall(e, scope)
	case *memberExpr:
		obj, err := in.eval(e.object, scope)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, e, scope)
	default:
		return nil, fmt.Errorf("script: unknown expression %T", n)
	}
}

func (in *Interp) evalUnary(e *unaryExpr, scope *Scope) (Value, error) {
	if e.op == "typeof" {
		// typeof tolerates undeclared identifiers, as in JavaScript.
		if id, ok := e.operand.(*identExpr); ok {
			v, found := scope.Lookup(id.name)
			if !found {
				return "undefined", nil
			}
			return TypeOf(v), nil
		}
	}
	v, err := in.eval(e.operand, scope)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case "!":
		return !Truthy(v), nil
	case "-":
		n, err := ToNumber(v)
		if err != nil {
			return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: e.line}
		}
		return -n, nil
	case "typeof":
		return TypeOf(v), nil
	default:
		return nil, fmt.Errorf("script: unknown unary operator %q", e.op)
	}
}

func (in *Interp) evalUpdate(e *updateExpr, scope *Scope) (Value, error) {
	old, err := in.eval(e.operand, scope)
	if err != nil {
		return nil, err
	}
	n, err := ToNumber(old)
	if err != nil {
		return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: e.line}
	}
	delta := 1.0
	if e.op == "--" {
		delta = -1
	}
	if err := in.setTarget(e.operand, n+delta, scope); err != nil {
		return nil, err
	}
	if e.prefix {
		return n + delta, nil
	}
	return n, nil
}

func (in *Interp) evalBinary(e *binaryExpr, scope *Scope) (Value, error) {
	left, err := in.eval(e.left, scope)
	if err != nil {
		return nil, err
	}
	right, err := in.eval(e.right, scope)
	if err != nil {
		return nil, err
	}
	return in.binaryOp(e.op, left, right, e.line)
}

func (in *Interp) binaryOp(op string, left, right Value, line int) (Value, error) {
	switch op {
	case "+":
		if ls, ok := left.(string); ok {
			return ls + ToString(right), nil
		}
		if rs, ok := right.(string); ok {
			return ToString(left) + rs, nil
		}
		ln, err := ToNumber(left)
		if err != nil {
			return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
		}
		rn, err := ToNumber(right)
		if err != nil {
			return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
		}
		return ln + rn, nil
	case "-", "*", "/", "%":
		ln, err := ToNumber(left)
		if err != nil {
			return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
		}
		rn, err := ToNumber(right)
		if err != nil {
			return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
		}
		switch op {
		case "-":
			return ln - rn, nil
		case "*":
			return ln * rn, nil
		case "/":
			if rn == 0 {
				return nil, &RuntimeError{Kind: "RangeError", Msg: "division by zero", Line: line}
			}
			return ln / rn, nil
		default:
			if rn == 0 {
				return nil, &RuntimeError{Kind: "RangeError", Msg: "modulo by zero", Line: line}
			}
			return float64(int64(ln) % int64(rn)), nil
		}
	case "==", "===":
		return looseEquals(left, right), nil
	case "!=", "!==":
		return !looseEquals(left, right), nil
	case "<", ">", "<=", ">=":
		return compare(op, left, right, line)
	default:
		return nil, fmt.Errorf("script: unknown binary operator %q", op)
	}
}

// looseEquals implements equality: same-type strict comparison, plus
// null == undefined.
func looseEquals(a, b Value) bool {
	if (a == nil && IsUndefined(b)) || (IsUndefined(a) && b == nil) {
		return true
	}
	switch x := a.(type) {
	case nil:
		return b == nil
	case undefinedType:
		return IsUndefined(b)
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	default:
		return a == b // reference equality for objects/arrays/functions
	}
}

func compare(op string, a, b Value, line int) (Value, error) {
	if as, aok := a.(string); aok {
		if bs, bok := b.(string); bok {
			switch op {
			case "<":
				return as < bs, nil
			case ">":
				return as > bs, nil
			case "<=":
				return as <= bs, nil
			default:
				return as >= bs, nil
			}
		}
	}
	an, err := ToNumber(a)
	if err != nil {
		return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
	}
	bn, err := ToNumber(b)
	if err != nil {
		return nil, &RuntimeError{Kind: "TypeError", Msg: err.Error(), Line: line}
	}
	switch op {
	case "<":
		return an < bn, nil
	case ">":
		return an > bn, nil
	case "<=":
		return an <= bn, nil
	default:
		return an >= bn, nil
	}
}

func (in *Interp) evalAssign(e *assignExpr, scope *Scope) (Value, error) {
	val, err := in.eval(e.value, scope)
	if err != nil {
		return nil, err
	}
	if e.op != "=" {
		old, err := in.eval(e.target, scope)
		if err != nil {
			return nil, err
		}
		val, err = in.binaryOp(e.op[:1], old, val, e.line)
		if err != nil {
			return nil, err
		}
	}
	if err := in.setTarget(e.target, val, scope); err != nil {
		return nil, err
	}
	return val, nil
}

func (in *Interp) setTarget(target node, val Value, scope *Scope) error {
	switch t := target.(type) {
	case *identExpr:
		if !scope.assign(t.name, val) {
			// Assignment to an undeclared name creates a global, as in
			// non-strict JavaScript.
			in.Global.Define(t.name, val)
		}
		return nil
	case *memberExpr:
		obj, err := in.eval(t.object, scope)
		if err != nil {
			return err
		}
		return in.setMember(obj, t, val, scope)
	default:
		return &RuntimeError{Kind: "SyntaxError", Msg: "invalid assignment target", Line: target.nodeLine()}
	}
}

func (in *Interp) evalCall(e *callExpr, scope *Scope) (Value, error) {
	callee, err := in.eval(e.callee, scope)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := in.eval(a, scope)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	c, ok := callee.(Callable)
	if !ok {
		name := describeCallee(e.callee)
		return nil, &RuntimeError{Kind: "TypeError", Msg: name + " is not a function", Line: e.line}
	}
	return c.CallFn(in, args)
}

func describeCallee(n node) string {
	switch c := n.(type) {
	case *identExpr:
		return c.name
	case *memberExpr:
		if c.property != "" {
			return describeCallee(c.object) + "." + c.property
		}
		return describeCallee(c.object) + "[...]"
	default:
		return "expression"
	}
}
