package script

import (
	"sync"

	"github.com/dslab-epfl/warr/internal/fnv1a"
)

// Process-wide parse cache. Page scripts and inline handlers repeat
// verbatim across page loads, environments, and forks — a campaign
// parses the same few sources thousands of times. Parsed programs are
// immutable (evaluation never writes AST nodes; closures share body
// slices read-only), so one cached program can serve every interpreter
// and every goroutine.
//
// Programs are cached only from a source's second sighting. Some pages
// generate a unique script on every load (GMail embeds freshly minted
// element ids), and caching those one-shot programs retained megabytes
// of dead ASTs for no hits — first sightings therefore record only a
// 64-bit source hash, and the program itself is cached once the hash
// recurs.
//
// Both tables are bounded by two generations, the same scheme as the
// replayer's XPath compile cache: inserts go to the current generation;
// when it fills, the previous generation is dropped, and a hit in the
// previous generation re-inserts, so entries that stay hot survive
// rotation. Parse errors are cached too — a page with a broken script
// reloads just as often.
const parseCacheGen = 1024

var (
	parseMu   sync.RWMutex
	parseCur  = make(map[string]parseEntry)
	parsePrev map[string]parseEntry
	seenCur   = make(map[uint64]struct{})
	seenPrev  map[uint64]struct{}
)

type parseEntry struct {
	prog *program
	err  error
}

// parseCached is parse behind the process-wide cache.
func parseCached(src string) (*program, error) {
	parseMu.RLock()
	if e, ok := parseCur[src]; ok {
		parseMu.RUnlock()
		return e.prog, e.err
	}
	e, hit := parsePrev[src]
	parseMu.RUnlock()
	if !hit {
		e = parseEntry{}
		e.prog, e.err = parse(src)
	}

	h := fnv1a.String(src)
	parseMu.Lock()
	_, seen := seenCur[h]
	if !seen {
		_, seen = seenPrev[h]
	}
	if hit || seen {
		if _, hot := parseCur[src]; !hot {
			if len(parseCur) >= parseCacheGen {
				parsePrev, parseCur = parseCur, make(map[string]parseEntry, parseCacheGen)
			}
			parseCur[src] = e
		}
	} else {
		if len(seenCur) >= parseCacheGen {
			seenPrev, seenCur = seenCur, make(map[uint64]struct{}, parseCacheGen)
		}
		seenCur[h] = struct{}{}
	}
	parseMu.Unlock()
	return e.prog, e.err
}

// parseCacheLen reports cached programs across both generations (an
// entry mid-promotion may be counted twice). Test hook.
func parseCacheLen() int {
	parseMu.RLock()
	defer parseMu.RUnlock()
	return len(parseCur) + len(parsePrev)
}

// resetParseCache empties the cache. Test hook.
func resetParseCache() {
	parseMu.Lock()
	defer parseMu.Unlock()
	parseCur = make(map[string]parseEntry)
	parsePrev = nil
	seenCur = make(map[uint64]struct{})
	seenPrev = nil
}
