package script

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// run evaluates src and fails the test on error.
func run(t *testing.T, src string) Value {
	t.Helper()
	in := New()
	InstallBuiltins(in)
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

// runErr evaluates src and returns the error (nil if none).
func runErr(src string) error {
	in := New()
	InstallBuiltins(in)
	_, err := in.Run(src)
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2":           3,
		"10 - 4":          6,
		"3 * 4":           12,
		"10 / 4":          2.5,
		"10 % 3":          1,
		"2 + 3 * 4":       14,
		"(2 + 3) * 4":     20,
		"-5 + 3":          -2,
		"1 + 2 - 3 * 0":   3,
		"100 / 10 / 2":    5,
		"5 % 3 + 10 % 4":  4,
		"2 * (3 + (4-1))": 12,
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestStringOps(t *testing.T) {
	if got := run(t, `"Hello " + "world" + "!"`); got != "Hello world!" {
		t.Errorf("concat = %v", got)
	}
	if got := run(t, `"n=" + 42`); got != "n=42" {
		t.Errorf("string+number = %v", got)
	}
	if got := run(t, `5 + "x"`); got != "5x" {
		t.Errorf("number+string = %v", got)
	}
	if got := run(t, `"abc".length`); got != float64(3) {
		t.Errorf("length = %v", got)
	}
	if got := run(t, `"abc".toUpperCase()`); got != "ABC" {
		t.Errorf("toUpperCase = %v", got)
	}
	if got := run(t, `"Hello".charCodeAt(0)`); got != float64(72) {
		t.Errorf("charCodeAt = %v", got)
	}
	if got := run(t, `"a,b,c".split(",").length`); got != float64(3) {
		t.Errorf("split = %v", got)
	}
	if got := run(t, `"hello world".indexOf("world")`); got != float64(6) {
		t.Errorf("indexOf = %v", got)
	}
	if got := run(t, `"hello".substring(1, 3)`); got != "el" {
		t.Errorf("substring = %v", got)
	}
	if got := run(t, `"  x  ".trim()`); got != "x" {
		t.Errorf("trim = %v", got)
	}
	if got := run(t, `"aXbXc".replace("X", "-")`); got != "a-bXc" {
		t.Errorf("replace = %v", got)
	}
}

func TestVariablesAndScope(t *testing.T) {
	if got := run(t, `var x = 5; var y = x + 1; y`); got != float64(6) {
		t.Errorf("vars = %v", got)
	}
	if got := run(t, `var a = 1, b = 2; a + b`); got != float64(3) {
		t.Errorf("multi-var = %v", got)
	}
	// Uninitialized variable is undefined.
	if got := run(t, `var u; typeof u`); got != "undefined" {
		t.Errorf("typeof uninitialized = %v", got)
	}
	// Inner scopes see outer; blocks do not leak into callers' vars.
	if got := run(t, `var x = 1; if (true) { x = 2; } x`); got != float64(2) {
		t.Errorf("scope write-through = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]bool{
		`1 < 2`:             true,
		`2 <= 2`:            true,
		`3 > 4`:             false,
		`"a" < "b"`:         true,
		`1 == 1`:            true,
		`1 != 2`:            true,
		`"x" == "x"`:        true,
		`null == undefined`: true,
		`null == 0`:         false,
		`1 === 1`:           true,
		`"1" == 1`:          false,
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right side must not evaluate when short-circuited: a would-be
	// ReferenceError proves evaluation.
	if got := run(t, `false && missingVariable`); got != false {
		t.Errorf("&& = %v", got)
	}
	if got := run(t, `true || missingVariable`); got != true {
		t.Errorf("|| = %v", got)
	}
	if got := run(t, `"" || "fallback"`); got != "fallback" {
		t.Errorf("|| value = %v", got)
	}
	if got := run(t, `"a" && "b"`); got != "b" {
		t.Errorf("&& value = %v", got)
	}
}

func TestTernary(t *testing.T) {
	if got := run(t, `1 < 2 ? "yes" : "no"`); got != "yes" {
		t.Errorf("ternary = %v", got)
	}
}

func TestIfElse(t *testing.T) {
	src := `
		var r = "";
		if (1 > 2) { r = "a"; } else if (2 > 2) { r = "b"; } else { r = "c"; }
		r`
	if got := run(t, src); got != "c" {
		t.Errorf("if-else = %v", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `var i = 0; var sum = 0; while (i < 5) { sum += i; i++; } sum`
	if got := run(t, src); got != float64(10) {
		t.Errorf("while = %v", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `var sum = 0; for (var i = 1; i <= 4; i++) { sum += i; } sum`
	if got := run(t, src); got != float64(10) {
		t.Errorf("for = %v", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
		var sum = 0;
		for (var i = 0; i < 10; i++) {
			if (i == 3) { continue; }
			if (i == 6) { break; }
			sum += i;
		}
		sum`
	// 0+1+2+4+5 = 12
	if got := run(t, src); got != float64(12) {
		t.Errorf("break/continue = %v", got)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	src := `
		function makeCounter() {
			var n = 0;
			return function() { n++; return n; };
		}
		var c = makeCounter();
		c(); c(); c()`
	if got := run(t, src); got != float64(3) {
		t.Errorf("closure = %v", got)
	}
}

func TestFunctionHoisting(t *testing.T) {
	src := `var r = f(); function f() { return 7; } r`
	if got := run(t, src); got != float64(7) {
		t.Errorf("hoisting = %v", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fib(10)`
	if got := run(t, src); got != float64(55) {
		t.Errorf("fib = %v", got)
	}
}

func TestMissingArgsAreUndefined(t *testing.T) {
	src := `function f(a, b) { return typeof b; } f(1)`
	if got := run(t, src); got != "undefined" {
		t.Errorf("missing arg = %v", got)
	}
}

func TestArguments(t *testing.T) {
	src := `function f() { return arguments.length; } f(1, 2, 3)`
	if got := run(t, src); got != float64(3) {
		t.Errorf("arguments = %v", got)
	}
}

func TestArrays(t *testing.T) {
	if got := run(t, `var a = [1, 2, 3]; a.length`); got != float64(3) {
		t.Errorf("length = %v", got)
	}
	if got := run(t, `var a = [1, 2]; a.push(3); a[2]`); got != float64(3) {
		t.Errorf("push = %v", got)
	}
	if got := run(t, `var a = [1, 2, 3]; a.pop(); a.length`); got != float64(2) {
		t.Errorf("pop = %v", got)
	}
	if got := run(t, `[1,2,3].join("-")`); got != "1-2-3" {
		t.Errorf("join = %v", got)
	}
	if got := run(t, `["a","b","c"].indexOf("b")`); got != float64(1) {
		t.Errorf("indexOf = %v", got)
	}
	if got := run(t, `[1,2,3,4].slice(1,3).join("")`); got != "23" {
		t.Errorf("slice = %v", got)
	}
	if got := run(t, `var a = []; a[2] = 9; a.length`); got != float64(3) {
		t.Errorf("sparse set = %v", got)
	}
	if got := run(t, `var a = [1,2,3]; a.shift(); a[0]`); got != float64(2) {
		t.Errorf("shift = %v", got)
	}
	if got := run(t, `[5][1]`); !IsUndefined(got) {
		t.Errorf("out of range = %v", got)
	}
}

func TestObjects(t *testing.T) {
	if got := run(t, `var o = {a: 1, b: "x"}; o.a + o.b`); got != "1x" {
		t.Errorf("object = %v", got)
	}
	if got := run(t, `var o = {}; o.k = 5; o["k"]`); got != float64(5) {
		t.Errorf("set/get = %v", got)
	}
	if got := run(t, `var o = {a: {b: {c: 42}}}; o.a.b.c`); got != float64(42) {
		t.Errorf("nested = %v", got)
	}
	if got := run(t, `var o = {f: function(x) { return x * 2; }}; o.f(21)`); got != float64(42) {
		t.Errorf("method = %v", got)
	}
	if got := run(t, `({a:1}).missing`); !IsUndefined(got) {
		t.Errorf("missing prop = %v", got)
	}
}

func TestUpdateExpressions(t *testing.T) {
	if got := run(t, `var i = 5; i++; i`); got != float64(6) {
		t.Errorf("postfix = %v", got)
	}
	if got := run(t, `var i = 5; var j = i++; j`); got != float64(5) {
		t.Errorf("postfix value = %v", got)
	}
	if got := run(t, `var i = 5; var j = ++i; j`); got != float64(6) {
		t.Errorf("prefix value = %v", got)
	}
	if got := run(t, `var o = {n: 1}; o.n++; o.n`); got != float64(2) {
		t.Errorf("member update = %v", got)
	}
	if got := run(t, `var x = 10; x -= 3; x *= 2; x`); got != float64(14) {
		t.Errorf("compound = %v", got)
	}
}

func TestReferenceError(t *testing.T) {
	err := runErr(`neverDeclared + 1`)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != "ReferenceError" {
		t.Fatalf("err = %v, want ReferenceError", err)
	}
	if !strings.Contains(re.Msg, "neverDeclared") {
		t.Errorf("message = %q", re.Msg)
	}
}

func TestUninitializedVariableTypeError(t *testing.T) {
	// The Google Sites bug shape: var editor; ... editor.insert(...)
	err := runErr(`var editor; editor.insert("x")`)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != "TypeError" {
		t.Fatalf("err = %v, want TypeError", err)
	}
	if !strings.Contains(re.Msg, "undefined") {
		t.Errorf("message = %q", re.Msg)
	}
}

func TestNullPropertyTypeError(t *testing.T) {
	err := runErr(`var x = null; x.foo`)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != "TypeError" {
		t.Fatalf("err = %v, want TypeError", err)
	}
}

func TestCallNonFunction(t *testing.T) {
	err := runErr(`var x = 5; x()`)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != "TypeError" {
		t.Fatalf("err = %v, want TypeError", err)
	}
	if !strings.Contains(re.Msg, "x is not a function") {
		t.Errorf("message = %q", re.Msg)
	}
}

func TestDivisionByZero(t *testing.T) {
	err := runErr(`1 / 0`)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != "RangeError" {
		t.Fatalf("err = %v, want RangeError", err)
	}
}

func TestStepLimit(t *testing.T) {
	in := New()
	in.MaxSteps = 1000
	_, err := in.Run(`while (true) {}`)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestTypeofUndeclared(t *testing.T) {
	if got := run(t, `typeof neverDeclared`); got != "undefined" {
		t.Errorf("typeof undeclared = %v", got)
	}
}

func TestTypeofKinds(t *testing.T) {
	cases := map[string]string{
		`typeof 1`:              "number",
		`typeof "s"`:            "string",
		`typeof true`:           "boolean",
		`typeof null`:           "object",
		`typeof undefined`:      "undefined",
		`typeof function() {}`:  "function",
		`typeof {}`:             "object",
		`typeof [1]`:            "object",
		`typeof parseInt`:       "function",
		`typeof (1 + 1)`:        "number",
		`typeof ("a" + "b")`:    "string",
		`typeof (typeof nope)`:  "string",
		`typeof {a: 1}.missing`: "undefined",
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	if got := run(t, `parseInt("42px")`); got != float64(42) {
		t.Errorf("parseInt = %v", got)
	}
	if got := run(t, `parseInt("-7")`); got != float64(-7) {
		t.Errorf("parseInt neg = %v", got)
	}
	if got := run(t, `parseInt("abc")`); got != float64(0) {
		t.Errorf("parseInt non-numeric = %v", got)
	}
	if got := run(t, `String(42)`); got != "42" {
		t.Errorf("String = %v", got)
	}
	if got := run(t, `Number("3.5")`); got != float64(3.5) {
		t.Errorf("Number = %v", got)
	}
	if got := run(t, `fromCharCode(72, 105)`); got != "Hi" {
		t.Errorf("fromCharCode = %v", got)
	}
}

func TestComments(t *testing.T) {
	src := `
		// line comment
		var x = 1; /* block
		comment */ var y = 2;
		x + y`
	if got := run(t, src); got != float64(3) {
		t.Errorf("comments = %v", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`var`, `var 1x = 2`, `if (`, `function f( {}`, `"unterminated`,
		`{a: }`, `x ===`, `for (;;`, `1 +`, `@`, `/* unterminated`,
		`5 = 3`, `++5`,
	}
	for _, src := range bad {
		if err := runErr(src); err == nil {
			t.Errorf("Run(%q) succeeded, want syntax error", src)
		}
	}
}

func TestNativeFuncIntegration(t *testing.T) {
	in := New()
	var captured []Value
	in.Define("report", &NativeFunc{Name: "report", Fn: func(args []Value) (Value, error) {
		captured = append(captured, args...)
		return Undefined, nil
	}})
	if _, err := in.Run(`report(1, "two", true)`); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 3 || captured[1] != "two" {
		t.Fatalf("captured = %v", captured)
	}
}

func TestHostCallIntoScript(t *testing.T) {
	in := New()
	if _, err := in.Run(`function handler(e) { return e + 1; }`); err != nil {
		t.Fatal(err)
	}
	fn, _ := in.Global.Lookup("handler")
	got, err := in.Call(fn, float64(41))
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(42) {
		t.Fatalf("Call = %v", got)
	}
}

func TestCallNonCallableHost(t *testing.T) {
	in := New()
	if _, err := in.Call("nope"); err == nil {
		t.Fatal("Call on string should error")
	}
}

func TestToStringFormats(t *testing.T) {
	cases := map[string]string{
		`"" + 1.5`:       "1.5",
		`"" + 10`:        "10",
		`"" + true`:      "true",
		`"" + null`:      "null",
		`"" + undefined`: "undefined",
		`"" + [1,2]`:     "1,2",
		`"" + {}`:        "[object Object]",
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%s = %v, want %q", src, got, want)
		}
	}
}

func TestGlobalAssignmentWithoutVar(t *testing.T) {
	// Non-strict JS: assigning an undeclared name creates a global.
	src := `function f() { leaked = 9; } f(); leaked`
	if got := run(t, src); got != float64(9) {
		t.Errorf("implicit global = %v", got)
	}
}

// Property: integer arithmetic matches Go.
func TestArithmeticProperty(t *testing.T) {
	in := New()
	f := func(a, b int16) bool {
		src := ToString(float64(a)) + " + " + "(" + ToString(float64(b)) + ")"
		v, err := in.Run(src)
		if err != nil {
			return false
		}
		return v == float64(a)+float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string round-trip through concatenation preserves content for
// quote-free strings.
func TestStringConcatProperty(t *testing.T) {
	in := New()
	f := func(raw []byte) bool {
		s := strings.Map(func(r rune) rune {
			if r == '"' || r == '\\' || r == '\n' || r < 32 {
				return 'x'
			}
			return r
		}, string(raw))
		v, err := in.Run(`"` + s + `" + ""`)
		if err != nil {
			return false
		}
		return v == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
