package script

import "fmt"

// parse builds an AST from source.
func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	prog := &program{base: base{line: 1}}
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.stmts = append(prog.stmts, s)
	}
	return prog, nil
}

type sparser struct {
	toks []token
	pos  int
}

func (p *sparser) cur() token  { return p.toks[p.pos] }
func (p *sparser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *sparser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *sparser) is(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *sparser) accept(text string) bool {
	if p.is(text) {
		p.advance()
		return true
	}
	return false
}

func (p *sparser) expect(text string) error {
	if !p.accept(text) {
		return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected %q, found %s", text, p.cur())}
	}
	return nil
}

// optionalSemi consumes a statement terminator if present. The language
// requires semicolons less strictly than JavaScript's ASI: a closing brace
// or EOF also terminates.
func (p *sparser) optionalSemi() {
	p.accept(";")
}

// ---- statements ----

func (p *sparser) statement() (node, error) {
	t := p.cur()
	switch {
	case p.is("var"):
		return p.varStatement()
	case p.is("function"):
		return p.funcStatement()
	case p.is("if"):
		return p.ifStatement()
	case p.is("while"):
		return p.whileStatement()
	case p.is("for"):
		return p.forStatement()
	case p.is("return"):
		p.advance()
		rs := &returnStmt{base: base{t.line}}
		if !p.is(";") && !p.is("}") && !p.atEOF() {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			rs.expr = e
		}
		p.optionalSemi()
		return rs, nil
	case p.is("break"):
		p.advance()
		p.optionalSemi()
		return &breakStmt{base{t.line}}, nil
	case p.is("continue"):
		p.advance()
		p.optionalSemi()
		return &continueStmt{base{t.line}}, nil
	case p.is(";"):
		p.advance()
		return &exprStmt{base: base{t.line}, expr: &undefinedLit{base{t.line}}}, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.optionalSemi()
		return &exprStmt{base: base{t.line}, expr: e}, nil
	}
}

func (p *sparser) varStatement() (node, error) {
	line := p.cur().line
	p.advance() // var
	var decls []node
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, &SyntaxError{Line: t.line, Msg: "expected variable name"}
		}
		p.advance()
		decl := &varDecl{base: base{line}, name: t.text}
		if p.accept("=") {
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			decl.init = e
		}
		decls = append(decls, decl)
		if !p.accept(",") {
			break
		}
	}
	p.optionalSemi()
	if len(decls) == 1 {
		return decls[0], nil
	}
	// `var a = 1, b = 2` desugars into a statement sequence.
	return &program{base: base{line}, stmts: decls}, nil
}

func (p *sparser) funcStatement() (node, error) {
	line := p.cur().line
	p.advance() // function
	t := p.cur()
	if t.kind != tokIdent {
		return nil, &SyntaxError{Line: t.line, Msg: "expected function name"}
	}
	p.advance()
	params, body, err := p.funcRest()
	if err != nil {
		return nil, err
	}
	return &funcDecl{base: base{line}, name: t.text, params: params, body: body}, nil
}

func (p *sparser) funcRest() (params []string, body []node, err error) {
	if err = p.expect("("); err != nil {
		return
	}
	for !p.is(")") {
		t := p.cur()
		if t.kind != tokIdent {
			err = &SyntaxError{Line: t.line, Msg: "expected parameter name"}
			return
		}
		p.advance()
		params = append(params, t.text)
		if !p.accept(",") {
			break
		}
	}
	if err = p.expect(")"); err != nil {
		return
	}
	body, err = p.block()
	return
}

func (p *sparser) block() ([]node, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []node
	for !p.is("}") {
		if p.atEOF() {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "unterminated block"}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // }
	return stmts, nil
}

// blockOrSingle parses either a braced block or a single statement.
func (p *sparser) blockOrSingle() ([]node, error) {
	if p.is("{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []node{s}, nil
}

func (p *sparser) ifStatement() (node, error) {
	line := p.cur().line
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	st := &ifStmt{base: base{line}, cond: cond, then: then}
	if p.accept("else") {
		if p.is("if") {
			alt, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			st.alt = []node{alt}
		} else {
			alt, err := p.blockOrSingle()
			if err != nil {
				return nil, err
			}
			st.alt = alt
		}
	}
	return st, nil
}

func (p *sparser) whileStatement() (node, error) {
	line := p.cur().line
	p.advance() // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &whileStmt{base: base{line}, cond: cond, body: body}, nil
}

func (p *sparser) forStatement() (node, error) {
	line := p.cur().line
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &forStmt{base: base{line}}
	if !p.is(";") {
		var err error
		if p.is("var") {
			st.init, err = p.varStatement() // consumes the ';'
		} else {
			var e node
			e, err = p.expression()
			st.init = &exprStmt{base: base{line}, expr: e}
			if err == nil {
				err = p.expect(";")
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		p.advance()
	}
	if !p.is(";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		post, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	st.body = body
	return st, nil
}

// ---- expressions (precedence climbing) ----

func (p *sparser) expression() (node, error) { return p.assignment() }

func (p *sparser) assignment() (node, error) {
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/="} {
		if p.is(op) {
			line := p.cur().line
			p.advance()
			if !assignable(left) {
				return nil, &SyntaxError{Line: line, Msg: "invalid assignment target"}
			}
			right, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &assignExpr{base: base{line}, op: op, target: left, value: right}, nil
		}
	}
	return left, nil
}

func assignable(n node) bool {
	switch n.(type) {
	case *identExpr, *memberExpr:
		return true
	default:
		return false
	}
}

func (p *sparser) conditional() (node, error) {
	cond, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.is("?") {
		return cond, nil
	}
	line := p.cur().line
	p.advance()
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	alt, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &condExpr{base: base{line}, cond: cond, then: then, alt: alt}, nil
}

func (p *sparser) logicalOr() (node, error) {
	left, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.is("||") {
		line := p.cur().line
		p.advance()
		right, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		left = &logicalExpr{base: base{line}, op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *sparser) logicalAnd() (node, error) {
	left, err := p.equality()
	if err != nil {
		return nil, err
	}
	for p.is("&&") {
		line := p.cur().line
		p.advance()
		right, err := p.equality()
		if err != nil {
			return nil, err
		}
		left = &logicalExpr{base: base{line}, op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *sparser) equality() (node, error) {
	left, err := p.relational()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range []string{"===", "!==", "==", "!="} {
			if p.is(op) {
				line := p.cur().line
				p.advance()
				right, err := p.relational()
				if err != nil {
					return nil, err
				}
				left = &binaryExpr{base: base{line}, op: op, left: left, right: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *sparser) relational() (node, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range []string{"<=", ">=", "<", ">"} {
			if p.is(op) {
				line := p.cur().line
				p.advance()
				right, err := p.additive()
				if err != nil {
					return nil, err
				}
				left = &binaryExpr{base: base{line}, op: op, left: left, right: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *sparser) additive() (node, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.is("+") || p.is("-") {
		op := p.cur().text
		line := p.cur().line
		p.advance()
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{base: base{line}, op: op, left: left, right: right}
	}
	return left, nil
}

func (p *sparser) multiplicative() (node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.is("*") || p.is("/") || p.is("%") {
		op := p.cur().text
		line := p.cur().line
		p.advance()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{base: base{line}, op: op, left: left, right: right}
	}
	return left, nil
}

func (p *sparser) unary() (node, error) {
	t := p.cur()
	switch {
	case p.is("!") || p.is("-"):
		p.advance()
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{base: base{t.line}, op: t.text, operand: operand}, nil
	case p.is("typeof"):
		p.advance()
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{base: base{t.line}, op: "typeof", operand: operand}, nil
	case p.is("++") || p.is("--"):
		p.advance()
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		if !assignable(operand) {
			return nil, &SyntaxError{Line: t.line, Msg: "invalid increment target"}
		}
		return &updateExpr{base: base{t.line}, op: t.text, prefix: true, operand: operand}, nil
	default:
		return p.postfix()
	}
}

func (p *sparser) postfix() (node, error) {
	e, err := p.callMember()
	if err != nil {
		return nil, err
	}
	if p.is("++") || p.is("--") {
		t := p.cur()
		if !assignable(e) {
			return nil, &SyntaxError{Line: t.line, Msg: "invalid increment target"}
		}
		p.advance()
		return &updateExpr{base: base{t.line}, op: t.text, operand: e}, nil
	}
	return e, nil
}

func (p *sparser) callMember() (node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.is("."):
			line := p.cur().line
			p.advance()
			t := p.cur()
			if t.kind != tokIdent && t.kind != tokKeyword {
				return nil, &SyntaxError{Line: t.line, Msg: "expected property name"}
			}
			p.advance()
			e = &memberExpr{base: base{line}, object: e, property: t.text}
		case p.is("["):
			line := p.cur().line
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &memberExpr{base: base{line}, object: e, index: idx}
		case p.is("("):
			line := p.cur().line
			p.advance()
			var args []node
			for !p.is(")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e = &callExpr{base: base{line}, callee: e, args: args}
		default:
			return e, nil
		}
	}
}

func (p *sparser) primary() (node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &numberLit{base: base{t.line}, val: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return &stringLit{base: base{t.line}, val: t.text}, nil
	case p.is("true"), p.is("false"):
		p.advance()
		return &boolLit{base: base{t.line}, val: t.text == "true"}, nil
	case p.is("null"):
		p.advance()
		return &nullLit{base{t.line}}, nil
	case p.is("undefined"):
		p.advance()
		return &undefinedLit{base{t.line}}, nil
	case p.is("function"):
		p.advance()
		// Optional name on function expressions is ignored.
		if p.cur().kind == tokIdent {
			p.advance()
		}
		params, body, err := p.funcRest()
		if err != nil {
			return nil, err
		}
		return &funcLit{base: base{t.line}, params: params, body: body}, nil
	case p.is("("):
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.is("["):
		p.advance()
		lit := &arrayLit{base: base{t.line}}
		for !p.is("]") {
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.elems = append(lit.elems, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return lit, nil
	case p.is("{"):
		p.advance()
		lit := &objectLit{base: base{t.line}}
		for !p.is("}") {
			k := p.cur()
			if k.kind != tokIdent && k.kind != tokString && k.kind != tokKeyword {
				return nil, &SyntaxError{Line: k.line, Msg: "expected property key"}
			}
			p.advance()
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			v, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.keys = append(lit.keys, k.text)
			lit.vals = append(lit.vals, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return lit, nil
	case t.kind == tokIdent:
		p.advance()
		return &identExpr{base: base{t.line}, name: t.text}, nil
	default:
		return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unexpected token %s", t)}
	}
}
