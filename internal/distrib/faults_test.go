package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/faults"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// faultWorkerNames are the identities startFaultWorkers assigns, in
// order — generated crash ops target these.
func faultWorkerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("test-worker-%d", i)
	}
	return names
}

// startFaultWorkers runs n workers with a fast retry policy and, when
// in is non-nil, a client-side fault-injecting transport. Workers that
// die to a crash directive simply stay dead — exactly like a killed
// warr-worker process.
func startFaultWorkers(t *testing.T, coordinator string, n int, in *faults.Injector) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, id := range faultWorkerNames(n) {
		w := NewWorker(WorkerOptions{
			Coordinator:    coordinator,
			ID:             id,
			Client:         &http.Client{Transport: &faults.Transport{Injector: in}, Timeout: 30 * time.Second},
			PollInterval:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			RetryAttempts:  8,
			RetryBase:      2 * time.Millisecond,
			RetryCap:       50 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// runCampaignDeadline is runCampaign with a convergence watchdog: a
// fault schedule that wedges the protocol should fail the test, not
// hang the suite.
func runCampaignDeadline(t *testing.T, engine *jobs.Engine, spec jobs.Spec, d time.Duration) *weberr.Report {
	t.Helper()
	job, err := engine.Submit(spec)
	if err != nil {
		t.Fatalf("submitting campaign: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("campaign did not converge within %v: %v", d, err)
	}
	if err := job.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	rep := job.Report()
	if rep == nil {
		t.Fatal("campaign produced no report")
	}
	return rep
}

// TestFaultScheduleConvergence is the convergence property test: a
// corpus of generated fault schedules — seeded, so any failure
// reproduces from its seed alone — runs Table II navigation campaigns
// through the distributed path at 1 and 3 workers, and every run must
// produce findings byte-identical to flat in-process execution. Even
// seeds arm the coordinator side (drops, delays, corrupted transfers,
// worker-crash directives); odd seeds arm the workers' client
// transports (which cannot observe grants, so no crash ops). Losing
// the whole fleet to a crash at 1 worker must fall back to local
// execution with the same findings.
func TestFaultScheduleConvergence(t *testing.T) {
	const seeds = 20
	scenarios := apps.TableIIScenarios()

	flats := make([]*weberr.Report, len(scenarios))
	grammars := make([]*weberr.Grammar, len(scenarios))
	for i, sc := range scenarios {
		_, g := scenarioGrammar(t, sc)
		grammars[i] = g
		flatEngine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
		flats[i] = runCampaign(t, flatEngine, jobs.Spec{
			Kind: jobs.KindNavigationCampaign, Grammar: g,
			Parallelism: 1, DisablePrefixSharing: true,
		})
		flatEngine.Close()
	}

	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		sci := int(seed) % len(scenarios)
		poolSide := seed%2 == 0
		side := "transport"
		gopts := faults.GenOptions{}
		if poolSide {
			side = "pool"
			gopts.Workers = faultWorkerNames(3)
		}
		sched := faults.Generate(seed, gopts)
		t.Run(fmt.Sprintf("seed%02d_%s", seed, side), func(t *testing.T) {
			for _, n := range []int{1, 3} {
				n := n
				t.Run(fmt.Sprintf("workers%d", n), func(t *testing.T) {
					t.Logf("scenario %s, schedule %s", scenarios[sci].Name, sched)
					// A fresh injector per run: ordinal counters are
					// stateful and must start from zero every time.
					in := faults.NewInjector(sched, t.Logf)
					popts := PoolOptions{LeaseTTL: 300 * time.Millisecond, Logf: t.Logf}
					var clientIn *faults.Injector
					if poolSide {
						popts.Faults = in
					} else {
						clientIn = in
					}
					pool := NewPool(popts)
					srv := httptest.NewServer(pool.Handler())
					t.Cleanup(srv.Close)
					startFaultWorkers(t, srv.URL, n, clientIn)
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					if err := pool.WaitForWorkers(ctx, n); err != nil {
						t.Fatalf("workers never connected: %v", err)
					}
					engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8, Distributor: pool})
					t.Cleanup(engine.Close)
					dist := runCampaignDeadline(t, engine, jobs.Spec{
						Kind: jobs.KindNavigationCampaign, Grammar: grammars[sci],
						Parallelism: 1,
					}, time.Minute)
					assertFindingsEqual(t, fmt.Sprintf("seed %d %s workers=%d", seed, side, n), flats[sci], dist)
					if in.Total() == 0 {
						t.Logf("seed %d: no fault fired (schedule %s never matched)", seed, sched)
					} else {
						t.Logf("seed %d: %d faults fired: %v", seed, in.Total(), in.Fired())
					}
				})
			}
		})
	}
}

// TestLateCompletionAfterReapCreditsOnce is the reaping-idempotency
// regression: a worker leases a shard, goes silent past the TTL (its
// lease is reaped, the shard re-queued), and then its completion
// report arrives late. The token must credit the shard exactly once —
// the re-queued copy is never granted again, a duplicate report is
// acknowledged without merging, and the failover must not count as a
// stolen tail.
func TestLateCompletionAfterReapCreditsOnce(t *testing.T) {
	sc := apps.TableIIScenarios()[0]
	_, g := scenarioGrammar(t, sc)
	copts := weberr.CampaignOptions{Replayer: replayer.Options{Pacing: replayer.PaceNone}}
	plan := weberr.NavigationPlan(g, copts)
	exec := weberr.NavigationExecutor(apps.BrowserFactory(browser.DeveloperMode), copts)

	ttl := 150 * time.Millisecond
	pool := NewPool(PoolOptions{LeaseTTL: ttl, ShardFactor: 4, Logf: t.Logf})

	// The keeper is a phantom worker that only heartbeats: it keeps the
	// pool from declaring the fleet dead while the test drives grants
	// and completions by hand.
	kctx, kcancel := context.WithCancel(context.Background())
	defer kcancel()
	pool.touch("keeper")
	go func() {
		tick := time.NewTicker(ttl / 4)
		defer tick.Stop()
		for {
			select {
			case <-kctx.Done():
				return
			case <-tick.C:
				pool.touch("keeper")
			}
		}
	}()

	type distResult struct {
		outs []campaign.Outcome
		ok   bool
	}
	resCh := make(chan distResult, 1)
	go func() {
		outs, ok := pool.DistributeCampaign(context.Background(), exec, plan, jobs.DistSpec{Campaign: "navigation"})
		resCh <- distResult{outs, ok}
	}()

	// The slow worker leases the first shard, then goes silent.
	pool.touch("slow")
	var slowLease WireLease
	deadline := time.Now().Add(10 * time.Second)
	for {
		slowLease = pool.grant("slow")
		if slowLease.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow worker was never granted a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, slowShard, ok := parseToken(slowLease.Token)
	if !ok {
		t.Fatalf("lease token %q did not parse", slowLease.Token)
	}

	// Wait for the TTL reap to forfeit the silent worker's lease.
	for deadline = time.Now().Add(10 * time.Second); ; {
		pool.mu.Lock()
		_, held := pool.run.leases[slowLease.ID]
		pool.mu.Unlock()
		if !held {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent worker's lease was never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	skippedOutcomes := func(l WireLease) []jobs.OutcomeEvent {
		evs := make([]jobs.OutcomeEvent, len(l.Jobs))
		for i := range evs {
			evs[i] = encodeOutcome(i, campaign.Outcome{Skipped: true})
		}
		return evs
	}

	// The late report: the lease is gone, but the token must credit the
	// shard — the work is valid, the worker was merely slow.
	late := CompleteMsg{Worker: "slow", Lease: slowLease.ID, Token: slowLease.Token,
		Outcomes: skippedOutcomes(slowLease), Retries: 2}
	pool.complete(late)
	pool.mu.Lock()
	credited := pool.run != nil && pool.run.completed[slowShard]
	deduped := pool.completionsDeduped
	pool.mu.Unlock()
	if !credited {
		t.Fatalf("late completion of shard %d was not credited", slowShard)
	}
	if deduped != 0 {
		t.Fatalf("late completion was deduplicated (deduped=%d), want credited", deduped)
	}

	// The exact duplicate must be acknowledged but not merged again.
	dup := CompleteMsg{Worker: "slow", Lease: slowLease.ID, Token: slowLease.Token,
		Outcomes: skippedOutcomes(slowLease)}
	pool.complete(dup)

	// Drain the rest through the keeper. The reaped-and-credited shard
	// was re-queued by the reap, but must never be granted again.
	for deadline = time.Now().Add(30 * time.Second); ; {
		select {
		case res := <-resCh:
			if !res.ok {
				t.Fatal("campaign aborted to local execution")
			}
			if len(res.outs) != len(plan) {
				t.Fatalf("campaign merged %d outcomes, want %d", len(res.outs), len(plan))
			}
			if got := poolMetric(t, pool, "warr_completions_deduped_total"); got != "1" {
				t.Errorf("warr_completions_deduped_total = %s, want 1", got)
			}
			if got := poolMetric(t, pool, "warr_distrib_stolen_tails_total"); got != "0" {
				t.Errorf("warr_distrib_stolen_tails_total = %s, want 0 (failover is not stealing)", got)
			}
			if got := poolMetric(t, pool, "warr_retries_total"); got != "2" {
				t.Errorf("warr_retries_total = %s, want the late report's 2", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never converged")
		}
		l := pool.grant("keeper")
		if l.Status != StatusLease {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if _, si, _ := parseToken(l.Token); si == slowShard {
			t.Fatalf("credited shard %d was granted again", slowShard)
		}
		pool.complete(CompleteMsg{Worker: "keeper", Lease: l.ID, Token: l.Token,
			Outcomes: skippedOutcomes(l)})
	}
}

// TestCompletionChecksumRejectsCorruption pins the merge-integrity
// edge the checksum exists for: a flipped byte inside a JSON string
// still decodes as JSON, so only Verify keeps it out of the merge. The
// handler must 400 (the worker's retry resends clean bytes), accept
// the intact sealed message, and tolerate unsealed messages from
// older workers.
func TestCompletionChecksumRejectsCorruption(t *testing.T) {
	pool := NewPool(PoolOptions{})
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/complete", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A long token keeps the body's middle byte inside a string value:
	// the corruption decodes fine and only the checksum can catch it.
	msg := CompleteMsg{Worker: "w1", Lease: "lease-1", Token: strings.Repeat("a", 1024) + "/3"}
	if err := msg.Seal(); err != nil {
		t.Fatal(err)
	}
	clean, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}

	resp := post(faults.CorruptBody(append([]byte(nil), clean...)))
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupted completion: %s, want 400", resp.Status)
	}
	if !strings.Contains(string(text), "checksum") {
		t.Errorf("corrupted completion rejected for %q, want the checksum", strings.TrimSpace(string(text)))
	}

	resp = post(clean)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("sealed completion: %s, want 204", resp.Status)
	}

	unsealed, err := json.Marshal(CompleteMsg{Worker: "w1", Lease: "lease-2"})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(unsealed)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("unsealed completion: %s, want 204 (older workers carry no checksum)", resp.Status)
	}
}
