// Package distrib runs a campaign across worker processes: a
// coordinator plans the trace trie into shards (internal/campaign),
// parks each shard's branch-point world as a durable image
// (internal/image), and hands shards out over localhost HTTP/JSON to
// workers that restore the image and continue the subtree with the
// very same scheduler the in-process executor uses. The coordinator
// side implements jobs.Distributor, so the shared job engine offers it
// every campaign before falling back to local execution; the worker
// side is a poll loop any process linking the app registry can run
// (cmd/warr-worker, or weberr -workers N in-process).
//
// The protocol reuses the internal/jobs event vocabulary: a worker
// reports its shard's results as jobs.OutcomeEvent lines, the exact
// shape the engine publishes per trace — so a shard completion is
// literally a slice of the campaign's event stream, indexed by
// position within the shard.
//
// Fault tolerance is lease-based. A lease is live while its worker
// keeps heartbeating; a worker that dies (or stalls past the TTL)
// forfeits its leases and the coordinator re-queues those shards for
// the surviving workers. Findings are identical to flat single-process
// execution under any sharding, worker count, or mid-campaign worker
// death: a pruned trace can never produce a finding, so per-shard
// prune tables only shift the Replayed/Pruned split, never verdicts.
package distrib

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"hash/fnv"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Lease statuses.
const (
	// StatusLease grants a shard.
	StatusLease = "lease"
	// StatusWait means a campaign is running but no shard is queued
	// right now; poll again soon (a re-queue may produce one).
	StatusWait = "wait"
	// StatusIdle means no campaign is running.
	StatusIdle = "idle"
)

// WireJob is one shard job on the wire: the trace and its pacing
// override. Meta never crosses the boundary — it is coordinator-side
// context (e.g. weberr's Injection) rebound when outcomes merge.
type WireJob struct {
	Pacing replayer.Pacing `json:"pacing,omitempty"`
	Trace  command.Trace   `json:"trace"`
}

// WireLease is the coordinator's reply to a lease poll. When Status is
// StatusLease it carries one shard plus everything the worker needs to
// rebuild the campaign's executor: the campaign kind names the oracle
// (closures cannot cross processes), the browser mode names the
// environment build, and the replayer options ride in their
// serializable image form (hooks excluded — leases are never granted
// for hooked campaigns).
type WireLease struct {
	Status string `json:"status"`
	ID     string `json:"id,omitempty"`
	// Campaign is "navigation", "timing", "fuzz", or "load".
	Campaign       string                `json:"campaign,omitempty"`
	Mode           browser.Mode          `json:"mode,omitempty"`
	Replayer       replayer.OptionsImage `json:"replayer"`
	DisablePruning bool                  `json:"disablePruning,omitempty"`
	Parallelism    int                   `json:"parallelism,omitempty"`
	// Image is the content digest of the branch-point image; the worker
	// fetches the bytes from GET /image/{digest}.
	Image string `json:"image,omitempty"`
	// Depth is how many commands of every job the imaged session has
	// already replayed.
	Depth int       `json:"depth,omitempty"`
	Jobs  []WireJob `json:"jobs,omitempty"`
	// TTLMillis is the lease's heartbeat deadline: the worker must
	// contact the coordinator again within this interval or the shard
	// is re-queued.
	TTLMillis int64 `json:"ttlMillis,omitempty"`
	// Token is the idempotent completion token: "<run>/<shard>", echoed
	// back in CompleteMsg so the coordinator can credit a late
	// completion to its shard even after the lease was reaped — and
	// acknowledge (not double-count) a duplicate.
	Token string `json:"token,omitempty"`
	// Crash directs the worker to die on receipt without executing or
	// reporting — the coordinator-side fault injector's worker-crash op.
	// The lease then expires through the normal TTL reaping path.
	Crash bool `json:"crash,omitempty"`
	// LoadJobs is a load-campaign shard ("load" leases carry these
	// instead of Image/Jobs): self-describing multi-user schedule jobs
	// the worker executes in fresh shared worlds of its own.
	LoadJobs []multiuser.ScheduleJob `json:"loadJobs,omitempty"`
}

// CompleteMsg reports a finished shard: one OutcomeEvent per shard job,
// indexed by position within the shard — or, for load leases, one
// ScheduleResult per schedule job, carrying the lease's original job
// indices.
type CompleteMsg struct {
	Worker      string                     `json:"worker"`
	Lease       string                     `json:"lease"`
	Outcomes    []jobs.OutcomeEvent        `json:"outcomes,omitempty"`
	LoadResults []multiuser.ScheduleResult `json:"loadResults,omitempty"`
	// Token echoes the lease's completion token, so the report stays
	// creditable after the lease itself was reaped.
	Token string `json:"token,omitempty"`
	// Retries is the number of request retries the worker spent since
	// its last report — the coordinator accumulates them into
	// warr_retries_total.
	Retries int64 `json:"retries,omitempty"`
	// Sum is the FNV-1a checksum of the message's canonical encoding
	// with Sum zeroed (see Seal). A corrupted transfer that still
	// decodes as JSON — a flipped byte inside a string value — would
	// otherwise merge garbage into the campaign; the checksum turns
	// every corruption into a rejection the worker's retry recovers
	// from. 0 means unsealed (accepted for mixed-version tolerance).
	Sum uint64 `json:"sum,omitempty"`
}

// Seal stamps the message's integrity checksum; call it last, after
// every other field is final.
func (m *CompleteMsg) Seal() error {
	m.Sum = 0
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(b)
	m.Sum = h.Sum64()
	return nil
}

// Verify checks the integrity checksum of a received message. Unsealed
// messages (Sum 0) pass.
func (m CompleteMsg) Verify() bool {
	sum := m.Sum
	if sum == 0 {
		return true
	}
	m.Sum = 0
	b, err := json.Marshal(m)
	if err != nil {
		return false
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64() == sum
}

// wireReplayer extracts the serializable subset of replayer options
// for the lease. Hooked campaigns are never planned (PlanShards
// refuses them), so nothing is lost.
func wireReplayer(o replayer.Options) replayer.OptionsImage {
	return replayer.OptionsImage{
		Pacing:                    o.Pacing,
		DisableRelaxation:         o.DisableRelaxation,
		DisableCoordinateFallback: o.DisableCoordinateFallback,
		Driver:                    o.Driver,
	}
}

// unwireReplayer rebuilds worker-side replayer options from the lease.
func unwireReplayer(o replayer.OptionsImage) replayer.Options {
	return replayer.Options{
		Pacing:                    o.Pacing,
		DisableRelaxation:         o.DisableRelaxation,
		DisableCoordinateFallback: o.DisableCoordinateFallback,
		Driver:                    o.Driver,
	}
}

// encodeOutcome renders one shard outcome as the engine's per-trace
// event shape. Index is the outcome's position within the shard. The
// status/finding semantics mirror the engine's own encoding: findings
// are reported only for replays that ran to a judgeable end.
func encodeOutcome(i int, out campaign.Outcome) jobs.OutcomeEvent {
	ev := jobs.OutcomeEvent{Type: "outcome", Index: i}
	switch {
	case out.Skipped:
		ev.Status = "skipped"
	case out.Pruned:
		ev.Status = "pruned"
	case out.Result == nil:
		// A session-level failure with no result behaves like a skip.
		ev.Status = "skipped"
	case out.Result.Cancelled:
		ev.Status = "cancelled"
		ev.Played, ev.Failed = out.Result.Played, out.Result.Failed
	default:
		ev.Status = "replayed"
		ev.Played, ev.Failed = out.Result.Played, out.Result.Failed
		if out.Verdict != nil {
			ev.Finding = true
			ev.Observed = out.Verdict.Error()
		}
	}
	if len(out.Coverage) > 0 {
		// Fuzz campaigns: the coverage fingerprint rides the wire hex-
		// encoded so the coordinator's fuzz loop can merge worker
		// coverage into its corpus.
		ev.Coverage = hex.EncodeToString(out.Coverage)
	}
	return ev
}

// decodeOutcome rebuilds a campaign outcome from its wire event. Step
// lists do not cross the wire — campaign reports aggregate only
// played/failed counts and verdicts, which survive exactly. The
// verdict comes back as an opaque error carrying the observed message,
// the same text the engine would publish for a local finding.
func decodeOutcome(ev jobs.OutcomeEvent) campaign.Outcome {
	var out campaign.Outcome
	switch ev.Status {
	case "skipped":
		out.Skipped = true
	case "pruned":
		out.Pruned = true
	case "cancelled":
		out.Result = &replayer.Result{Played: ev.Played, Failed: ev.Failed, Cancelled: true}
	default:
		out.Result = &replayer.Result{Played: ev.Played, Failed: ev.Failed}
		if ev.Finding {
			out.Verdict = errors.New(ev.Observed)
		}
	}
	if ev.Coverage != "" {
		if cov, err := hex.DecodeString(ev.Coverage); err == nil {
			out.Coverage = cov
		}
	}
	return out
}
