package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/experiments"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// scenarioGrammar records a Table II scenario and infers its grammar —
// the front half of the engine's navigation-campaign path.
func scenarioGrammar(t *testing.T, sc apps.Scenario) (*experiments.Recorded, *weberr.Grammar) {
	t.Helper()
	rec, err := experiments.RecordScenario(sc)
	if err != nil {
		t.Fatalf("recording %s: %v", sc.Name, err)
	}
	tree, err := weberr.InferTaskTree(apps.BrowserFactory(browser.DeveloperMode), rec.Trace)
	if err != nil {
		t.Fatalf("inferring %s: %v", sc.Name, err)
	}
	return rec, weberr.FromTaskTree(tree)
}

// runCampaign submits one campaign job and waits for its report.
func runCampaign(t *testing.T, engine *jobs.Engine, spec jobs.Spec) *weberr.Report {
	t.Helper()
	job, err := engine.Submit(spec)
	if err != nil {
		t.Fatalf("submitting campaign: %v", err)
	}
	_ = job.Wait(nil)
	if err := job.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	rep := job.Report()
	if rep == nil {
		t.Fatal("campaign produced no report")
	}
	return rep
}

// startWorkers runs n pool workers against the coordinator URL and
// stops them at test end.
func startWorkers(t *testing.T, coordinator string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerOptions{
			Coordinator:  coordinator,
			ID:           fmt.Sprintf("test-worker-%d", i),
			PollInterval: 2 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// distribEngine wires a pool, its HTTP surface, and n workers into a
// fresh job engine.
func distribEngine(t *testing.T, workers int, ttl time.Duration) (*jobs.Engine, *Pool) {
	t.Helper()
	pool := NewPool(PoolOptions{LeaseTTL: ttl, Logf: t.Logf})
	srv := httptest.NewServer(pool.Handler())
	t.Cleanup(srv.Close)
	startWorkers(t, srv.URL, workers)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.WaitForWorkers(ctx, workers); err != nil {
		t.Fatalf("workers never connected: %v", err)
	}
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8, Distributor: pool})
	t.Cleanup(engine.Close)
	return engine, pool
}

// assertFindingsEqual requires the distributed report's findings to be
// byte-identical to the flat one's — injection and observation, in
// canonical order.
func assertFindingsEqual(t *testing.T, label string, flat, dist *weberr.Report) {
	t.Helper()
	if flat.Generated != dist.Generated {
		t.Errorf("%s: generated %d traces, flat %d", label, dist.Generated, flat.Generated)
	}
	fk, dk := experiments.FindingKeys(flat), experiments.FindingKeys(dist)
	if !reflect.DeepEqual(fk, dk) {
		t.Errorf("%s: findings diverged\nflat:        %v\ndistributed: %v", label, fk, dk)
	}
	// The Replayed/Pruned split may shift across shard boundaries, but
	// nothing may be lost.
	if ft, dt := flat.Replayed+flat.Pruned+flat.Skipped, dist.Replayed+dist.Pruned+dist.Skipped; ft != dt {
		t.Errorf("%s: accounted %d traces, flat %d", label, dt, ft)
	}
}

// TestDistributedMatchesFlat runs the navigation campaign of every
// Table II scenario through a coordinator and worker fleet and
// requires findings byte-identical to flat single-process execution.
// The first scenario also runs at several worker counts.
func TestDistributedMatchesFlat(t *testing.T) {
	for i, sc := range apps.TableIIScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			_, g := scenarioGrammar(t, sc)
			spec := jobs.Spec{
				Kind: jobs.KindNavigationCampaign, Grammar: g,
				Parallelism: 1, DisablePrefixSharing: true,
			}
			flatEngine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
			defer flatEngine.Close()
			flat := runCampaign(t, flatEngine, spec)

			counts := []int{2}
			if i == 0 {
				counts = []int{1, 2, 3}
			}
			for _, n := range counts {
				engine, pool := distribEngine(t, n, time.Second)
				spec := spec
				spec.DisablePrefixSharing = false
				dist := runCampaign(t, engine, spec)
				assertFindingsEqual(t, fmt.Sprintf("%s workers=%d", sc.Name, n), flat, dist)
				if got := poolMetric(t, pool, "warr_distrib_campaigns_total"); got == "0" {
					t.Errorf("workers=%d: campaign was not distributed", n)
				}
			}
		})
	}
}

// TestDistributedTimingMatchesFlat covers the timing campaign: mixed
// pacing puts jobs in different trie roots, so the plan mixes real
// branch-point shards with whole-root tails.
func TestDistributedTimingMatchesFlat(t *testing.T) {
	sc := apps.TableIIScenarios()[0]
	rec, _ := scenarioGrammar(t, sc)
	spec := jobs.Spec{Kind: jobs.KindTimingCampaign, Trace: rec.Trace, DisablePrefixSharing: true}

	flatEngine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
	defer flatEngine.Close()
	flat := runCampaign(t, flatEngine, spec)

	engine, _ := distribEngine(t, 2, time.Second)
	spec.DisablePrefixSharing = false
	dist := runCampaign(t, engine, spec)
	assertFindingsEqual(t, "timing", flat, dist)
}

// TestWorkerDeathRequeues injects a worker that leases a shard and
// dies without heartbeating or reporting. Its lease must expire, the
// shard must re-queue, and the surviving worker must still deliver
// findings identical to flat execution.
func TestWorkerDeathRequeues(t *testing.T) {
	sc := apps.TableIIScenarios()[0]
	_, g := scenarioGrammar(t, sc)
	spec := jobs.Spec{
		Kind: jobs.KindNavigationCampaign, Grammar: g,
		Parallelism: 1, DisablePrefixSharing: true,
	}
	flatEngine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
	defer flatEngine.Close()
	flat := runCampaign(t, flatEngine, spec)

	ttl := 250 * time.Millisecond
	pool := NewPool(PoolOptions{LeaseTTL: ttl, Logf: t.Logf})
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	// The doomed worker: polls until it is granted a lease, then goes
	// silent forever, holding the shard hostage until the TTL reaps it.
	died := make(chan string, 1)
	go func() {
		for {
			resp, err := http.Post(srv.URL+"/lease?worker=doomed", "", nil)
			if err != nil {
				return
			}
			var l WireLease
			err = json.NewDecoder(resp.Body).Decode(&l)
			resp.Body.Close()
			if err != nil {
				return
			}
			if l.Status == StatusLease {
				died <- l.ID
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	startWorkers(t, srv.URL, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pool.WaitForWorkers(ctx, 2); err != nil {
		t.Fatalf("workers never connected: %v", err)
	}

	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8, Distributor: pool})
	defer engine.Close()
	spec.DisablePrefixSharing = false
	dist := runCampaign(t, engine, spec)

	select {
	case <-died:
	default:
		t.Error("the doomed worker was never granted a lease")
	}
	assertFindingsEqual(t, "after worker death", flat, dist)
}

// TestPoolRefusals pins when the pool hands campaigns back to local
// execution.
func TestPoolRefusals(t *testing.T) {
	sc := apps.TableIIScenarios()[0]
	_, g := scenarioGrammar(t, sc)
	copts := weberr.CampaignOptions{Replayer: replayer.Options{Pacing: replayer.PaceNone}}
	plan := weberr.NavigationPlan(g, copts)
	exec := weberr.NavigationExecutor(apps.BrowserFactory(browser.DeveloperMode), copts)

	// No workers connected.
	pool := NewPool(PoolOptions{})
	if _, ok := pool.DistributeCampaign(nil, exec, plan, jobs.DistSpec{Campaign: "navigation"}); ok {
		t.Error("distributed a campaign with no workers connected")
	}

	// Busy pool: a placeholder run occupies the slot.
	pool.touch("w1")
	pool.mu.Lock()
	pool.run = &poolRun{}
	pool.mu.Unlock()
	if _, ok := pool.DistributeCampaign(nil, exec, plan, jobs.DistSpec{Campaign: "navigation"}); ok {
		t.Error("distributed a campaign while another was running")
	}
}

// poolMetric extracts one metric value from the pool's Prometheus text.
func poolMetric(t *testing.T, pool *Pool, name string) string {
	t.Helper()
	var b strings.Builder
	pool.WriteMetrics(&b)
	for _, line := range strings.Split(b.String(), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s not present in:\n%s", name, b.String())
	return ""
}

// TestPoolMetrics checks the worker-pool gauges warr-serve appends to
// /metrics.
func TestPoolMetrics(t *testing.T) {
	pool := NewPool(PoolOptions{LeaseTTL: time.Second})
	for _, name := range []string{
		"warr_distrib_workers_connected",
		"warr_distrib_leased_shards",
		"warr_distrib_images_shipped_total",
		"warr_distrib_stolen_tails_total",
		"warr_distrib_campaigns_total",
	} {
		if got := poolMetric(t, pool, name); got != "0" {
			t.Errorf("idle pool: %s = %s, want 0", name, got)
		}
	}
	pool.touch("w1")
	if got := poolMetric(t, pool, "warr_distrib_workers_connected"); got != "1" {
		t.Errorf("workers_connected = %s after contact, want 1", got)
	}
}

// TestLeaseEndpointValidation pins the HTTP protocol edges workers rely
// on.
func TestLeaseEndpointValidation(t *testing.T) {
	pool := NewPool(PoolOptions{})
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/lease", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("anonymous lease poll: %s, want 400", resp.Status)
	}

	resp, err = http.Post(srv.URL+"/lease?worker="+url.QueryEscape("w1"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var l WireLease
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if l.Status != StatusIdle {
		t.Errorf("idle pool leased %q, want %q", l.Status, StatusIdle)
	}

	resp, err = http.Get(srv.URL + "/image/no-such-digest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing image: %s, want 404", resp.Status)
	}
}

// TestOutcomeWireRoundTrip pins the outcome ↔ OutcomeEvent mapping the
// completion protocol rests on.
func TestOutcomeWireRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		out    campaign.Outcome
		status string
	}{
		{"skipped", campaign.Outcome{Skipped: true}, "skipped"},
		{"pruned", campaign.Outcome{Pruned: true}, "pruned"},
		{"no result", campaign.Outcome{Err: fmt.Errorf("navigation failed")}, "skipped"},
		{"cancelled", campaign.Outcome{Result: &replayer.Result{Played: 3, Failed: 0, Cancelled: true}}, "cancelled"},
		{"replayed", campaign.Outcome{Result: &replayer.Result{Played: 5, Failed: 1}}, "replayed"},
		{"finding", campaign.Outcome{
			Result:  &replayer.Result{Played: 5},
			Verdict: fmt.Errorf("console errors: boom"),
		}, "replayed"},
	}
	for i, c := range cases {
		ev := encodeOutcome(i, c.out)
		if ev.Status != c.status {
			t.Errorf("%s: status %q, want %q", c.name, ev.Status, c.status)
		}
		if ev.Index != i {
			t.Errorf("%s: index %d, want %d", c.name, ev.Index, i)
		}
		back := decodeOutcome(ev)
		if back.Skipped != (c.status == "skipped") || back.Pruned != c.out.Pruned {
			t.Errorf("%s: decoded flags diverged: %+v", c.name, back)
		}
		if c.out.Result != nil && c.status != "skipped" {
			if back.Result == nil {
				t.Fatalf("%s: result lost", c.name)
			}
			if back.Result.Played != c.out.Result.Played || back.Result.Failed != c.out.Result.Failed ||
				back.Result.Cancelled != c.out.Result.Cancelled {
				t.Errorf("%s: result diverged: %+v", c.name, back.Result)
			}
		}
		if (c.out.Verdict != nil) != (back.Verdict != nil) {
			t.Errorf("%s: verdict lost or invented", c.name)
		} else if c.out.Verdict != nil && back.Verdict.Error() != c.out.Verdict.Error() {
			t.Errorf("%s: verdict %q, want %q", c.name, back.Verdict, c.out.Verdict)
		}
	}
}
