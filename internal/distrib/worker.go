package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/errmodel"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// workerSeq disambiguates default worker ids within one process
// (weberr -workers N runs several workers in-process).
var workerSeq atomic.Int64

// ErrCrashed is returned by Run when a lease carries the fault
// injector's crash directive: the worker dies on the spot — no
// execution, no heartbeat, no report — and its leases expire through
// the coordinator's normal TTL reaping.
var ErrCrashed = errors.New("distrib: worker killed by crash directive")

// WorkerOptions configure a campaign worker.
type WorkerOptions struct {
	// Coordinator is the base URL of the pool's handler, e.g.
	// http://127.0.0.1:8080/api/distrib.
	Coordinator string
	// ID names the worker to the coordinator; leases and liveness are
	// keyed by it. Defaults to worker-<pid>-<n>.
	ID string
	// Client is the HTTP client. The default carries a 30s overall
	// timeout — a worker must never hang forever on a stuck coordinator
	// socket.
	Client *http.Client
	// PollInterval is the idle re-poll delay (default 50ms). Failing
	// polls back off exponentially from this up to RetryCap.
	PollInterval time.Duration
	// RequestTimeout bounds each control request — lease polls,
	// heartbeats, completions (default 5s). Image downloads get four
	// times this.
	RequestTimeout time.Duration
	// RetryAttempts is how many times a failed image fetch or completion
	// report is retried (default 6) with capped jittered exponential
	// backoff from RetryBase (default 25ms) up to RetryCap (default 2s).
	RetryAttempts int
	RetryBase     time.Duration
	RetryCap      time.Duration
	// EnvFactory overrides how flat-fallback environments are built per
	// browser mode; the default is the process's full app registry —
	// the same worlds the engine uses.
	EnvFactory func(mode browser.Mode) campaign.EnvFactory
	// Logf, when set, receives per-lease notices.
	Logf func(format string, args ...any)
}

// Worker is the executing side of a distributed campaign: it polls the
// coordinator for shard leases, restores each lease's branch-point
// image into a fresh world, continues the subtree through the standard
// campaign scheduler, and reports outcomes in the jobs event
// vocabulary. Image bytes are cached by content digest, so the many
// shards forked from one branch point download their world once.
type Worker struct {
	opts  WorkerOptions
	base  string
	cache map[string]*image.Image

	// retries tallies request retries since the last completion report;
	// each report carries the tally to the coordinator's
	// warr_retries_total counter.
	retries atomic.Int64

	// rng drives backoff jitter, seeded from the worker's ID so a fleet
	// retrying the same outage spreads out deterministically per worker.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewWorker returns a worker ready to Run.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("worker-%d-%d", os.Getpid(), workerSeq.Add(1))
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.RetryAttempts <= 0 {
		opts.RetryAttempts = 6
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 25 * time.Millisecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 2 * time.Second
	}
	if opts.EnvFactory == nil {
		opts.EnvFactory = func(mode browser.Mode) campaign.EnvFactory {
			return registry.BrowserFactory(mode)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(opts.ID))
	return &Worker{
		opts:  opts,
		base:  strings.TrimSuffix(opts.Coordinator, "/"),
		cache: make(map[string]*image.Image),
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
	}
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.opts.ID }

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run polls for leases until ctx is cancelled. A worker killed
// mid-shard simply stops heartbeating: the coordinator re-queues the
// lease, so Run never reports a partially-executed shard.
func (w *Worker) Run(ctx context.Context) error {
	pollDelay := w.opts.PollInterval
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		l, err := w.lease(ctx)
		if err != nil || l.Status != StatusLease {
			delay := w.opts.PollInterval
			if err != nil {
				// A failing poll backs off exponentially (with jitter, up
				// to RetryCap) so a fleet does not hammer a struggling
				// coordinator; an idle poll keeps the configured cadence.
				w.logf("distrib: %s: lease poll: %v", w.opts.ID, err)
				w.retries.Add(1)
				delay = pollDelay + w.jitter(pollDelay)
				if pollDelay *= 2; pollDelay > w.opts.RetryCap {
					pollDelay = w.opts.RetryCap
				}
			} else {
				pollDelay = w.opts.PollInterval
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		}
		pollDelay = w.opts.PollInterval
		if l.Crash {
			w.logf("distrib: %s: crash directive on lease %s; dying", w.opts.ID, l.ID)
			return ErrCrashed
		}
		msg := CompleteMsg{Worker: w.opts.ID, Lease: l.ID, Token: l.Token}
		if l.Campaign == "load" {
			msg.LoadResults = w.executeLoad(ctx, l)
		} else {
			msg.Outcomes = w.execute(ctx, l)
		}
		if ctx.Err() != nil {
			// Dying mid-shard: report nothing. Partial outcomes must not
			// merge — the lease expires and the shard re-runs whole.
			return ctx.Err()
		}
		if err := w.complete(ctx, msg); err != nil {
			w.logf("distrib: %s: reporting lease %s: %v", w.opts.ID, l.ID, err)
		}
	}
}

// jitter draws a random delay in [0, d/2] from the worker's seeded rng.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return time.Duration(w.rng.Int63n(int64(d)/2 + 1))
}

// retry runs fn under capped jittered exponential backoff. Every extra
// attempt counts into the worker's retry tally, which rides the next
// completion report into warr_retries_total.
func (w *Worker) retry(ctx context.Context, what string, fn func() error) error {
	var err error
	backoff := w.opts.RetryBase
	for attempt := 0; attempt <= w.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			w.retries.Add(1)
			d := backoff + w.jitter(backoff)
			if backoff *= 2; backoff > w.opts.RetryCap {
				backoff = w.opts.RetryCap
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		w.logf("distrib: %s: %s (attempt %d): %v", w.opts.ID, what, attempt+1, err)
	}
	return err
}

// lease polls the coordinator for work.
func (w *Worker) lease(ctx context.Context) (*WireLease, error) {
	rctx, cancel := context.WithTimeout(ctx, w.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		w.base+"/lease?worker="+url.QueryEscape(w.opts.ID), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("distrib: lease poll: %s", resp.Status)
	}
	var l WireLease
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		return nil, err
	}
	return &l, nil
}

// execute runs one leased shard: restore the branch-point image and
// continue the subtree, falling back to full flat replays in fresh
// local environments when the image cannot be fetched or restored. A
// heartbeat loop keeps the lease alive for the duration.
func (w *Worker) execute(ctx context.Context, l *WireLease) []jobs.OutcomeEvent {
	hctx, stop := context.WithCancel(ctx)
	defer stop()
	go w.heartbeat(hctx, l)

	cjobs := make([]campaign.Job, len(l.Jobs))
	for i, wj := range l.Jobs {
		cjobs[i] = campaign.Job{Trace: wj.Trace, Pacing: wj.Pacing}
	}
	exec := w.executor(l)
	var outs []campaign.Outcome
	if img, err := w.fetchImage(ctx, l.Image); err != nil {
		w.logf("distrib: %s: fetching image %s: %v", w.opts.ID, l.Image, err)
	} else if _, sess, err := image.LoadSession(img, ctx, nil); err != nil {
		w.logf("distrib: %s: restoring image %s: %v", w.opts.ID, l.Image, err)
	} else {
		outs = exec.ExecuteSubtree(ctx, cjobs, sess, l.Depth)
	}
	if outs == nil {
		outs = exec.Execute(ctx, cjobs)
	}
	evs := make([]jobs.OutcomeEvent, len(outs))
	for i, out := range outs {
		evs[i] = encodeOutcome(i, out)
	}
	return evs
}

// executeLoad runs one leased load shard: each schedule job rebuilds
// its shared world from the process's workload registry and executes
// deterministically — no image crosses the wire, the schedule codec is
// the whole recipe. A heartbeat loop keeps the lease alive.
func (w *Worker) executeLoad(ctx context.Context, l *WireLease) []multiuser.ScheduleResult {
	hctx, stop := context.WithCancel(ctx)
	defer stop()
	go w.heartbeat(hctx, l)

	results := make([]multiuser.ScheduleResult, 0, len(l.LoadJobs))
	for _, sj := range l.LoadJobs {
		if ctx.Err() != nil {
			return nil
		}
		results = append(results, multiuser.ExecuteScheduleJob(sj))
	}
	return results
}

// executor rebuilds the campaign's executor from the lease: the
// campaign kind names the oracle (the default console oracle — specs
// with custom oracles are never distributed), the mode names the
// environment build, and the replayer options come off the wire.
func (w *Worker) executor(l *WireLease) *campaign.Executor {
	mode := l.Mode
	if mode == 0 {
		mode = browser.DeveloperMode
	}
	copts := weberr.CampaignOptions{
		Replayer:       unwireReplayer(l.Replayer),
		DisablePruning: l.DisablePruning,
		Parallelism:    l.Parallelism,
	}
	newEnv := w.opts.EnvFactory(mode)
	switch l.Campaign {
	case "timing":
		return weberr.TimingExecutor(newEnv, copts)
	case "fuzz":
		// Fuzz shards replay under the coordinator's determinism
		// contract: pruning stays off (the fuzz loop owns the prune
		// table), the oracle gates like the navigation campaign, and
		// every replay reports its coverage fingerprint back. One
		// caveat: durable images do not carry the in-memory event-
		// dispatch counters, so a restored shard's event-lane coverage
		// is relative to its suffix — findings are still identical to
		// local execution, only the corpus-admission split may shift.
		return campaign.New(newEnv, campaign.Options{
			Parallelism:    l.Parallelism,
			Replayer:       unwireReplayer(l.Replayer),
			DisablePruning: true,
			Inspect: func(job campaign.Job, res *replayer.Result, tab *browser.Tab) error {
				if res.Failed > 0 || res.Cancelled {
					return nil
				}
				return weberr.ConsoleOracle(tab, res)
			},
			Coverage: errmodel.CampaignCoverage,
		})
	}
	return weberr.NavigationExecutor(newEnv, copts)
}

// heartbeat renews the worker's liveness at a third of the lease TTL
// until the shard finishes.
func (w *Worker) heartbeat(ctx context.Context, l *WireLease) {
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		// One bounded attempt per tick, no retry: a missed heartbeat is
		// recovered by the next tick, and a worker stuck waiting on one
		// would miss its TTL anyway.
		func() {
			rctx, cancel := context.WithTimeout(ctx, w.opts.RequestTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodPost,
				w.base+"/heartbeat?worker="+url.QueryEscape(w.opts.ID), nil)
			if err != nil {
				return
			}
			if resp, err := w.opts.Client.Do(req); err == nil {
				resp.Body.Close()
			}
		}()
	}
}

// fetchImage downloads and validates a branch-point image, caching the
// decoded form by digest. The whole fetch retries under backoff, and
// the retry covers digest mismatches too: a transfer corrupted on the
// wire fails content addressing and the next attempt pulls clean bytes.
func (w *Worker) fetchImage(ctx context.Context, digest string) (*image.Image, error) {
	if img, ok := w.cache[digest]; ok {
		return img, nil
	}
	var img *image.Image
	err := w.retry(ctx, "fetching image "+digest, func() error {
		rctx, cancel := context.WithTimeout(ctx, 4*w.opts.RequestTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(rctx, http.MethodGet,
			w.base+"/image/"+url.PathEscape(digest), nil)
		if err != nil {
			return err
		}
		resp, err := w.opts.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("distrib: fetching image %s: %s", digest, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		decoded, got, err := image.Decode(data)
		if err != nil {
			return err
		}
		if got != digest {
			return fmt.Errorf("distrib: image digest mismatch: got %s, want %s", got, digest)
		}
		img = decoded
		return nil
	})
	if err != nil {
		return nil, err
	}
	w.cache[digest] = img
	return img, nil
}

// complete reports the shard's outcomes, retrying under backoff: a
// dropped or corrupted transfer resends the same sealed message, and
// the coordinator's completion tokens make any duplicate harmless.
func (w *Worker) complete(ctx context.Context, msg CompleteMsg) error {
	return w.retry(ctx, "reporting lease "+msg.Lease, func() error {
		// Fold the retries spent so far — including this loop's own —
		// into the report, and seal last: the checksum covers the final
		// shape, so a transfer flipping any byte is rejected server-side.
		msg.Retries += w.retries.Swap(0)
		if err := msg.Seal(); err != nil {
			return err
		}
		body, err := json.Marshal(msg)
		if err != nil {
			return err
		}
		rctx, cancel := context.WithTimeout(ctx, w.opts.RequestTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base+"/complete", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.opts.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("distrib: completion rejected: %s", resp.Status)
		}
		return nil
	})
}
