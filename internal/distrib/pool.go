package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/faults"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// PoolOptions configure a coordinator pool.
type PoolOptions struct {
	// LeaseTTL is how long a worker may go silent before its leases are
	// forfeited and their shards re-queued (default 10s). Workers
	// heartbeat at a fraction of this while executing.
	LeaseTTL time.Duration
	// ShardFactor is the target number of shards per connected worker
	// (default 4): campaigns are split so every worker gets several
	// shards, which is what lets an idle worker steal a parked tail
	// from the queue instead of sitting out the stragglers.
	ShardFactor int
	// Faults, when armed, injects the schedule's coordinator-side
	// faults: lease/image/complete/heartbeat requests are dropped,
	// delayed, or corrupted before the handlers serve them, and crash
	// ops mark granted leases with the worker-death directive. nil
	// injects nothing and costs one nil check per request.
	Faults *faults.Injector
	// Logf, when set, receives re-queue and protocol notices.
	Logf func(format string, args ...any)
}

// Pool is the coordinator side of a distributed campaign: it implements
// jobs.Distributor over a fleet of polling workers. One campaign runs
// at a time; while the pool is busy (or no worker is connected) it
// refuses, and the engine executes locally — distribution is an
// optimization, never a requirement.
type Pool struct {
	opts  PoolOptions
	store *image.Store
	mux   *http.ServeMux

	mu        sync.Mutex
	workers   map[string]time.Time
	run       *poolRun
	nextLease int
	runSeq    int

	// imageOwner maps an image digest to the first worker that leased a
	// shard resuming from it — the worker whose cache already holds the
	// bytes. A single-job shard (a parked tail) granted to any other
	// worker is a stolen tail: idle capacity pulling work that "belongs"
	// to another worker's world.
	imageOwner    map[string]string
	imagesShipped int
	stolenTails   int
	campaigns     int
	loadCampaigns int

	// completionsDeduped counts completion reports acknowledged but not
	// merged: duplicates of an already-merged shard, or reports from a
	// campaign that is long over. retriesReported accumulates the
	// request retries workers spent (CompleteMsg.Retries).
	completionsDeduped int
	retriesReported    int64
}

// poolRun is one campaign in flight: a trace campaign (plan set) or a
// load campaign (loadShards set).
type poolRun struct {
	jobs      []campaign.Job
	plan      *campaign.ShardPlan
	spec      jobs.DistSpec
	token     string // completion-token prefix, unique per run
	queue     []int
	leases    map[string]*lease
	completed []bool
	remaining int
	done      chan struct{}

	// Load campaigns: shards of schedule jobs keyed by schedule prefix,
	// and the merged results (any order — the campaign reorders by job
	// index).
	loadShards [][]multiuser.ScheduleJob
	loadOut    []multiuser.ScheduleResult
}

type lease struct {
	id     string
	shard  int
	worker string
}

// NewPool returns an idle coordinator. Mount Handler somewhere workers
// can reach (warr-serve mounts it under /api/distrib/) and hand the
// pool to the job engine as its Distributor.
func NewPool(opts PoolOptions) *Pool {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.ShardFactor < 1 {
		opts.ShardFactor = 4
	}
	p := &Pool{
		opts:       opts,
		store:      image.NewStore(),
		workers:    make(map[string]time.Time),
		imageOwner: make(map[string]string),
	}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("POST /lease", p.handleLease)
	p.mux.HandleFunc("GET /image/{digest}", p.handleImage)
	p.mux.HandleFunc("POST /complete", p.handleComplete)
	p.mux.HandleFunc("POST /heartbeat", p.handleHeartbeat)
	return p
}

// Handler returns the coordinator's HTTP surface: POST /lease, GET
// /image/{digest}, POST /complete, POST /heartbeat.
func (p *Pool) Handler() http.Handler { return p.mux }

// Store exposes the pool's content-addressed image store (the corpus
// tool pins golden images through it).
func (p *Pool) Store() *image.Store { return p.store }

func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// touch records contact from a worker; every request a worker makes —
// lease polls, heartbeats, completions — renews its liveness.
func (p *Pool) touch(worker string) {
	p.mu.Lock()
	p.workers[worker] = time.Now()
	p.mu.Unlock()
}

func (p *Pool) connectedLocked() int {
	n, now := 0, time.Now()
	for _, last := range p.workers {
		if now.Sub(last) <= p.opts.LeaseTTL {
			n++
		}
	}
	return n
}

// ConnectedWorkers counts workers heard from within the lease TTL.
func (p *Pool) ConnectedWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connectedLocked()
}

// WaitForWorkers blocks until at least n workers are connected or ctx
// expires.
func (p *Pool) WaitForWorkers(ctx context.Context, n int) error {
	for p.ConnectedWorkers() < n {
		select {
		case <-ctx.Done():
			return fmt.Errorf("distrib: %d of %d workers connected: %w", p.ConnectedWorkers(), n, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// imager captures branch-point worlds into the pool's store, keyed by
// content digest.
func (p *Pool) imager() campaign.Imager {
	return func(sess *replayer.Session) (string, error) {
		img, err := image.CaptureSession(sess, image.Header{})
		if err != nil {
			return "", err
		}
		return p.store.Add(img)
	}
}

// DistributeCampaign implements jobs.Distributor: plan the trie into
// shards bounded so each connected worker gets ShardFactor of them,
// park branch-point images in the store, and feed the shard queue to
// polling workers until every outcome is merged. ok == false — no
// workers, pool busy, the plan refused, or every worker died
// mid-campaign — hands the campaign back for local execution, which is
// always equivalent (planning runs no oracle side effects a local
// Execute cannot repeat).
func (p *Pool) DistributeCampaign(ctx context.Context, exec *campaign.Executor, plan []campaign.Job, spec jobs.DistSpec) ([]campaign.Outcome, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	workers := p.connectedLocked()
	if workers == 0 || p.run != nil {
		p.mu.Unlock()
		return nil, false
	}
	// Hold the slot with a placeholder while planning runs unlocked;
	// lease polls see it and answer "wait".
	placeholder := &poolRun{}
	p.run = placeholder
	p.mu.Unlock()

	maxJobs := (len(plan) + p.opts.ShardFactor*workers - 1) / (p.opts.ShardFactor * workers)
	sp, ok := exec.PlanShards(ctx, plan, maxJobs, p.imager())
	if !ok {
		p.clearRun(placeholder)
		return nil, false
	}
	if len(sp.Shards) == 0 {
		// Every job ended on a shared spine and was finalized during
		// planning; there is nothing to distribute.
		p.clearRun(placeholder)
		return sp.Outcomes, true
	}
	run := &poolRun{
		jobs: plan, plan: sp, spec: spec,
		leases:    make(map[string]*lease),
		completed: make([]bool, len(sp.Shards)),
		remaining: len(sp.Shards),
		done:      make(chan struct{}),
	}
	for i := range sp.Shards {
		run.queue = append(run.queue, i)
	}
	p.mu.Lock()
	p.runSeq++
	run.token = fmt.Sprintf("run-%d", p.runSeq)
	p.run = run
	p.campaigns++
	p.mu.Unlock()

	ok = p.await(ctx, run)
	p.clearRun(run)
	if !ok {
		return nil, false
	}
	return sp.Outcomes, true
}

// DistributeLoad implements jobs.LoadDistributor: shard the campaign's
// deduplicated schedule jobs by schedule prefix (jobs whose
// interleavings start at the same user land on the same worker, so a
// worker explores one contention neighbourhood at a time) and feed the
// shard queue to polling workers. Schedule execution is deterministic,
// so a re-queued shard re-run by a surviving worker — or a duplicate
// completion dropped by first-merge-wins — yields the same results,
// and findings are identical to local execution under any sharding.
func (p *Pool) DistributeLoad(ctx context.Context, sjobs []multiuser.ScheduleJob) ([]multiuser.ScheduleResult, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(sjobs) == 0 {
		return nil, true
	}
	p.mu.Lock()
	if p.connectedLocked() == 0 || p.run != nil {
		p.mu.Unlock()
		return nil, false
	}
	shards := shardSchedules(sjobs)
	run := &poolRun{
		leases:     make(map[string]*lease),
		completed:  make([]bool, len(shards)),
		remaining:  len(shards),
		done:       make(chan struct{}),
		loadShards: shards,
		loadOut:    make([]multiuser.ScheduleResult, 0, len(sjobs)),
	}
	for i := range shards {
		run.queue = append(run.queue, i)
	}
	p.runSeq++
	run.token = fmt.Sprintf("run-%d", p.runSeq)
	p.run = run
	p.loadCampaigns++
	p.mu.Unlock()

	ok := p.await(ctx, run)
	p.clearRun(run)
	if !ok {
		return nil, false
	}
	return run.loadOut, true
}

// shardSchedules groups schedule jobs by prefix: world size plus the
// first scheduled user. Grouping is deterministic (first-appearance
// order) and independent of worker count.
func shardSchedules(sjobs []multiuser.ScheduleJob) [][]multiuser.ScheduleJob {
	index := make(map[string]int)
	var shards [][]multiuser.ScheduleJob
	for _, sj := range sjobs {
		key := sj.Workload + "\x00" + sj.Schedule
		if s, err := multiuser.ParseSchedule(sj.Schedule); err == nil && len(s.Slots) > 0 {
			key = fmt.Sprintf("%s\x00%d:%d", sj.Workload, sj.Users, s.Slots[0])
		}
		si, ok := index[key]
		if !ok {
			si = len(shards)
			index[key] = si
			shards = append(shards, nil)
		}
		shards[si] = append(shards[si], sj)
	}
	return shards
}

func (p *Pool) clearRun(run *poolRun) {
	p.mu.Lock()
	if p.run == run {
		p.run = nil
	}
	p.mu.Unlock()
}

// await blocks until the run completes, reaping dead workers as it
// waits. Context cancellation ends the campaign the way a local
// cancelled campaign does: unfinished shards resolve to skipped
// outcomes. Losing the whole fleet aborts to local execution.
func (p *Pool) await(ctx context.Context, run *poolRun) bool {
	tick := p.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-run.done:
			return true
		case <-ctx.Done():
			p.mu.Lock()
			if run.loadShards != nil {
				// A load campaign has no skipped-outcome shape: hand the
				// campaign back, and the local path reports the
				// cancellation.
				p.mu.Unlock()
				return false
			}
			p.skipUnfinishedLocked(run)
			p.mu.Unlock()
			return true
		case <-t.C:
			if !p.reap(run) {
				return false
			}
		}
	}
}

// reap forfeits the leases of workers silent past the TTL and re-queues
// their shards. It reports false — abort to local execution — when no
// connected worker remains while work is outstanding.
func (p *Pool) reap(run *poolRun) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	for w, last := range p.workers {
		if now.Sub(last) <= p.opts.LeaseTTL {
			continue
		}
		delete(p.workers, w)
		// Forget the dead worker's image affinities: re-granting its
		// parked tails to a survivor is forced failover, not stealing,
		// and must not skew the stolen-tails counter.
		for digest, owner := range p.imageOwner {
			if owner == w {
				delete(p.imageOwner, digest)
			}
		}
		for id, l := range run.leases {
			if l.worker != w {
				continue
			}
			delete(run.leases, id)
			if !run.completed[l.shard] {
				run.queue = append(run.queue, l.shard)
				p.logf("distrib: worker %s silent past %v; re-queued shard %d", w, p.opts.LeaseTTL, l.shard)
			}
		}
	}
	return run.remaining == 0 || len(p.workers) > 0
}

// skipUnfinishedLocked resolves every unmerged shard to skipped
// outcomes — the fate queued jobs meet in a locally cancelled campaign.
func (p *Pool) skipUnfinishedLocked(run *poolRun) {
	for si, done := range run.completed {
		if done {
			continue
		}
		sh := run.plan.Shards[si]
		outs := make([]campaign.Outcome, len(sh.Jobs))
		for i := range outs {
			outs[i] = campaign.Outcome{Skipped: true}
		}
		if err := run.plan.Merge(sh, outs); err != nil {
			p.logf("distrib: skipping shard %d: %v", si, err)
		}
		run.completed[si] = true
		run.remaining--
	}
}

// grant hands the next queued shard to a polling worker.
func (p *Pool) grant(worker string) WireLease {
	p.mu.Lock()
	defer p.mu.Unlock()
	run := p.run
	if run == nil {
		return WireLease{Status: StatusIdle}
	}
	if run.plan == nil && run.loadShards == nil {
		return WireLease{Status: StatusWait}
	}
	// Skip queue entries whose shard already completed: a reaped shard
	// re-queued and then credited through a late completion token must
	// not be executed again.
	si := -1
	for len(run.queue) > 0 {
		si = run.queue[0]
		run.queue = run.queue[1:]
		if !run.completed[si] {
			break
		}
		si = -1
	}
	if si < 0 {
		return WireLease{Status: StatusWait}
	}
	p.nextLease++
	l := &lease{id: fmt.Sprintf("lease-%d", p.nextLease), shard: si, worker: worker}
	run.leases[l.id] = l
	crash := p.opts.Faults.OnGrant(worker)
	if run.loadShards != nil {
		return WireLease{
			Status:    StatusLease,
			ID:        l.id,
			Campaign:  "load",
			TTLMillis: p.opts.LeaseTTL.Milliseconds(),
			Token:     fmt.Sprintf("%s/%d", run.token, si),
			Crash:     crash,
			LoadJobs:  run.loadShards[si],
		}
	}
	sh := run.plan.Shards[si]
	if owner, ok := p.imageOwner[sh.Image]; !ok {
		p.imageOwner[sh.Image] = worker
	} else if owner != worker && len(sh.Jobs) == 1 {
		p.stolenTails++
	}
	wl := WireLease{
		Status:         StatusLease,
		ID:             l.id,
		Campaign:       run.spec.Campaign,
		Mode:           run.spec.Mode,
		Replayer:       wireReplayer(run.spec.Replayer),
		DisablePruning: run.spec.DisablePruning,
		Parallelism:    run.spec.Parallelism,
		Image:          sh.Image,
		Depth:          sh.Depth,
		TTLMillis:      p.opts.LeaseTTL.Milliseconds(),
		Token:          fmt.Sprintf("%s/%d", run.token, si),
		Crash:          crash,
	}
	for _, ji := range sh.Jobs {
		j := run.jobs[ji]
		wl.Jobs = append(wl.Jobs, WireJob{Pacing: j.Pacing, Trace: j.Trace})
	}
	return wl
}

// parseToken splits a completion token into its run prefix and shard
// index.
func parseToken(tok string) (run string, shard int, ok bool) {
	i := strings.LastIndexByte(tok, '/')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(tok[i+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return tok[:i], n, true
}

// complete merges a worker's shard report. Completions are idempotent
// through the lease token: a late report from a reaped lease still
// credits its shard (the work is valid — the worker was slow, not
// wrong), while duplicates of an already-merged shard and reports from
// a campaign long over are acknowledged but not double-counted. The
// first merge wins either way; re-queued work re-runs from the same
// image, so any completion is equivalent.
func (p *Pool) complete(msg CompleteMsg) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retriesReported += msg.Retries
	run := p.run
	if run == nil || (run.plan == nil && run.loadShards == nil) {
		p.completionsDeduped++
		return
	}
	si := -1
	if l, ok := run.leases[msg.Lease]; ok {
		si = l.shard
		delete(run.leases, msg.Lease)
	} else if prefix, shard, ok := parseToken(msg.Token); ok &&
		prefix == run.token && shard < len(run.completed) {
		// The lease was reaped, but the token proves the report belongs
		// to this run's shard.
		si = shard
	}
	if si < 0 || run.completed[si] {
		p.completionsDeduped++
		if si >= 0 {
			p.logf("distrib: deduplicated completion of shard %d from %s", si, msg.Worker)
		}
		return
	}
	if run.loadShards != nil {
		shard := run.loadShards[si]
		if len(msg.LoadResults) != len(shard) {
			p.logf("distrib: rejecting load shard %d report from %s: %d results for %d jobs",
				si, msg.Worker, len(msg.LoadResults), len(shard))
			p.requeueLocked(run, si)
			return
		}
		for i, r := range msg.LoadResults {
			if r.Index != shard[i].Index {
				p.logf("distrib: rejecting load shard %d report from %s: job index %d at position %d, want %d",
					si, msg.Worker, r.Index, i, shard[i].Index)
				p.requeueLocked(run, si)
				return
			}
		}
		run.loadOut = append(run.loadOut, msg.LoadResults...)
		p.finishShardLocked(run, si)
		return
	}
	sh := run.plan.Shards[si]
	outs := make([]campaign.Outcome, len(msg.Outcomes))
	for i, ev := range msg.Outcomes {
		outs[i] = decodeOutcome(ev)
	}
	if err := run.plan.Merge(sh, outs); err != nil {
		p.logf("distrib: rejecting shard %d report from %s: %v", si, msg.Worker, err)
		p.requeueLocked(run, si)
		return
	}
	p.finishShardLocked(run, si)
}

// finishShardLocked marks a shard merged and closes the run when it was
// the last one.
func (p *Pool) finishShardLocked(run *poolRun, si int) {
	run.completed[si] = true
	run.remaining--
	if run.remaining == 0 {
		close(run.done)
	}
}

// requeueLocked puts a shard back on the queue unless it is already
// waiting there (a reaped shard whose late report was then rejected
// must not be granted twice).
func (p *Pool) requeueLocked(run *poolRun, si int) {
	for _, q := range run.queue {
		if q == si {
			return
		}
	}
	run.queue = append(run.queue, si)
}

// inject applies the armed fault schedule to one inbound request:
// delays hold the handler, drops answer 503 without serving (the
// worker's retry policy or the lease TTL recovers). It reports whether
// the request survived; the returned action's Corrupt flag is the
// handler's to honor on the bytes it transfers.
func (p *Pool) inject(w http.ResponseWriter, r *http.Request, path faults.Path) (faults.Action, bool) {
	act := p.opts.Faults.Request(path)
	if act.Delay > 0 {
		select {
		case <-r.Context().Done():
			return act, false
		case <-time.After(time.Duration(act.Delay)):
		}
	}
	if act.Drop {
		http.Error(w, fmt.Sprintf("distrib: fault injected: dropped %s request", path), http.StatusServiceUnavailable)
		return act, false
	}
	return act, true
}

func (p *Pool) handleLease(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "distrib: lease poll without worker id", http.StatusBadRequest)
		return
	}
	if _, ok := p.inject(w, r, faults.PathLease); !ok {
		return
	}
	p.touch(worker)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.grant(worker))
}

func (p *Pool) handleImage(w http.ResponseWriter, r *http.Request) {
	act, ok := p.inject(w, r, faults.PathImage)
	if !ok {
		return
	}
	digest := r.PathValue("digest")
	data, ok := p.store.Bytes(digest)
	if !ok {
		http.Error(w, "distrib: no such image", http.StatusNotFound)
		return
	}
	if act.Corrupt {
		// Corrupt a copy: the store's bytes are shared and must stay
		// intact for the retry this worker is about to make.
		data = faults.CorruptBody(append([]byte(nil), data...))
	}
	p.mu.Lock()
	p.imagesShipped++
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *Pool) handleComplete(w http.ResponseWriter, r *http.Request) {
	act, ok := p.inject(w, r, faults.PathComplete)
	if !ok {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("distrib: reading completion: %v", err), http.StatusBadRequest)
		return
	}
	if act.Corrupt {
		body = faults.CorruptBody(body)
	}
	var msg CompleteMsg
	if err := json.Unmarshal(body, &msg); err != nil {
		http.Error(w, fmt.Sprintf("distrib: decoding completion: %v", err), http.StatusBadRequest)
		return
	}
	if !msg.Verify() {
		// A flipped byte inside a JSON string still decodes; the checksum
		// is what keeps corrupted results out of the merge. The worker's
		// retry resends the same sealed message over a clean transfer.
		http.Error(w, "distrib: completion failed checksum verification", http.StatusBadRequest)
		return
	}
	if msg.Worker != "" {
		p.touch(msg.Worker)
	}
	p.complete(msg)
	w.WriteHeader(http.StatusNoContent)
}

func (p *Pool) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "distrib: heartbeat without worker id", http.StatusBadRequest)
		return
	}
	if _, ok := p.inject(w, r, faults.PathHeartbeat); !ok {
		return
	}
	p.touch(worker)
	w.WriteHeader(http.StatusNoContent)
}

// WriteMetrics appends the pool's gauges and counters in Prometheus
// text format; warr-serve concatenates them onto the engine's /metrics
// page.
func (p *Pool) WriteMetrics(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	leased := 0
	if p.run != nil && p.run.leases != nil {
		leased = len(p.run.leases)
	}
	fmt.Fprintf(w, "# HELP warr_distrib_workers_connected Worker processes heard from within the lease TTL.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_workers_connected gauge\n")
	fmt.Fprintf(w, "warr_distrib_workers_connected %d\n", p.connectedLocked())
	fmt.Fprintf(w, "# HELP warr_distrib_leased_shards Shards currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_leased_shards gauge\n")
	fmt.Fprintf(w, "warr_distrib_leased_shards %d\n", leased)
	fmt.Fprintf(w, "# HELP warr_distrib_images_shipped_total Branch-point image downloads served to workers.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_images_shipped_total counter\n")
	fmt.Fprintf(w, "warr_distrib_images_shipped_total %d\n", p.imagesShipped)
	fmt.Fprintf(w, "# HELP warr_distrib_stolen_tails_total Parked single-job tails leased to a worker other than the image's first lessee.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_stolen_tails_total counter\n")
	fmt.Fprintf(w, "warr_distrib_stolen_tails_total %d\n", p.stolenTails)
	fmt.Fprintf(w, "# HELP warr_distrib_campaigns_total Campaigns the pool accepted for distribution.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_campaigns_total counter\n")
	fmt.Fprintf(w, "warr_distrib_campaigns_total %d\n", p.campaigns)
	fmt.Fprintf(w, "# HELP warr_distrib_load_campaigns_total Load campaigns the pool accepted for distribution.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_load_campaigns_total counter\n")
	fmt.Fprintf(w, "warr_distrib_load_campaigns_total %d\n", p.loadCampaigns)
	fmt.Fprintf(w, "# HELP warr_faults_injected_total Faults the armed schedule injected into coordinator-side request handling.\n")
	fmt.Fprintf(w, "# TYPE warr_faults_injected_total counter\n")
	fmt.Fprintf(w, "warr_faults_injected_total %d\n", p.opts.Faults.Total())
	fmt.Fprintf(w, "# HELP warr_retries_total Request retries workers reported spending against dropped, delayed, or corrupted transfers.\n")
	fmt.Fprintf(w, "# TYPE warr_retries_total counter\n")
	fmt.Fprintf(w, "warr_retries_total %d\n", p.retriesReported)
	fmt.Fprintf(w, "# HELP warr_completions_deduped_total Completion reports acknowledged without merging: duplicates of an already-merged shard or reports for a finished campaign.\n")
	fmt.Fprintf(w, "# TYPE warr_completions_deduped_total counter\n")
	fmt.Fprintf(w, "warr_completions_deduped_total %d\n", p.completionsDeduped)
}
