package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// PoolOptions configure a coordinator pool.
type PoolOptions struct {
	// LeaseTTL is how long a worker may go silent before its leases are
	// forfeited and their shards re-queued (default 10s). Workers
	// heartbeat at a fraction of this while executing.
	LeaseTTL time.Duration
	// ShardFactor is the target number of shards per connected worker
	// (default 4): campaigns are split so every worker gets several
	// shards, which is what lets an idle worker steal a parked tail
	// from the queue instead of sitting out the stragglers.
	ShardFactor int
	// Logf, when set, receives re-queue and protocol notices.
	Logf func(format string, args ...any)
}

// Pool is the coordinator side of a distributed campaign: it implements
// jobs.Distributor over a fleet of polling workers. One campaign runs
// at a time; while the pool is busy (or no worker is connected) it
// refuses, and the engine executes locally — distribution is an
// optimization, never a requirement.
type Pool struct {
	opts  PoolOptions
	store *image.Store
	mux   *http.ServeMux

	mu        sync.Mutex
	workers   map[string]time.Time
	run       *poolRun
	nextLease int

	// imageOwner maps an image digest to the first worker that leased a
	// shard resuming from it — the worker whose cache already holds the
	// bytes. A single-job shard (a parked tail) granted to any other
	// worker is a stolen tail: idle capacity pulling work that "belongs"
	// to another worker's world.
	imageOwner    map[string]string
	imagesShipped int
	stolenTails   int
	campaigns     int
	loadCampaigns int
}

// poolRun is one campaign in flight: a trace campaign (plan set) or a
// load campaign (loadShards set).
type poolRun struct {
	jobs      []campaign.Job
	plan      *campaign.ShardPlan
	spec      jobs.DistSpec
	queue     []int
	leases    map[string]*lease
	completed []bool
	remaining int
	done      chan struct{}

	// Load campaigns: shards of schedule jobs keyed by schedule prefix,
	// and the merged results (any order — the campaign reorders by job
	// index).
	loadShards [][]multiuser.ScheduleJob
	loadOut    []multiuser.ScheduleResult
}

type lease struct {
	id     string
	shard  int
	worker string
}

// NewPool returns an idle coordinator. Mount Handler somewhere workers
// can reach (warr-serve mounts it under /api/distrib/) and hand the
// pool to the job engine as its Distributor.
func NewPool(opts PoolOptions) *Pool {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.ShardFactor < 1 {
		opts.ShardFactor = 4
	}
	p := &Pool{
		opts:       opts,
		store:      image.NewStore(),
		workers:    make(map[string]time.Time),
		imageOwner: make(map[string]string),
	}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("POST /lease", p.handleLease)
	p.mux.HandleFunc("GET /image/{digest}", p.handleImage)
	p.mux.HandleFunc("POST /complete", p.handleComplete)
	p.mux.HandleFunc("POST /heartbeat", p.handleHeartbeat)
	return p
}

// Handler returns the coordinator's HTTP surface: POST /lease, GET
// /image/{digest}, POST /complete, POST /heartbeat.
func (p *Pool) Handler() http.Handler { return p.mux }

// Store exposes the pool's content-addressed image store (the corpus
// tool pins golden images through it).
func (p *Pool) Store() *image.Store { return p.store }

func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// touch records contact from a worker; every request a worker makes —
// lease polls, heartbeats, completions — renews its liveness.
func (p *Pool) touch(worker string) {
	p.mu.Lock()
	p.workers[worker] = time.Now()
	p.mu.Unlock()
}

func (p *Pool) connectedLocked() int {
	n, now := 0, time.Now()
	for _, last := range p.workers {
		if now.Sub(last) <= p.opts.LeaseTTL {
			n++
		}
	}
	return n
}

// ConnectedWorkers counts workers heard from within the lease TTL.
func (p *Pool) ConnectedWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connectedLocked()
}

// WaitForWorkers blocks until at least n workers are connected or ctx
// expires.
func (p *Pool) WaitForWorkers(ctx context.Context, n int) error {
	for p.ConnectedWorkers() < n {
		select {
		case <-ctx.Done():
			return fmt.Errorf("distrib: %d of %d workers connected: %w", p.ConnectedWorkers(), n, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// imager captures branch-point worlds into the pool's store, keyed by
// content digest.
func (p *Pool) imager() campaign.Imager {
	return func(sess *replayer.Session) (string, error) {
		env, ok := sess.Tab().Browser().World().(*registry.Env)
		if !ok {
			return "", fmt.Errorf("distrib: session world is not a registry environment")
		}
		img, err := image.Capture(env, sess, image.Header{})
		if err != nil {
			return "", err
		}
		return p.store.Add(img)
	}
}

// DistributeCampaign implements jobs.Distributor: plan the trie into
// shards bounded so each connected worker gets ShardFactor of them,
// park branch-point images in the store, and feed the shard queue to
// polling workers until every outcome is merged. ok == false — no
// workers, pool busy, the plan refused, or every worker died
// mid-campaign — hands the campaign back for local execution, which is
// always equivalent (planning runs no oracle side effects a local
// Execute cannot repeat).
func (p *Pool) DistributeCampaign(ctx context.Context, exec *campaign.Executor, plan []campaign.Job, spec jobs.DistSpec) ([]campaign.Outcome, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	workers := p.connectedLocked()
	if workers == 0 || p.run != nil {
		p.mu.Unlock()
		return nil, false
	}
	// Hold the slot with a placeholder while planning runs unlocked;
	// lease polls see it and answer "wait".
	placeholder := &poolRun{}
	p.run = placeholder
	p.mu.Unlock()

	maxJobs := (len(plan) + p.opts.ShardFactor*workers - 1) / (p.opts.ShardFactor * workers)
	sp, ok := exec.PlanShards(ctx, plan, maxJobs, p.imager())
	if !ok {
		p.clearRun(placeholder)
		return nil, false
	}
	if len(sp.Shards) == 0 {
		// Every job ended on a shared spine and was finalized during
		// planning; there is nothing to distribute.
		p.clearRun(placeholder)
		return sp.Outcomes, true
	}
	run := &poolRun{
		jobs: plan, plan: sp, spec: spec,
		leases:    make(map[string]*lease),
		completed: make([]bool, len(sp.Shards)),
		remaining: len(sp.Shards),
		done:      make(chan struct{}),
	}
	for i := range sp.Shards {
		run.queue = append(run.queue, i)
	}
	p.mu.Lock()
	p.run = run
	p.campaigns++
	p.mu.Unlock()

	ok = p.await(ctx, run)
	p.clearRun(run)
	if !ok {
		return nil, false
	}
	return sp.Outcomes, true
}

// DistributeLoad implements jobs.LoadDistributor: shard the campaign's
// deduplicated schedule jobs by schedule prefix (jobs whose
// interleavings start at the same user land on the same worker, so a
// worker explores one contention neighbourhood at a time) and feed the
// shard queue to polling workers. Schedule execution is deterministic,
// so a re-queued shard re-run by a surviving worker — or a duplicate
// completion dropped by first-merge-wins — yields the same results,
// and findings are identical to local execution under any sharding.
func (p *Pool) DistributeLoad(ctx context.Context, sjobs []multiuser.ScheduleJob) ([]multiuser.ScheduleResult, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(sjobs) == 0 {
		return nil, true
	}
	p.mu.Lock()
	if p.connectedLocked() == 0 || p.run != nil {
		p.mu.Unlock()
		return nil, false
	}
	shards := shardSchedules(sjobs)
	run := &poolRun{
		leases:     make(map[string]*lease),
		completed:  make([]bool, len(shards)),
		remaining:  len(shards),
		done:       make(chan struct{}),
		loadShards: shards,
		loadOut:    make([]multiuser.ScheduleResult, 0, len(sjobs)),
	}
	for i := range shards {
		run.queue = append(run.queue, i)
	}
	p.run = run
	p.loadCampaigns++
	p.mu.Unlock()

	ok := p.await(ctx, run)
	p.clearRun(run)
	if !ok {
		return nil, false
	}
	return run.loadOut, true
}

// shardSchedules groups schedule jobs by prefix: world size plus the
// first scheduled user. Grouping is deterministic (first-appearance
// order) and independent of worker count.
func shardSchedules(sjobs []multiuser.ScheduleJob) [][]multiuser.ScheduleJob {
	index := make(map[string]int)
	var shards [][]multiuser.ScheduleJob
	for _, sj := range sjobs {
		key := sj.Workload + "\x00" + sj.Schedule
		if s, err := multiuser.ParseSchedule(sj.Schedule); err == nil && len(s.Slots) > 0 {
			key = fmt.Sprintf("%s\x00%d:%d", sj.Workload, sj.Users, s.Slots[0])
		}
		si, ok := index[key]
		if !ok {
			si = len(shards)
			index[key] = si
			shards = append(shards, nil)
		}
		shards[si] = append(shards[si], sj)
	}
	return shards
}

func (p *Pool) clearRun(run *poolRun) {
	p.mu.Lock()
	if p.run == run {
		p.run = nil
	}
	p.mu.Unlock()
}

// await blocks until the run completes, reaping dead workers as it
// waits. Context cancellation ends the campaign the way a local
// cancelled campaign does: unfinished shards resolve to skipped
// outcomes. Losing the whole fleet aborts to local execution.
func (p *Pool) await(ctx context.Context, run *poolRun) bool {
	tick := p.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-run.done:
			return true
		case <-ctx.Done():
			p.mu.Lock()
			if run.loadShards != nil {
				// A load campaign has no skipped-outcome shape: hand the
				// campaign back, and the local path reports the
				// cancellation.
				p.mu.Unlock()
				return false
			}
			p.skipUnfinishedLocked(run)
			p.mu.Unlock()
			return true
		case <-t.C:
			if !p.reap(run) {
				return false
			}
		}
	}
}

// reap forfeits the leases of workers silent past the TTL and re-queues
// their shards. It reports false — abort to local execution — when no
// connected worker remains while work is outstanding.
func (p *Pool) reap(run *poolRun) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	for w, last := range p.workers {
		if now.Sub(last) <= p.opts.LeaseTTL {
			continue
		}
		delete(p.workers, w)
		for id, l := range run.leases {
			if l.worker != w {
				continue
			}
			delete(run.leases, id)
			if !run.completed[l.shard] {
				run.queue = append(run.queue, l.shard)
				p.logf("distrib: worker %s silent past %v; re-queued shard %d", w, p.opts.LeaseTTL, l.shard)
			}
		}
	}
	return run.remaining == 0 || len(p.workers) > 0
}

// skipUnfinishedLocked resolves every unmerged shard to skipped
// outcomes — the fate queued jobs meet in a locally cancelled campaign.
func (p *Pool) skipUnfinishedLocked(run *poolRun) {
	for si, done := range run.completed {
		if done {
			continue
		}
		sh := run.plan.Shards[si]
		outs := make([]campaign.Outcome, len(sh.Jobs))
		for i := range outs {
			outs[i] = campaign.Outcome{Skipped: true}
		}
		if err := run.plan.Merge(sh, outs); err != nil {
			p.logf("distrib: skipping shard %d: %v", si, err)
		}
		run.completed[si] = true
		run.remaining--
	}
}

// grant hands the next queued shard to a polling worker.
func (p *Pool) grant(worker string) WireLease {
	p.mu.Lock()
	defer p.mu.Unlock()
	run := p.run
	if run == nil {
		return WireLease{Status: StatusIdle}
	}
	if (run.plan == nil && run.loadShards == nil) || len(run.queue) == 0 {
		return WireLease{Status: StatusWait}
	}
	si := run.queue[0]
	run.queue = run.queue[1:]
	p.nextLease++
	l := &lease{id: fmt.Sprintf("lease-%d", p.nextLease), shard: si, worker: worker}
	run.leases[l.id] = l
	if run.loadShards != nil {
		return WireLease{
			Status:    StatusLease,
			ID:        l.id,
			Campaign:  "load",
			TTLMillis: p.opts.LeaseTTL.Milliseconds(),
			LoadJobs:  run.loadShards[si],
		}
	}
	sh := run.plan.Shards[si]
	if owner, ok := p.imageOwner[sh.Image]; !ok {
		p.imageOwner[sh.Image] = worker
	} else if owner != worker && len(sh.Jobs) == 1 {
		p.stolenTails++
	}
	wl := WireLease{
		Status:         StatusLease,
		ID:             l.id,
		Campaign:       run.spec.Campaign,
		Mode:           run.spec.Mode,
		Replayer:       wireReplayer(run.spec.Replayer),
		DisablePruning: run.spec.DisablePruning,
		Parallelism:    run.spec.Parallelism,
		Image:          sh.Image,
		Depth:          sh.Depth,
		TTLMillis:      p.opts.LeaseTTL.Milliseconds(),
	}
	for _, ji := range sh.Jobs {
		j := run.jobs[ji]
		wl.Jobs = append(wl.Jobs, WireJob{Pacing: j.Pacing, Trace: j.Trace})
	}
	return wl
}

// complete merges a worker's shard report. Late or duplicate
// completions — an expired lease whose shard was re-leased, a campaign
// already over — are dropped: the first merge wins, and re-queued work
// re-runs from the same image, so any completion is equivalent.
func (p *Pool) complete(msg CompleteMsg) {
	p.mu.Lock()
	defer p.mu.Unlock()
	run := p.run
	if run == nil || (run.plan == nil && run.loadShards == nil) {
		return
	}
	l, ok := run.leases[msg.Lease]
	if !ok {
		return
	}
	delete(run.leases, msg.Lease)
	if run.completed[l.shard] {
		return
	}
	if run.loadShards != nil {
		shard := run.loadShards[l.shard]
		if len(msg.LoadResults) != len(shard) {
			p.logf("distrib: rejecting load shard %d report from %s: %d results for %d jobs",
				l.shard, msg.Worker, len(msg.LoadResults), len(shard))
			run.queue = append(run.queue, l.shard)
			return
		}
		for i, r := range msg.LoadResults {
			if r.Index != shard[i].Index {
				p.logf("distrib: rejecting load shard %d report from %s: job index %d at position %d, want %d",
					l.shard, msg.Worker, r.Index, i, shard[i].Index)
				run.queue = append(run.queue, l.shard)
				return
			}
		}
		run.loadOut = append(run.loadOut, msg.LoadResults...)
		run.completed[l.shard] = true
		run.remaining--
		if run.remaining == 0 {
			close(run.done)
		}
		return
	}
	sh := run.plan.Shards[l.shard]
	outs := make([]campaign.Outcome, len(msg.Outcomes))
	for i, ev := range msg.Outcomes {
		outs[i] = decodeOutcome(ev)
	}
	if err := run.plan.Merge(sh, outs); err != nil {
		p.logf("distrib: rejecting shard %d report from %s: %v", l.shard, msg.Worker, err)
		run.queue = append(run.queue, l.shard)
		return
	}
	run.completed[l.shard] = true
	run.remaining--
	if run.remaining == 0 {
		close(run.done)
	}
}

func (p *Pool) handleLease(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "distrib: lease poll without worker id", http.StatusBadRequest)
		return
	}
	p.touch(worker)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.grant(worker))
}

func (p *Pool) handleImage(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, ok := p.store.Bytes(digest)
	if !ok {
		http.Error(w, "distrib: no such image", http.StatusNotFound)
		return
	}
	p.mu.Lock()
	p.imagesShipped++
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *Pool) handleComplete(w http.ResponseWriter, r *http.Request) {
	var msg CompleteMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, fmt.Sprintf("distrib: decoding completion: %v", err), http.StatusBadRequest)
		return
	}
	if msg.Worker != "" {
		p.touch(msg.Worker)
	}
	p.complete(msg)
	w.WriteHeader(http.StatusNoContent)
}

func (p *Pool) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		http.Error(w, "distrib: heartbeat without worker id", http.StatusBadRequest)
		return
	}
	p.touch(worker)
	w.WriteHeader(http.StatusNoContent)
}

// WriteMetrics appends the pool's gauges and counters in Prometheus
// text format; warr-serve concatenates them onto the engine's /metrics
// page.
func (p *Pool) WriteMetrics(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	leased := 0
	if p.run != nil && p.run.leases != nil {
		leased = len(p.run.leases)
	}
	fmt.Fprintf(w, "# HELP warr_distrib_workers_connected Worker processes heard from within the lease TTL.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_workers_connected gauge\n")
	fmt.Fprintf(w, "warr_distrib_workers_connected %d\n", p.connectedLocked())
	fmt.Fprintf(w, "# HELP warr_distrib_leased_shards Shards currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_leased_shards gauge\n")
	fmt.Fprintf(w, "warr_distrib_leased_shards %d\n", leased)
	fmt.Fprintf(w, "# HELP warr_distrib_images_shipped_total Branch-point image downloads served to workers.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_images_shipped_total counter\n")
	fmt.Fprintf(w, "warr_distrib_images_shipped_total %d\n", p.imagesShipped)
	fmt.Fprintf(w, "# HELP warr_distrib_stolen_tails_total Parked single-job tails leased to a worker other than the image's first lessee.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_stolen_tails_total counter\n")
	fmt.Fprintf(w, "warr_distrib_stolen_tails_total %d\n", p.stolenTails)
	fmt.Fprintf(w, "# HELP warr_distrib_campaigns_total Campaigns the pool accepted for distribution.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_campaigns_total counter\n")
	fmt.Fprintf(w, "warr_distrib_campaigns_total %d\n", p.campaigns)
	fmt.Fprintf(w, "# HELP warr_distrib_load_campaigns_total Load campaigns the pool accepted for distribution.\n")
	fmt.Fprintf(w, "# TYPE warr_distrib_load_campaigns_total counter\n")
	fmt.Fprintf(w, "warr_distrib_load_campaigns_total %d\n", p.loadCampaigns)
}
