package distrib

// Distributed load campaigns: schedule jobs are self-describing wire
// values, so workers rebuild each shared world from the workload
// registry and the schedule codec alone — no image crosses the wire.
// The contract under test: for a fixed (seed, budget), the distributed
// report is byte-identical to flat single-process execution at any
// worker count, and first-merge-wins keeps it so when workers die
// mid-campaign.

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
)

// runLoad submits one load-campaign job and waits for its report.
func runLoad(t *testing.T, engine *jobs.Engine, spec jobs.Spec) *multiuser.Report {
	t.Helper()
	job, err := engine.Submit(spec)
	if err != nil {
		t.Fatalf("submitting load campaign: %v", err)
	}
	_ = job.Wait(nil)
	if err := job.Err(); err != nil {
		t.Fatalf("load campaign failed: %v", err)
	}
	rep := job.LoadReport()
	if rep == nil {
		t.Fatal("load campaign produced no report")
	}
	return rep
}

func TestDistributedLoadMatchesFlat(t *testing.T) {
	spec := jobs.Spec{
		Kind:           jobs.KindLoadCampaign,
		Workload:       "sites-notes",
		Users:          6,
		Cohort:         3,
		ScheduleBudget: 4,
		ScheduleSeed:   11,
	}

	flatEngine := jobs.New(jobs.Options{Workers: 1})
	defer flatEngine.Close()
	flat := runLoad(t, flatEngine, spec)
	if len(flat.Findings) == 0 {
		t.Fatal("the flat run surfaced no findings; the test needs a contention bug")
	}

	for _, workers := range []int{1, 3} {
		engine, pool := distribEngine(t, workers, 10*time.Second)
		dist := runLoad(t, engine, spec)
		if flat.Render() != dist.Render() {
			t.Errorf("%d workers: distributed report diverged\nflat:\n%s\ndistributed:\n%s",
				workers, flat.Render(), dist.Render())
		}
		var metrics strings.Builder
		pool.WriteMetrics(&metrics)
		if !strings.Contains(metrics.String(), "warr_distrib_load_campaigns_total 1") {
			t.Errorf("%d workers: pool metrics lack the load campaign counter:\n%s", workers, metrics.String())
		}
	}
}

func TestDistributedLoadFallsBackWithoutWorkers(t *testing.T) {
	pool := NewPool(PoolOptions{Logf: t.Logf})
	if _, ok := pool.DistributeLoad(context.Background(), []multiuser.ScheduleJob{{
		Workload: "mixed", Users: 3, Schedule: "users:3;slots:0,1,2", Mode: 0,
	}}); ok {
		t.Fatal("an idle pool with no workers accepted a load campaign")
	}
}

func TestShardSchedulesGroupsByPrefix(t *testing.T) {
	sjobs := []multiuser.ScheduleJob{
		{Index: 0, Workload: "mixed", Users: 2, Schedule: "users:2;slots:0,1,0,1"},
		{Index: 1, Workload: "mixed", Users: 2, Schedule: "users:2;slots:0,0,1,1"},
		{Index: 2, Workload: "mixed", Users: 2, Schedule: "users:2;slots:1,0,1,0"},
		{Index: 3, Workload: "mixed", Users: 3, Schedule: "users:3;slots:0,1,2"},
	}
	shards := shardSchedules(sjobs)
	if len(shards) != 3 {
		t.Fatalf("shards = %d, want 3 (two users:2 prefixes + one users:3)", len(shards))
	}
	if len(shards[0]) != 2 || shards[0][0].Index != 0 || shards[0][1].Index != 1 {
		t.Errorf("first shard should hold the two slots:0-prefixed jobs, got %+v", shards[0])
	}
	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	if total != len(sjobs) {
		t.Errorf("sharding dropped jobs: %d of %d", total, len(sjobs))
	}
}
