package command

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestStringFormatMatchesPaper(t *testing.T) {
	// These lines appear verbatim in the paper's Fig. 4.
	cases := []struct {
		cmd  Command
		want string
	}{
		{Command{Action: Click, XPath: `//div/span[@id="start"]`, X: 82, Y: 44, Elapsed: 1},
			`click //div/span[@id="start"] 82,44 1`},
		{Command{Action: Type, XPath: `//td/div[@id="content"]`, Key: "H", Code: 72, Elapsed: 3},
			`type //td/div[@id="content"] [H,72] 3`},
		{Command{Action: Type, XPath: `//td/div[@id="content"]`, Key: " ", Code: 32, Elapsed: 12},
			`type //td/div[@id="content"] [ ,32] 12`},
		{Command{Action: Type, XPath: `//td/div[@id="content"]`, Key: "!", Code: 49, Elapsed: 31},
			`type //td/div[@id="content"] [!,49] 31`},
		{Command{Action: Click, XPath: `//td/div[text()="Save"]`, X: 74, Y: 51, Elapsed: 37},
			`click //td/div[text()="Save"] 74,51 37`},
	}
	for _, c := range cases {
		if got := c.cmd.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParsePaperLines(t *testing.T) {
	lines := []string{
		`click //div/span[@id="start"] 82,44 1`,
		`type //td/div[@id="content"] [H,72] 3`,
		`type //td/div[@id="content"] [ ,32] 12`,
		`type //td/div[@id="content"] [!,49] 31`,
		`click //td/div[text()="Save"] 74,51 37`,
	}
	for _, line := range lines {
		c, err := ParseLine(line)
		if err != nil {
			t.Errorf("ParseLine(%q): %v", line, err)
			continue
		}
		if got := c.String(); got != line {
			t.Errorf("round-trip %q = %q", line, got)
		}
	}
}

func TestParseClickFields(t *testing.T) {
	c, err := ParseLine(`click //div/span[@id="start"] 82,44 1`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Action != Click || c.XPath != `//div/span[@id="start"]` || c.X != 82 || c.Y != 44 || c.Elapsed != 1 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestParseTypeFields(t *testing.T) {
	c, err := ParseLine(`type //td/div[@id="content"] [H,72] 3`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Action != Type || c.Key != "H" || c.Code != 72 || c.Elapsed != 3 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestParseDrag(t *testing.T) {
	c, err := ParseLine(`drag //div[@id="widget"] 15,-30 7`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Action != Drag || c.DX != 15 || c.DY != -30 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestParseDoubleClick(t *testing.T) {
	c, err := ParseLine(`doubleclick //td[@id="cell"] 10,20 2`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Action != DoubleClick || c.X != 10 || c.Y != 20 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestXPathWithSpacesInTextPredicate(t *testing.T) {
	line := `click //td/div[text()="Save page now"] 74,51 37`
	c, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if c.XPath != `//td/div[text()="Save page now"]` {
		t.Fatalf("xpath = %q", c.XPath)
	}
	if c.String() != line {
		t.Fatalf("round-trip = %q", c.String())
	}
}

func TestKeyIsComma(t *testing.T) {
	line := `type //input[@id="q"] [,,188] 5`
	c, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key != "," || c.Code != 188 {
		t.Fatalf("key = %q code = %d", c.Key, c.Code)
	}
	if c.String() != line {
		t.Fatalf("round-trip = %q", c.String())
	}
}

func TestNamedControlKeys(t *testing.T) {
	line := `type //input[@id="q"] [Control,17] 4`
	c, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key != "Control" || c.Code != 17 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`click`,
		`click //div 10,20`,                // missing elapsed
		`hover //div 10,20 1`,              // unknown action
		`click //div ten,20 1`,             // bad coordinate
		`click //div 10,20 -1`,             // negative elapsed
		`click //div 10,20 soon`,           // bad elapsed
		`type //div H,72 1`,                // key spec without brackets
		`type //div [H72] 1`,               // no comma
		`type //div [H,seven] 1`,           // bad code
		`click //div[@id="x 10,20 1`,       // unterminated quote
		`type //div [H,72 1`,               // unterminated bracket
		`click //div 10,20 1 extra-field1`, // too many fields
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestElapsedDuration(t *testing.T) {
	c := Command{Elapsed: 37}
	if got := c.ElapsedDuration(); got != 3700*time.Millisecond {
		t.Fatalf("ElapsedDuration = %v", got)
	}
}

func TestActionString(t *testing.T) {
	if Click.String() != "click" || DoubleClick.String() != "doubleclick" ||
		Drag.String() != "drag" || Type.String() != "type" {
		t.Fatal("Action.String broken")
	}
	if !strings.Contains(Action(42).String(), "42") {
		t.Fatal("unknown action string")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Trace{
		StartURL: "https://sites.test/edit",
		Commands: []Command{
			{Action: Click, XPath: `//div/span[@id="start"]`, X: 82, Y: 44, Elapsed: 1},
			{Action: Type, XPath: `//td/div[@id="content"]`, Key: "H", Code: 72, Elapsed: 3},
			{Action: Drag, XPath: `//div[@id="w"]`, DX: 5, DY: 6, Elapsed: 2},
		},
	}
	got, err := Parse(tr.Text())
	if err != nil {
		t.Fatal(err)
	}
	if got.StartURL != tr.StartURL {
		t.Errorf("StartURL = %q", got.StartURL)
	}
	if len(got.Commands) != len(tr.Commands) {
		t.Fatalf("commands = %d", len(got.Commands))
	}
	for i := range tr.Commands {
		if got.Commands[i] != tr.Commands[i] {
			t.Errorf("command %d = %+v, want %+v", i, got.Commands[i], tr.Commands[i])
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	text := `# warr-trace v1
# start http://a.test/
# recorded by WaRR on platform X

click //div 1,2 0

# interlude comment
type //div [a,65] 1
`
	tr, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Commands) != 2 || tr.StartURL != "http://a.test/" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestTraceParseErrorReportsLine(t *testing.T) {
	_, err := Parse("click //div 1,2 0\nbogus line here\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceClone(t *testing.T) {
	tr := Trace{StartURL: "u", Commands: []Command{{Action: Click, XPath: "//a"}}}
	cl := tr.Clone()
	cl.Commands[0].XPath = "//b"
	if tr.Commands[0].XPath != "//a" {
		t.Fatal("Clone shares backing array")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := Trace{Commands: []Command{{Elapsed: 1}, {Elapsed: 2}, {Elapsed: 3}}}
	if got := tr.Duration(); got != 600*time.Millisecond {
		t.Fatalf("Duration = %v", got)
	}
}

func TestCommandsTextMatchesFig4Shape(t *testing.T) {
	tr := Trace{Commands: []Command{
		{Action: Click, XPath: `//div/span[@id="start"]`, X: 82, Y: 44, Elapsed: 1},
		{Action: Type, XPath: `//td/div[@id="content"]`, Key: "H", Code: 72, Elapsed: 3},
	}}
	want := `click //div/span[@id="start"] 82,44 1
type //td/div[@id="content"] [H,72] 3
`
	if got := tr.CommandsText(); got != want {
		t.Fatalf("CommandsText = %q", got)
	}
}

// Property: String→ParseLine round-trips for arbitrary well-formed
// commands.
func TestCommandRoundTripProperty(t *testing.T) {
	f := func(action uint8, x, y int16, elapsed uint16, keyByte uint8) bool {
		c := Command{
			Action:  Action(int(action)%4 + 1),
			XPath:   `//td/div[@id="content"]`,
			Elapsed: int(elapsed),
		}
		switch c.Action {
		case Click, DoubleClick:
			c.X, c.Y = int(x), int(y)
		case Drag:
			c.DX, c.DY = int(x), int(y)
		case Type:
			ch := rune(keyByte%95 + 32) // printable ASCII
			c.Key = string(ch)
			c.Code = int(ch)
		}
		parsed, err := ParseLine(c.String())
		if err != nil {
			return false
		}
		return parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
