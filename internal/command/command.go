// Package command defines WaRR Commands — the trace format the WaRR
// Recorder emits and the WaRR Replayer consumes (paper §IV-B).
//
// Each command carries the type of a user action (click, doubleclick,
// drag, type), an XPath identifier of the HTML element acted upon,
// action-specific information, and the time elapsed since the previous
// action. The text serialization matches the paper's Fig. 4:
//
//	click //div/span[@id="start"] 82,44 1
//	type //td/div[@id="content"] [H,72] 3
//	click //td/div[text()="Save"] 74,51 37
package command

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Action is the type of user action a command records.
type Action int

// Actions, as enumerated in §IV-B.
const (
	Click Action = iota + 1
	DoubleClick
	Drag
	Type
)

func (a Action) String() string {
	switch a {
	case Click:
		return "click"
	case DoubleClick:
		return "doubleclick"
	case Drag:
		return "drag"
	case Type:
		return "type"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// parseAction maps the wire name back to an Action.
func parseAction(s string) (Action, error) {
	switch s {
	case "click":
		return Click, nil
	case "doubleclick":
		return DoubleClick, nil
	case "drag":
		return Drag, nil
	case "type":
		return Type, nil
	default:
		return 0, fmt.Errorf("command: unknown action %q", s)
	}
}

// Tick is the unit of the elapsed-time field. The paper's traces show
// small integers between keystrokes of ordinary typing, consistent with
// a 100 ms tick.
const Tick = 100 * time.Millisecond

// Command is one recorded user action.
type Command struct {
	Action Action

	// XPath identifies the target HTML element.
	XPath string

	// X, Y are the window coordinates of a click or doubleclick — backup
	// element identification information.
	X, Y int

	// DX, DY are a drag's position delta.
	DX, DY int

	// Key is the string representation of a typed key ("H", " ",
	// "Enter", "Control"); Code is its virtual key code.
	Key  string
	Code int

	// Elapsed is the time since the previous command, in Ticks.
	Elapsed int
}

// ElapsedDuration converts the elapsed field to a time.Duration.
func (c Command) ElapsedDuration() time.Duration {
	return time.Duration(c.Elapsed) * Tick
}

// String renders the command in the paper's text format.
func (c Command) String() string {
	switch c.Action {
	case Click, DoubleClick:
		return fmt.Sprintf("%s %s %d,%d %d", c.Action, c.XPath, c.X, c.Y, c.Elapsed)
	case Drag:
		return fmt.Sprintf("%s %s %d,%d %d", c.Action, c.XPath, c.DX, c.DY, c.Elapsed)
	case Type:
		return fmt.Sprintf("%s %s [%s,%d] %d", c.Action, c.XPath, c.Key, c.Code, c.Elapsed)
	default:
		return fmt.Sprintf("?unknown action %d", int(c.Action))
	}
}

// ParseLine parses one serialized command. The grammar is
//
//	action SP xpath SP payload SP elapsed
//
// where the XPath may contain spaces inside quoted string literals and a
// type payload "[key,code]" may contain a space (the space key logs as
// "[ ,32]"). Parsing therefore proceeds from both ends: elapsed is the
// text after the last space, and the payload/XPath boundary is found
// structurally per action kind.
func ParseLine(line string) (Command, error) {
	fail := func(msg string) (Command, error) {
		return Command{}, fmt.Errorf("command: parsing %q: %s", line, msg)
	}
	line = strings.TrimSpace(line)
	// The trace format is line-based: a field with an embedded line
	// break could never be re-read, so it must never parse in the first
	// place (the serialization round trip FuzzParseLine checks).
	if strings.ContainsAny(line, "\n\r") {
		return fail("embedded line break")
	}
	actionText, rest, ok := strings.Cut(line, " ")
	if !ok {
		return fail("want 4 fields")
	}
	action, err := parseAction(actionText)
	if err != nil {
		return Command{}, err
	}

	lastSp := strings.LastIndexByte(rest, ' ')
	if lastSp < 0 {
		return fail("missing elapsed field")
	}
	elapsed, err := strconv.Atoi(rest[lastSp+1:])
	if err != nil || elapsed < 0 {
		return fail(fmt.Sprintf("bad elapsed %q", rest[lastSp+1:]))
	}
	rest = rest[:lastSp]

	var xpath, payload string
	switch action {
	case Click, DoubleClick, Drag:
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			return fail("missing coordinate field")
		}
		xpath, payload = rest[:sp], rest[sp+1:]
	case Type:
		// The payload starts at the last " [" separator; the key itself
		// may be any printable character, including '[' and space.
		sep := strings.LastIndex(rest, " [")
		if sep < 0 || !strings.HasSuffix(rest, "]") {
			return fail("missing [key,code] field")
		}
		xpath, payload = rest[:sep], rest[sep+1:]
	}
	if err := validateXPathField(xpath); err != nil {
		return fail(err.Error())
	}

	c := Command{Action: action, XPath: xpath, Elapsed: elapsed}
	switch action {
	case Click, DoubleClick:
		x, y, err := parsePair(payload)
		if err != nil {
			return fail(err.Error())
		}
		c.X, c.Y = x, y
	case Drag:
		dx, dy, err := parsePair(payload)
		if err != nil {
			return fail(err.Error())
		}
		c.DX, c.DY = dx, dy
	case Type:
		key, code, err := parseKeySpec(payload)
		if err != nil {
			return fail(err.Error())
		}
		c.Key, c.Code = key, code
	}
	return c, nil
}

// validateXPathField rejects grossly malformed XPath fields (the full
// syntax check happens when the replayer parses the expression).
func validateXPathField(xpath string) error {
	if !strings.HasPrefix(xpath, "/") {
		return fmt.Errorf("xpath %q does not start with '/'", xpath)
	}
	if strings.Count(xpath, `"`)%2 != 0 || strings.Count(xpath, "'")%2 != 0 {
		return fmt.Errorf("xpath %q has unbalanced quotes", xpath)
	}
	return nil
}

func parsePair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad coordinate pair %q", s)
	}
	x, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, fmt.Errorf("bad coordinate %q", a)
	}
	y, err := strconv.Atoi(b)
	if err != nil {
		return 0, 0, fmt.Errorf("bad coordinate %q", b)
	}
	return x, y, nil
}

// parseKeySpec parses "[key,code]". The key itself may be a comma, so the
// split happens at the LAST comma.
func parseKeySpec(s string) (string, int, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return "", 0, fmt.Errorf("bad key spec %q", s)
	}
	inner := s[1 : len(s)-1]
	i := strings.LastIndexByte(inner, ',')
	if i < 0 {
		return "", 0, fmt.Errorf("bad key spec %q: no comma", s)
	}
	key := inner[:i]
	code, err := strconv.Atoi(inner[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("bad key code in %q", s)
	}
	return key, code, nil
}

// Trace is a recorded interaction session: the URL the session started at
// plus the ordered command sequence.
type Trace struct {
	// StartURL is the page the user was on when recording began; the
	// replayer navigates there before issuing commands.
	StartURL string
	Commands []Command
}

// Clone returns a deep copy of the trace (WebErr mutates copies).
func (tr Trace) Clone() Trace {
	out := Trace{StartURL: tr.StartURL}
	out.Commands = append([]Command(nil), tr.Commands...)
	return out
}

// Duration returns the total recorded duration of the trace.
func (tr Trace) Duration() time.Duration {
	var d time.Duration
	for _, c := range tr.Commands {
		d += c.ElapsedDuration()
	}
	return d
}

// WriteTo serializes the trace in the text format. It implements
// io.WriterTo.
func (tr Trace) WriteTo(w io.Writer) (int64, error) {
	var total int64
	writeLine := func(s string) error {
		n, err := io.WriteString(w, s+"\n")
		total += int64(n)
		return err
	}
	if err := writeLine("# warr-trace v1"); err != nil {
		return total, err
	}
	if tr.StartURL != "" {
		if err := writeLine("# start " + tr.StartURL); err != nil {
			return total, err
		}
	}
	for _, c := range tr.Commands {
		if err := writeLine(c.String()); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Text renders the trace as a string.
func (tr Trace) Text() string {
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		// strings.Builder never fails.
		panic(err)
	}
	return b.String()
}

// CommandsText renders only the command lines (no header), matching the
// paper's Fig. 4 presentation.
func (tr Trace) CommandsText() string {
	var b strings.Builder
	for _, c := range tr.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Read parses a serialized trace. Unknown comment lines are skipped, so
// traces survive hand annotation.
func Read(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if url, ok := strings.CutPrefix(line, "# start "); ok {
				tr.StartURL = strings.TrimSpace(url)
			}
			continue
		}
		c, err := ParseLine(line)
		if err != nil {
			return Trace{}, fmt.Errorf("command: line %d: %w", lineNo, err)
		}
		tr.Commands = append(tr.Commands, c)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("command: reading trace: %w", err)
	}
	return tr, nil
}

// Parse parses a serialized trace from a string.
func Parse(s string) (Trace, error) {
	return Read(strings.NewReader(s))
}
