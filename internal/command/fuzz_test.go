package command

import (
	"strings"
	"testing"
)

// FuzzParseLine asserts the serialization invariant the trace-archive
// stack depends on: any line ParseLine accepts yields a Command whose
// String() re-parses to the identical Command. Without this property an
// archived trace could silently change meaning across a write/read
// cycle.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		`click //div/span[@id="start"] 82,44 1`,
		`type //td/div[@id="content"] [H,72] 3`,
		`type //td/div[@id="content"] [ ,32] 2`,
		`type //input[@name="to"] [Enter,13] 0`,
		`type //input[@name="q"] [,,188] 1`,
		`doubleclick //td[@id="r2c2"] 120,80 4`,
		`drag //div[@name="composehdr"] 30,20 2`,
		`click //td/div[text()="Save"] 74,51 37`,
		`click //a[@href="x y"] 1,2 3`,
		`click //a[text()='he said "hi"'] 5,6 7`,
		"click //a 1,1 1\n",
		`type /a [x [H,72] 3`,
		`click //a -4,-9 0`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		c, err := ParseLine(line)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		s := c.String()
		c2, err := ParseLine(s)
		if err != nil {
			t.Fatalf("ParseLine(%q) accepted, but its String %q does not re-parse: %v", line, s, err)
		}
		if c2 != c {
			t.Fatalf("round trip changed the command:\n in  %q -> %+v\n out %q -> %+v", line, c, s, c2)
		}
		if strings.ContainsRune(s, '\n') {
			t.Fatalf("String() of a parsed command contains a newline: %q", s)
		}
	})
}
