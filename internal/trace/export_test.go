package trace

// Test-only bridges: the corpus tests live in the external trace_test
// package (so they can link public App plugins like apps/calendar into
// the registry), and reach these unexported helpers through them.
var (
	// Archives lists the corpus archives in a directory, sorted.
	Archives = archives
	// Images lists the committed corpus world images, sorted.
	Images = images
	// ImageEntryNames are the archives that also pin a world image.
	ImageEntryNames = imageEntries
	// DiffLines renders the corpus runner's minimal line diff.
	DiffLines = diffLines
)
