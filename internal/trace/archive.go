// Package trace persists WaRR Command traces as versioned archive
// files, and runs the golden-trace regression corpus built on them.
//
// The paper's central claim is that a recorded trace is a durable,
// high-fidelity artifact: recorded once, replayed later, elsewhere,
// deterministically (Fig. 1). The in-memory command.Trace and its bare
// Fig. 4 text dump carry no provenance — no format version, no scenario
// identity, no recorder metadata — so a file on disk cannot be
// validated, evolved, or trusted. The archive format fixes that:
//
//	WARR-ARCHIVE v1
//	scenario: Edit site
//	app: Google Sites
//	recorder: warr-record
//	<blank line>
//	<gzip-compressed body>
//
// The header is plain text — `key: value` lines a developer can read
// with head(1) — and the body is the gzip compression of exactly the
// Fig. 4 text serialization (command.Trace.WriteTo), terminated by a
// footer comment carrying the command count:
//
//	# warr-trace v1
//	# start https://sites.google.com/demo/edit
//	click //div/span[@id="start"] 82,44 1
//	...
//	# warr-archive-end commands=18
//
// Decompressing an archive body with gunzip therefore yields a valid
// legacy text trace (footer and annotations are comments, which
// command.Read skips), and any byte corruption of the compressed body is
// caught by gzip's CRC while logical truncation is caught by the footer.
//
// Validation is strict and versioning is forward-compatible: a reader
// refuses archives written by a newer format version with a
// *FutureVersionError instead of misreading them, and unknown header
// keys are preserved in Header.Extra so a v1 reader round-trips v1.x
// extensions losslessly.
package trace

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/command"
)

// Version is the archive format version this package writes.
const Version = 1

// magicPrefix opens every archive file; the full magic line is
// "WARR-ARCHIVE v<version>".
const magicPrefix = "WARR-ARCHIVE v"

// BodyMagic is the required first line of the decompressed body — the
// same line command.Trace.WriteTo has always emitted, so a legacy text
// trace in the canonical layout is exactly an archive body.
const BodyMagic = "# warr-trace v1"

// footerPrefix terminates the body; the full footer line is
// "# warr-archive-end commands=<n>".
const footerPrefix = "# warr-archive-end commands="

// maxLineLen bounds one body line and maxHeaderLen one header line,
// both enforced symmetrically: the Writer rejects longer lines, and the
// Reader accepts lines up to exactly these lengths — so the Writer can
// never produce an archive the Reader chokes on.
const (
	maxLineLen   = 1 << 20
	maxHeaderLen = 1 << 16
)

// Header is the plaintext metadata block of an archive.
type Header struct {
	// Version is the format version. Zero means "current" when writing;
	// readers set it to the version of the file they read.
	Version int

	// Scenario names the recorded interaction (Table II's Scenario
	// column), e.g. "Edit site".
	Scenario string

	// App names the application recorded against (Table II's
	// Application column), e.g. "Google Sites".
	App string

	// Recorder identifies what produced the archive, e.g. "warr-record".
	Recorder string

	// Created is an optional RFC 3339 timestamp. Corpus archives leave
	// it empty so re-recording is byte-for-byte reproducible.
	Created string

	// Extra holds unknown header keys, preserved across a read/write
	// round trip so older readers do not destroy newer metadata.
	Extra map[string]string
}

// names of the well-known header keys, in serialization order.
const (
	keyScenario = "scenario"
	keyApp      = "app"
	keyRecorder = "recorder"
	keyCreated  = "created"
)

// FutureVersionError reports an archive written by a newer format
// version than this package understands.
type FutureVersionError struct {
	Version int
}

func (e *FutureVersionError) Error() string {
	return fmt.Sprintf("trace: archive format v%d is newer than supported v%d; upgrade warr to read it",
		e.Version, Version)
}

// ---- Writer ----

// Writer streams a trace into an archive: header first, then commands
// one at a time, footer and gzip trailer on Close.
type Writer struct {
	gz       *gzip.Writer
	buf      *bufio.Writer
	started  bool // body magic line written
	commands int
	err      error
	closed   bool
}

// NewWriter writes the magic line and header to w and returns a Writer
// for the body. The caller must Close it to flush the footer and the
// gzip stream.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: cannot write archive format v%d (this package writes v%d)", h.Version, Version)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s%d\n", magicPrefix, h.Version)
	writeKey := func(k, v string) error {
		if strings.ContainsAny(v, "\n\r") {
			return fmt.Errorf("trace: header %s contains a newline", k)
		}
		if len(k)+len(": ")+len(v) > maxHeaderLen {
			return fmt.Errorf("trace: header %s exceeds %d bytes", k, maxHeaderLen)
		}
		fmt.Fprintf(&b, "%s: %s\n", k, v)
		return nil
	}
	writeKnown := func(k, v string) error {
		if v == "" {
			return nil // empty well-known keys are simply absent
		}
		return writeKey(k, v)
	}
	for _, kv := range []struct{ k, v string }{
		{keyScenario, h.Scenario},
		{keyApp, h.App},
		{keyRecorder, h.Recorder},
		{keyCreated, h.Created},
	} {
		if err := writeKnown(kv.k, kv.v); err != nil {
			return nil, err
		}
	}
	extras := make([]string, 0, len(h.Extra))
	for k := range h.Extra {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	for _, k := range extras {
		switch k {
		case keyScenario, keyApp, keyRecorder, keyCreated:
			return nil, fmt.Errorf("trace: extra header key %q shadows a well-known key", k)
		}
		if k == "" || strings.ContainsAny(k, ":\n\r ") {
			return nil, fmt.Errorf("trace: invalid extra header key %q", k)
		}
		if err := writeKey(k, h.Extra[k]); err != nil {
			return nil, err
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return nil, fmt.Errorf("trace: writing archive header: %w", err)
	}
	gz := gzip.NewWriter(w)
	return &Writer{gz: gz, buf: bufio.NewWriter(gz)}, nil
}

// begin lazily opens the body with its magic line.
func (w *Writer) begin() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = errors.New("trace: write on closed archive writer")
		return w.err
	}
	if !w.started {
		w.started = true
		return w.writeLine(BodyMagic)
	}
	return nil
}

func (w *Writer) writeLine(s string) error {
	if len(s) > maxLineLen {
		w.err = fmt.Errorf("trace: body line exceeds %d bytes", maxLineLen)
		return w.err
	}
	if _, err := w.buf.WriteString(s); err == nil {
		_, err = w.buf.WriteString("\n")
		if err == nil {
			return nil
		}
		w.err = err
	} else {
		w.err = err
	}
	return w.err
}

// Start records the trace's start URL. It must precede the first
// command, matching command.Trace.WriteTo's layout.
func (w *Writer) Start(url string) error {
	if err := w.begin(); err != nil {
		return err
	}
	if url == "" {
		return nil
	}
	if w.commands > 0 {
		w.err = errors.New("trace: Start after WriteCommand")
		return w.err
	}
	if strings.ContainsAny(url, "\n\r") {
		w.err = errors.New("trace: start URL contains a newline")
		return w.err
	}
	return w.writeLine("# start " + url)
}

// WriteCommand appends one command to the body. Commands that do not
// survive a serialize/parse round trip — constructible in memory with
// field values the line grammar cannot carry, e.g. a Key containing
// " [" — are rejected rather than silently corrupted.
func (w *Writer) WriteCommand(c command.Command) error {
	if err := w.begin(); err != nil {
		return err
	}
	line := c.String()
	if reparsed, err := command.ParseLine(line); err != nil || reparsed != c {
		if err == nil {
			err = fmt.Errorf("%q re-parses as a different command", line)
		}
		w.err = fmt.Errorf("trace: command does not serialize losslessly: %w", err)
		return w.err
	}
	w.commands++
	return w.writeLine(line)
}

// WriteComment appends one comment line ("# <text>") to the body —
// nondeterminism annotations travel this way.
func (w *Writer) WriteComment(text string) error {
	if err := w.begin(); err != nil {
		return err
	}
	if strings.ContainsAny(text, "\n\r") {
		w.err = errors.New("trace: comment contains a newline")
		return w.err
	}
	if strings.HasPrefix(text, footerPrefix[2:]) {
		w.err = fmt.Errorf("trace: comment %q would forge the archive footer", text)
		return w.err
	}
	if strings.HasPrefix(text, "start ") {
		w.err = fmt.Errorf("trace: comment %q would shadow the start-URL directive", text)
		return w.err
	}
	return w.writeLine("# " + text)
}

// WriteTrace streams a whole trace.
func (w *Writer) WriteTrace(tr command.Trace) error {
	if err := w.Start(tr.StartURL); err != nil {
		return err
	}
	for _, c := range tr.Commands {
		if err := w.WriteCommand(c); err != nil {
			return err
		}
	}
	return nil
}

// Close writes the footer and flushes the gzip stream. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	if err := w.begin(); err != nil {
		w.closed = true
		return err
	}
	w.closed = true
	if err := w.writeLine(footerPrefix + strconv.Itoa(w.commands)); err != nil {
		return err
	}
	if err := w.buf.Flush(); err != nil {
		w.err = err
		return err
	}
	if err := w.gz.Close(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// ---- Reader ----

// Reader streams commands out of an archive with strict validation: the
// magic line and version are checked up front, the body must open with
// the trace magic, every line must parse, the footer count must match,
// and nothing may follow the footer. Byte corruption of the compressed
// body surfaces as a gzip checksum error.
type Reader struct {
	header   Header
	sc       *bufio.Scanner
	gz       *gzip.Reader
	startURL string
	retain   bool     // keep body lines for BodyLines
	lines    []string // body lines as read, footer excluded (retain only)
	lineNo   int      // 1-based body line counter, for error messages
	comments int
	commands int
	footer   bool
	err      error
}

// NewReader parses the magic line and header from r and prepares the
// body for streaming. r should be buffered by the caller for large
// archives; NewReader reads it byte-at-a-time through the header so the
// gzip body begins exactly where the header ended.
func NewReader(r io.Reader) (*Reader, error) {
	br := byteLineReader{r: r}
	magic, err := br.line()
	if err != nil {
		return nil, fmt.Errorf("trace: reading archive magic: %w", err)
	}
	vs, ok := strings.CutPrefix(magic, magicPrefix)
	if !ok {
		return nil, fmt.Errorf("trace: not a WaRR trace archive (magic %q)", magic)
	}
	v, err := strconv.Atoi(vs)
	if err != nil || v < 1 {
		return nil, fmt.Errorf("trace: malformed archive version %q", vs)
	}
	if v > Version {
		return nil, &FutureVersionError{Version: v}
	}
	h := Header{Version: v}
	seen := make(map[string]bool)
	for {
		line, err := br.line()
		if err != nil {
			return nil, fmt.Errorf("trace: reading archive header: %w", err)
		}
		if line == "" {
			break
		}
		k, val, ok := strings.Cut(line, ": ")
		if !ok || k == "" || strings.ContainsRune(k, ' ') {
			return nil, fmt.Errorf("trace: malformed header line %q", line)
		}
		if seen[k] {
			return nil, fmt.Errorf("trace: duplicate header key %q", k)
		}
		seen[k] = true
		switch k {
		case keyScenario:
			h.Scenario = val
		case keyApp:
			h.App = val
		case keyRecorder:
			h.Recorder = val
		case keyCreated:
			h.Created = val
		default:
			if h.Extra == nil {
				h.Extra = make(map[string]string)
			}
			h.Extra[k] = val
		}
	}
	gz, err := gzip.NewReader(br.r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening archive body: %w", err)
	}
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 64*1024), maxLineLen+1)
	rd := &Reader{header: h, gz: gz, sc: sc}
	first, err := rd.bodyLine()
	if err != nil {
		return nil, err
	}
	if first != BodyMagic {
		return nil, fmt.Errorf("trace: archive body does not open with %q (got %q)", BodyMagic, first)
	}
	// The constant magic line is always retained so KeepBody may be
	// called any time before the first Next.
	rd.lines = append(rd.lines, first)
	return rd, nil
}

// byteLineReader reads newline-terminated lines one byte at a time, so
// the plain-text header can be consumed from an unbuffered reader
// without swallowing the start of the gzip stream.
type byteLineReader struct {
	r io.Reader
}

func (b byteLineReader) line() (string, error) {
	var sb strings.Builder
	var one [1]byte
	for {
		n, err := b.r.Read(one[:])
		if n == 1 {
			if one[0] == '\n' {
				return sb.String(), nil
			}
			sb.WriteByte(one[0])
			if sb.Len() > maxHeaderLen {
				return "", errors.New("header line too long")
			}
			continue
		}
		if err == io.EOF {
			return "", io.ErrUnexpectedEOF
		}
		if err != nil {
			return "", err
		}
	}
}

func (r *Reader) keep(line string) {
	if r.retain {
		r.lines = append(r.lines, line)
	}
}

func (r *Reader) bodyLine() (string, error) {
	if r.sc.Scan() {
		r.lineNo++
		return r.sc.Text(), nil
	}
	if err := r.sc.Err(); err != nil {
		return "", fmt.Errorf("trace: reading archive body: %w", err)
	}
	return "", io.EOF
}

// Header returns the archive's metadata.
func (r *Reader) Header() Header { return r.header }

// StartURL returns the trace's start URL once its "# start" line has
// been read — it precedes the first command, so after the first Next
// call (or a whole-trace Trace call) it is final.
func (r *Reader) StartURL() string { return r.startURL }

// Commands returns the number of commands streamed so far.
func (r *Reader) Commands() int { return r.commands }

// Comments returns the number of annotation comment lines seen so far
// (nondeterminism events and other hand annotations; the structural
// magic/start/footer lines are not counted).
func (r *Reader) Comments() int { return r.comments }

// KeepBody makes the reader retain every body line for BodyLines —
// the lossless re-archiving path. Call it before the first Next;
// without it the reader streams, holding no line after parsing it.
func (r *Reader) KeepBody() { r.retain = true }

// BodyLines returns the body exactly as read so far (footer excluded),
// for lossless re-archiving. It requires KeepBody to have been called
// before streaming began; valid after Next has returned io.EOF.
func (r *Reader) BodyLines() []string { return r.lines }

// Next returns the next command. It returns io.EOF after the footer has
// been read and validated; a body that ends without a footer, whose
// footer count disagrees with the streamed commands, or that continues
// past its footer is an error.
func (r *Reader) Next() (command.Command, error) {
	if r.err != nil {
		return command.Command{}, r.err
	}
	for {
		line, err := r.bodyLine()
		if err == io.EOF {
			if !r.footer {
				r.err = errors.New("trace: archive body truncated (no footer)")
				return command.Command{}, r.err
			}
			r.err = io.EOF
			return command.Command{}, io.EOF
		}
		if err != nil {
			r.err = err
			return command.Command{}, err
		}
		if r.footer {
			r.err = fmt.Errorf("trace: archive body continues past its footer (%q)", line)
			return command.Command{}, r.err
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			r.keep(line)
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if ns, ok := strings.CutPrefix(trimmed, footerPrefix); ok {
				n, err := strconv.Atoi(ns)
				if err != nil || n < 0 {
					r.err = fmt.Errorf("trace: malformed archive footer %q", line)
					return command.Command{}, r.err
				}
				if n != r.commands {
					r.err = fmt.Errorf("trace: archive footer declares %d commands, body has %d", n, r.commands)
					return command.Command{}, r.err
				}
				r.footer = true
				continue
			}
			r.keep(line)
			if url, ok := strings.CutPrefix(trimmed, "# start "); ok {
				r.startURL = strings.TrimSpace(url)
			} else if trimmed != BodyMagic {
				r.comments++
			}
			continue
		}
		c, err := command.ParseLine(trimmed)
		if err != nil {
			r.err = fmt.Errorf("trace: archive body line %d: %w", r.lineNo, err)
			return command.Command{}, r.err
		}
		r.keep(line)
		r.commands++
		return c, nil
	}
}

// Trace reads the remaining commands and returns the whole trace.
func (r *Reader) Trace() (command.Trace, error) {
	var tr command.Trace
	for {
		c, err := r.Next()
		if err == io.EOF {
			tr.StartURL = r.startURL
			return tr, nil
		}
		if err != nil {
			return command.Trace{}, err
		}
		tr.Commands = append(tr.Commands, c)
	}
}

// ---- whole-file convenience ----

// Write archives a trace to w under the given header.
func Write(w io.Writer, h Header, tr command.Trace) error {
	aw, err := NewWriter(w, h)
	if err != nil {
		return err
	}
	if err := aw.WriteTrace(tr); err != nil {
		return err
	}
	return aw.Close()
}

// WriteText archives a pre-rendered trace text body — e.g. a
// NondetLog-annotated trace — preserving its comment lines. The body
// must open with the trace magic line and parse as a trace (each line
// is validated as it is written).
func WriteText(w io.Writer, h Header, body string) error {
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != BodyMagic {
		return fmt.Errorf("trace: body does not open with %q", BodyMagic)
	}
	aw, err := NewWriter(w, h)
	if err != nil {
		return err
	}
	for _, line := range lines[1:] {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			continue
		case strings.HasPrefix(trimmed, "# start "):
			if err := aw.Start(strings.TrimSpace(trimmed[len("# start "):])); err != nil {
				return err
			}
		case strings.HasPrefix(trimmed, "#"):
			// Any '#' line is a comment to the parser ("traces survive
			// hand annotation"), including '#foo' without a space; it
			// normalizes to "# foo" in the archive.
			if err := aw.WriteComment(strings.TrimSpace(strings.TrimPrefix(trimmed, "#"))); err != nil {
				return err
			}
		default:
			c, err := command.ParseLine(trimmed)
			if err != nil {
				return fmt.Errorf("trace: body line %q: %w", line, err)
			}
			if err := aw.WriteCommand(c); err != nil {
				return err
			}
		}
	}
	return aw.Close()
}

// Read reads a whole archive from r.
func Read(r io.Reader) (Header, command.Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return Header{}, command.Trace{}, err
	}
	tr, err := rd.Trace()
	if err != nil {
		return Header{}, command.Trace{}, err
	}
	return rd.Header(), tr, nil
}

// WriteFile archives a trace to path.
func WriteFile(path string, h Header, tr command.Trace) error {
	return writeFileWith(path, func(f io.Writer) error { return Write(f, h, tr) })
}

// WriteTextFile archives a pre-rendered trace text body to path,
// preserving comment lines (see WriteText).
func WriteTextFile(path string, h Header, body string) error {
	return writeFileWith(path, func(f io.Writer) error { return WriteText(f, h, body) })
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads the archive at path.
func ReadFile(path string) (Header, command.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, command.Trace{}, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// ---- format auto-detection ----

// IsArchive reports whether data opens like an archive file.
func IsArchive(data []byte) bool {
	return strings.HasPrefix(string(data), magicPrefix)
}

// ReadAuto reads a trace from r in either format: a versioned archive
// (detected by its magic) or the legacy Fig. 4 text dump. Legacy traces
// return a zero-valued Header.
func ReadAuto(r io.Reader) (Header, command.Trace, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(magicPrefix))
	if err != nil && err != io.EOF {
		return Header{}, command.Trace{}, fmt.Errorf("trace: sniffing format: %w", err)
	}
	if IsArchive(peek) {
		return Read(br)
	}
	tr, err := command.Read(br)
	return Header{}, tr, err
}
