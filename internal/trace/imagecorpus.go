package trace

// Durable-image corpus entries. Alongside the golden trace archives,
// the corpus pins one committed WARR-IMAGE file: a world captured
// mid-replay of a corpus archive, exactly the artifact the distributed
// campaign coordinator ships to warr-worker processes. Verification is
// deliberately hermetic — the committed bytes are decoded (exercising
// the format's checksum and version validation), their content digest
// is compared against the golden (stable in CI because it hashes the
// committed bytes, never a re-capture), and the restored session is
// driven to completion, pinning that a world imaged by one build stays
// restorable and replayable by every later one. Breaking the image
// format or the restore path without bumping goldens is drift.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// ImageExt is the corpus suffix for committed world images; an image's
// golden sits next to it at <name>.image.golden.json.
const ImageExt = ".image"

// imageDepthKey is the image header key recording how many trace
// commands the imaged session had already consumed.
const imageDepthKey = "fork-depth"

// imageEntries names the corpus archives that also pin a world image,
// captured at half the trace. One deterministic workload is enough to
// pin the format; the per-fork-point coverage lives in the image
// package's equivalence tests.
var imageEntries = []string{"edit-site"}

// ImageOutcome is everything the corpus runner observes about one
// committed world image; it is diffed against the golden like an
// archive outcome.
type ImageOutcome struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`

	Scenario string `json:"scenario"`
	App      string `json:"app"`
	Format   int    `json:"formatVersion"`
	Depth    int    `json:"forkDepth"`

	// Outcome of resuming the restored session to completion.
	Played     int    `json:"played"`
	Failed     int    `json:"failed"`
	Complete   bool   `json:"complete"`
	FinalURL   string `json:"finalURL"`
	FinalTitle string `json:"finalTitle"`
}

// RunImage decodes the committed image at path, restores it, resumes
// the imaged session to completion, and returns the observed outcome.
func RunImage(path string) (*ImageOutcome, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, digest, err := image.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	depth, err := strconv.Atoi(img.Header.Extra[imageDepthKey])
	if err != nil {
		return nil, fmt.Errorf("%s: bad %s header: %w", filepath.Base(path), imageDepthKey, err)
	}
	_, sess, err := image.LoadSession(img, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: restore: %w", filepath.Base(path), err)
	}
	res := sess.Run()
	out := &ImageOutcome{
		Name:     strings.TrimSuffix(filepath.Base(path), ImageExt),
		Digest:   digest,
		Scenario: img.Header.Scenario,
		App:      img.Header.App,
		Format:   img.Header.Version,
		Depth:    depth,
		Played:   res.Played,
		Failed:   res.Failed,
		Complete: res.Complete(),
	}
	if tab := sess.Tab(); tab != nil {
		out.FinalURL = tab.URL()
		out.FinalTitle = tab.Title()
	}
	return out, nil
}

// images lists the committed corpus images in dir, sorted by name.
func images(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+ImageExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// recordImage replays the named corpus archive to half its commands in
// a fresh environment, captures the world, and writes the image next to
// the archive. Capture is deterministic for deterministic workloads, so
// re-recording produces byte-identical images.
func recordImage(dir, name string) error {
	data, err := os.ReadFile(filepath.Join(dir, name+ArchiveExt))
	if err != nil {
		return fmt.Errorf("trace: image entry %s needs its archive: %w", name, err)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("trace: %s: %w", name, err)
	}
	tr, err := rd.Trace()
	if err != nil {
		return fmt.Errorf("trace: %s: %w", name, err)
	}
	h := rd.Header()

	env := apps.NewEnv(browser.DeveloperMode)
	sess, err := replayer.New(env.Browser, replayer.Options{}).NewSession(nil, tr)
	if err != nil {
		return fmt.Errorf("trace: %s: %w", name, err)
	}
	depth := len(tr.Commands) / 2
	for i := 0; i < depth; i++ {
		if _, ok := sess.Next(); !ok {
			return fmt.Errorf("trace: %s: archive replay ended at command %d", name, i)
		}
	}
	img, err := image.Capture(env, sess, image.Header{
		Scenario: h.Scenario,
		App:      h.App,
		Creator:  "warr-corpus",
		Extra:    map[string]string{imageDepthKey: strconv.Itoa(depth)},
	})
	if err != nil {
		return fmt.Errorf("trace: imaging %s: %w", name, err)
	}
	out, _, err := image.Encode(img)
	if err != nil {
		return fmt.Errorf("trace: encoding %s image: %w", name, err)
	}
	return os.WriteFile(filepath.Join(dir, name+ImageExt), out, 0o644)
}
