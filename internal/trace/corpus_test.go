package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	// Linking the calendar plugin registers its app and create-event
	// scenario; the corpus includes their archives.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/trace"
)

// corpusDir is the committed golden corpus, relative to this package.
const corpusDir = "../../testdata/corpus"

// TestCorpusMatchesGoldens is the in-test mirror of the CI corpus gate:
// every committed archive must replay to exactly its committed golden
// outcome. When this fails after a deliberate behavior change, run
// `go run ./cmd/warr-corpus -update` and commit the golden diff.
func TestCorpusMatchesGoldens(t *testing.T) {
	mismatches, err := trace.VerifyDir(corpusDir)
	if err != nil {
		t.Fatalf("verifying corpus: %v", err)
	}
	for _, m := range mismatches {
		t.Errorf("corpus drift in %s:\n%s", m.Name, m.Diff)
	}
	if len(mismatches) > 0 {
		t.Log("if this drift is intended, run `go run ./cmd/warr-corpus -update` and commit the diff")
	}
}

// TestCorpusCoversEveryEntry pins the corpus inventory: an entry added
// to trace.Entries() without a committed archive (or an archive with no
// backing entry) is drift.
func TestCorpusCoversEveryEntry(t *testing.T) {
	want := make(map[string]bool)
	for _, e := range trace.Entries() {
		want[e.Name] = true
	}
	paths, err := trace.Archives(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, p := range paths {
		name := filepath.Base(p)
		got[name[:len(name)-len(trace.ArchiveExt)]] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("entry %s has no committed archive; run `go run ./cmd/warr-corpus -record`", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("archive %s%s has no corpus entry", name, trace.ArchiveExt)
		}
	}

	// The pinned world images are inventory too: an image entry without
	// its committed .image file (or a stray image with no entry) is
	// drift the same way a missing archive is.
	imgs, err := trace.Images(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	gotImgs := make(map[string]bool)
	for _, p := range imgs {
		name := filepath.Base(p)
		gotImgs[name[:len(name)-len(trace.ImageExt)]] = true
	}
	for _, name := range trace.ImageEntryNames {
		if !gotImgs[name] {
			t.Errorf("image entry %s has no committed image; run `go run ./cmd/warr-corpus -record`", name)
		}
		delete(gotImgs, name)
	}
	for name := range gotImgs {
		t.Errorf("image %s%s has no corpus entry", name, trace.ImageExt)
	}
}

// TestRecordingIsDeterministic asserts the property the whole corpus
// rests on: recording the same scenario twice produces identical
// archives, up to GMail's deliberately volatile generated element ids
// (a process-global, never-repeating counter — the very property that
// forces XPath relaxation at replay, §IV-C). Everything else runs on
// the virtual clock, so no wall-clock bytes may leak in.
func TestRecordingIsDeterministic(t *testing.T) {
	volatileID := regexp.MustCompile(`@id=":[0-9]+"`)
	for _, e := range trace.Entries() {
		a, err := e.RecordEntry()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		b, err := e.RecordEntry()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if bytes.Equal(a, b) {
			continue
		}
		na := volatileID.ReplaceAllString(archiveBody(t, a), `@id=":N"`)
		nb := volatileID.ReplaceAllString(archiveBody(t, b), `@id=":N"`)
		if na != nb {
			t.Errorf("%s: two recordings differ beyond volatile ids:\n%s", e.Name, trace.DiffLines(na, nb))
		}
	}
}

// archiveBody decompresses an archive's body text.
func archiveBody(t *testing.T, data []byte) string {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rd.KeepBody()
	if _, err := rd.Trace(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(rd.BodyLines(), "\n")
}

// TestRunArchiveIsDeterministic replays one archive twice and requires
// identical outcomes — the determinism half of the corpus gate.
func TestRunArchiveIsDeterministic(t *testing.T) {
	path := filepath.Join(corpusDir, "edit-site"+trace.ArchiveExt)
	if _, err := os.Stat(path); err != nil {
		t.Skipf("corpus archive missing: %v", err)
	}
	a, err := trace.RunArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.RunArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := trace.MarshalOutcome(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := trace.MarshalOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("two replays of the same archive produced different outcomes:\n%s", trace.DiffLines(string(aj), string(bj)))
	}
}

// TestUpdateDirRemovesOrphanGoldens asserts the verify/update cycle
// converges: a golden whose archive is gone is removed by trace.UpdateDir,
// not left to fail verification forever.
func TestUpdateDirRemovesOrphanGoldens(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join(corpusDir, "edit-site"+trace.ArchiveExt))
	if err != nil {
		t.Skipf("corpus archive missing: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "edit-site"+trace.ArchiveExt), src, 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "retired"+trace.GoldenExt)
	if err := os.WriteFile(orphan, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.UpdateDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan golden survived trace.UpdateDir: %v", err)
	}
	if mismatches, err := trace.VerifyDir(dir); err != nil || len(mismatches) != 0 {
		t.Errorf("corpus not green after trace.UpdateDir: %v %v", mismatches, err)
	}
}

// TestCorpusArchivesReplayComplete asserts the paper's durability claim
// over the committed corpus: every archive replays to completion in a
// fresh environment (the nondet annotations and search variants
// included).
func TestCorpusArchivesReplayComplete(t *testing.T) {
	paths, err := trace.Archives(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		out, err := trace.RunArchive(p)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		if !out.Complete {
			t.Errorf("%s: replay incomplete (played %d, failed %d)", filepath.Base(p), out.Played, out.Failed)
		}
		if !out.XPathAgree {
			t.Errorf("%s: indexed and walker XPath engines disagreed", filepath.Base(p))
		}
	}
}
