package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
)

func sampleTrace(t *testing.T) command.Trace {
	t.Helper()
	tr, err := command.Parse(`# warr-trace v1
# start https://sites.google.com/demo/edit
click //div/span[@id="start"] 82,44 1
type //td/div[@id="content"] [H,72] 3
type //td/div[@id="content"] [ ,32] 2
click //td/div[text()="Save"] 74,51 37
`)
	if err != nil {
		t.Fatalf("parsing sample trace: %v", err)
	}
	return tr
}

func TestArchiveRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	h := Header{
		Scenario: "Edit site",
		App:      "Google Sites",
		Recorder: "archive_test",
		Created:  "2011-06-27T00:00:00Z",
		Extra:    map[string]string{"x-experiment": "fig4"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, h, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, gotTr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Version != Version {
		t.Errorf("Version = %d, want %d", got.Version, Version)
	}
	if got.Scenario != h.Scenario || got.App != h.App || got.Recorder != h.Recorder || got.Created != h.Created {
		t.Errorf("header round trip: got %+v, want %+v", got, h)
	}
	if got.Extra["x-experiment"] != "fig4" {
		t.Errorf("extra key lost: %+v", got.Extra)
	}
	if gotTr.StartURL != tr.StartURL {
		t.Errorf("StartURL = %q, want %q", gotTr.StartURL, tr.StartURL)
	}
	if len(gotTr.Commands) != len(tr.Commands) {
		t.Fatalf("commands = %d, want %d", len(gotTr.Commands), len(tr.Commands))
	}
	for i := range tr.Commands {
		if gotTr.Commands[i] != tr.Commands[i] {
			t.Errorf("command %d = %+v, want %+v", i, gotTr.Commands[i], tr.Commands[i])
		}
	}
	// The serialized text must be identical too (lossless round trip).
	if gotTr.Text() != tr.Text() {
		t.Errorf("text round trip:\n got %q\nwant %q", gotTr.Text(), tr.Text())
	}
}

func TestArchiveDeterministicBytes(t *testing.T) {
	tr := sampleTrace(t)
	h := Header{Scenario: "Edit site", App: "Google Sites", Recorder: "archive_test"}
	var a, b bytes.Buffer
	if err := Write(&a, h, tr); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, h, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("writing the same trace twice produced different archive bytes")
	}
}

func TestArchiveBodyIsLegacyTrace(t *testing.T) {
	// gunzip of the body must yield a valid legacy text trace whose
	// parse equals the archived trace.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Scenario: "s"}, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	i := bytes.Index(raw, []byte("\n\n"))
	if i < 0 {
		t.Fatal("no blank line after header")
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw[i+2:]))
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	body, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("decompressing body: %v", err)
	}
	legacy, err := command.Parse(string(body))
	if err != nil {
		t.Fatalf("decompressed body is not a legacy trace: %v", err)
	}
	if legacy.Text() != tr.Text() {
		t.Errorf("legacy parse of body differs:\n got %q\nwant %q", legacy.Text(), tr.Text())
	}
}

func TestArchiveStreamingReader(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Scenario: "s"}, tr); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next %d: %v", n, err)
		}
		if c != tr.Commands[n] {
			t.Errorf("command %d = %+v, want %+v", n, c, tr.Commands[n])
		}
		if n == 0 && rd.StartURL() != tr.StartURL {
			t.Errorf("StartURL after first Next = %q, want %q", rd.StartURL(), tr.StartURL)
		}
		n++
	}
	if n != len(tr.Commands) {
		t.Errorf("streamed %d commands, want %d", n, len(tr.Commands))
	}
	// io.EOF is sticky.
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v, want io.EOF", err)
	}
	// Without KeepBody the reader streams: nothing beyond the constant
	// magic line is retained.
	if lines := rd.BodyLines(); len(lines) != 1 || lines[0] != BodyMagic {
		t.Errorf("streaming reader retained body lines without KeepBody: %q", lines)
	}
}

func TestArchiveAnnotatedRoundTrip(t *testing.T) {
	body := `# warr-trace v1
# start https://mail.google.com/demo
# nondet 00:00:00.400 timer-fired deadline 00:00:00.400
click //div[@name="compose"] 10,10 3
# nondet 00:00:00.900 network GET https://mail.google.com/demo -> 200
type //input[@name="to"] [a,65] 2
`
	var buf bytes.Buffer
	if err := WriteText(&buf, Header{Scenario: "Compose email", App: "GMail"}, body); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rd.KeepBody()
	tr, err := rd.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Commands) != 2 {
		t.Errorf("commands = %d, want 2", len(tr.Commands))
	}
	if rd.Comments() != 2 {
		t.Errorf("comments = %d, want 2", rd.Comments())
	}
	// The body survives byte-for-byte (footer excluded).
	if got := strings.Join(rd.BodyLines(), "\n") + "\n"; got != body {
		t.Errorf("body round trip:\n got %q\nwant %q", got, body)
	}
}

func TestWriteTextAcceptsBareHashComments(t *testing.T) {
	// command.Read skips any '#' line ("traces survive hand
	// annotation"), so WriteText must archive them too — normalized to
	// "# <text>".
	body := "# warr-trace v1\n#hand-note\nclick //a 1,1 1\n"
	var buf bytes.Buffer
	if err := WriteText(&buf, Header{}, body); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Trace(); err != nil {
		t.Fatal(err)
	}
	if rd.Comments() != 1 {
		t.Errorf("comments = %d, want 1", rd.Comments())
	}
}

func TestArchiveRejectsCorruption(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Scenario: "Edit site", App: "Google Sites"}, tr); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	wantH, wantTr, err := Read(bytes.NewReader(pristine))
	if err != nil {
		t.Fatal(err)
	}

	// A single-byte flip anywhere in the compressed region must either
	// be rejected or be semantically inert (a handful of bits — gzip's
	// MTIME/XFL/OS header bytes and deflate padding — carry no content
	// and no checksum; whole-file byte integrity is the corpus goldens'
	// archiveSHA256 field's job). What must never happen is a flip that
	// reads back successfully as *different* content.
	bodyStart := bytes.Index(pristine, []byte("\n\n")) + 2
	detected := 0
	for off := bodyStart; off < len(pristine); off++ {
		corrupt := append([]byte(nil), pristine...)
		corrupt[off] ^= 0x40
		h, tr2, err := Read(bytes.NewReader(corrupt))
		if err != nil {
			detected++
			continue
		}
		if !reflect.DeepEqual(h, wantH) || tr2.Text() != wantTr.Text() {
			t.Fatalf("corruption at byte %d read back as different content", off)
		}
	}
	if flips := len(pristine) - bodyStart; detected < flips*9/10 {
		t.Errorf("only %d/%d compressed-region flips were detected", detected, flips)
	}

	// Truncations must be rejected.
	for _, cut := range []int{1, bodyStart / 2, bodyStart, len(pristine) / 2, len(pristine) - 1} {
		if _, _, err := Read(bytes.NewReader(pristine[:cut])); err == nil {
			t.Errorf("truncation at %d bytes was not detected", cut)
		}
	}
}

func TestArchiveFooterValidation(t *testing.T) {
	// Build an archive whose footer disagrees with the body.
	forge := func(body string) []byte {
		var buf bytes.Buffer
		buf.WriteString("WARR-ARCHIVE v1\n\n")
		gz := gzip.NewWriter(&buf)
		if _, err := io.WriteString(gz, body); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name string
		body string
	}{
		{"missing footer", "# warr-trace v1\nclick //a 1,1 1\n"},
		{"count mismatch", "# warr-trace v1\nclick //a 1,1 1\n# warr-archive-end commands=2\n"},
		{"line after footer", "# warr-trace v1\n# warr-archive-end commands=0\nclick //a 1,1 1\n"},
		{"malformed footer", "# warr-trace v1\n# warr-archive-end commands=x\n"},
		{"missing body magic", "click //a 1,1 1\n# warr-archive-end commands=1\n"},
		{"bad command line", "# warr-trace v1\nclick notanxpath 1,1 1\n# warr-archive-end commands=1\n"},
	}
	for _, tc := range cases {
		if _, _, err := Read(bytes.NewReader(forge(tc.body))); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The well-formed control must pass.
	if _, _, err := Read(bytes.NewReader(forge("# warr-trace v1\nclick //a 1,1 1\n# warr-archive-end commands=1\n"))); err != nil {
		t.Errorf("control archive rejected: %v", err)
	}
}

func TestArchiveFutureVersion(t *testing.T) {
	_, _, err := Read(strings.NewReader("WARR-ARCHIVE v2\n\n"))
	var fv *FutureVersionError
	if !errors.As(err, &fv) {
		t.Fatalf("v2 archive: err = %v, want FutureVersionError", err)
	}
	if fv.Version != 2 {
		t.Errorf("FutureVersionError.Version = %d, want 2", fv.Version)
	}
	if _, err := NewWriter(io.Discard, Header{Version: 2}); err == nil {
		t.Error("NewWriter accepted a future version")
	}
}

func TestArchiveRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not an archive",
		"WARR-ARCHIVE vX\n\n",
		"WARR-ARCHIVE v0\n\n",
		"WARR-ARCHIVE v1\nmalformed header\n\n",
		"WARR-ARCHIVE v1\nscenario: a\nscenario: b\n\n",
		"WARR-ARCHIVE v1\nscenario: s\n", // EOF before blank line
		"WARR-ARCHIVE v1\n\nnot gzip",
	} {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadAuto(t *testing.T) {
	tr := sampleTrace(t)

	// Legacy text format.
	h, got, err := ReadAuto(strings.NewReader(tr.Text()))
	if err != nil {
		t.Fatalf("ReadAuto(text): %v", err)
	}
	if h.Version != 0 {
		t.Errorf("legacy read: Version = %d, want 0", h.Version)
	}
	if got.Text() != tr.Text() {
		t.Errorf("legacy read: trace differs")
	}

	// Archive format.
	var buf bytes.Buffer
	if err := Write(&buf, Header{Scenario: "Edit site"}, tr); err != nil {
		t.Fatal(err)
	}
	h, got, err = ReadAuto(&buf)
	if err != nil {
		t.Fatalf("ReadAuto(archive): %v", err)
	}
	if h.Scenario != "Edit site" || h.Version != Version {
		t.Errorf("archive read: header = %+v", h)
	}
	if got.Text() != tr.Text() {
		t.Errorf("archive read: trace differs")
	}
}

func TestWriterGuards(t *testing.T) {
	newW := func() *Writer {
		w, err := NewWriter(io.Discard, Header{})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	w := newW()
	if err := w.WriteComment("warr-archive-end commands=5"); err == nil {
		t.Error("footer-forging comment accepted")
	}
	w = newW()
	if err := w.WriteComment("start https://elsewhere"); err == nil {
		t.Error("start-shadowing comment accepted")
	}
	w = newW()
	if err := w.WriteCommand(command.Command{Action: command.Click, XPath: "//a", X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Start("https://late"); err == nil {
		t.Error("Start after WriteCommand accepted")
	}
	w = newW()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCommand(command.Command{Action: command.Click, XPath: "//a"}); err == nil {
		t.Error("write on closed writer accepted")
	}

	// A command constructible in memory but not representable in the
	// line grammar (Key containing " [" shifts the payload boundary on
	// re-parse) must be rejected, not silently corrupted.
	w = newW()
	if err := w.WriteCommand(command.Command{Action: command.Type, XPath: "//a", Key: " [", Code: 91, Elapsed: 1}); err == nil {
		t.Error("non-round-trippable command accepted")
	}

	// The writer refuses lines it knows the reader cannot scan back.
	w = newW()
	longXPath := `//a[@id="` + strings.Repeat("x", maxLineLen) + `"]`
	if err := w.WriteCommand(command.Command{Action: command.Click, XPath: longXPath, X: 1, Y: 1}); err == nil {
		t.Error("over-long command line accepted")
	}

	if _, err := NewWriter(io.Discard, Header{Scenario: "a\nb"}); err == nil {
		t.Error("newline in header value accepted")
	}
	if _, err := NewWriter(io.Discard, Header{Extra: map[string]string{"scenario": "x"}}); err == nil {
		t.Error("extra key shadowing a well-known key accepted")
	}
	if _, err := NewWriter(io.Discard, Header{Extra: map[string]string{"bad key": "x"}}); err == nil {
		t.Error("extra key with a space accepted")
	}
	// Header lines the reader would refuse are refused at write time.
	if _, err := NewWriter(io.Discard, Header{Scenario: strings.Repeat("s", maxHeaderLen)}); err == nil {
		t.Error("over-long header value accepted")
	}
}

func TestArchiveEmptyExtraValueRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	h := Header{Extra: map[string]string{"x-flag": ""}}
	if err := Write(&buf, h, command.Trace{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Extra["x-flag"]; !ok || v != "" {
		t.Errorf("empty extra value lost: %+v", got.Extra)
	}
}

func TestArchiveLongLineRoundTrip(t *testing.T) {
	// A body line near (but under) the cap must survive write and read:
	// the default 64KB bufio.Scanner token limit must not apply.
	long := command.Command{
		Action: command.Click,
		XPath:  `//a[@id="` + strings.Repeat("x", 100*1024) + `"]`,
		X:      1, Y: 2, Elapsed: 3,
	}
	tr := command.Trace{StartURL: "http://x.test/", Commands: []command.Command{long}}
	var buf bytes.Buffer
	if err := Write(&buf, Header{Scenario: "long"}, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Commands) != 1 || got.Commands[0] != long {
		t.Error("long command did not round-trip")
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	path := t.TempDir() + "/sample.warr"
	h := Header{Scenario: "Edit site", App: "Google Sites", Recorder: "archive_test"}
	if err := WriteFile(path, h, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, gotTr, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Scenario != h.Scenario || gotTr.Text() != tr.Text() {
		t.Error("file round trip differs")
	}
}
