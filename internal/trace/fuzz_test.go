package trace

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
)

// FuzzArchiveRoundTrip drives arbitrary header metadata and trace text
// through a write/read cycle: whenever the input is a valid trace body,
// the archive must round-trip it to the identical header and command
// sequence, and re-archiving the read-back trace must reproduce the
// first archive byte for byte.
func FuzzArchiveRoundTrip(f *testing.F) {
	f.Add("Edit site", "Google Sites", "fuzz", `# warr-trace v1
# start https://sites.google.com/demo/edit
click //div/span[@id="start"] 82,44 1
type //td/div[@id="content"] [H,72] 3
click //td/div[text()="Save"] 74,51 37
`)
	f.Add("", "", "", "# warr-trace v1\n")
	f.Add("s", "a", "r", "# warr-trace v1\nclick //a 1,1 1\n")
	f.Add("nondet", "GMail", "rec", `# warr-trace v1
# start https://mail.google.com/demo
# nondet 00:00:00.400 timer-fired deadline 00:00:00.400
click //div[@name="compose"] 10,10 3
`)
	f.Add("x", "y", "z", "not a trace at all")

	f.Fuzz(func(t *testing.T, scenario, app, recorder, body string) {
		tr, err := command.Parse(body)
		if err != nil {
			return // not a trace; nothing to archive
		}
		h := Header{Scenario: scenario, App: app, Recorder: recorder}

		var buf bytes.Buffer
		if err := Write(&buf, h, tr); err != nil {
			// Metadata the line-based header cannot carry (embedded
			// newlines) is rejected, never mangled.
			return
		}
		first := append([]byte(nil), buf.Bytes()...)

		gotH, gotTr, err := Read(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("wrote an archive that does not read back: %v", err)
		}
		wantH := h
		wantH.Version = Version
		// Empty header values are not serialized, so they read back empty.
		if !reflect.DeepEqual(gotH, wantH) {
			t.Fatalf("header round trip: got %+v, want %+v", gotH, wantH)
		}
		if gotTr.StartURL != tr.StartURL || len(gotTr.Commands) != len(tr.Commands) {
			t.Fatalf("trace shape round trip: got %d cmds start %q, want %d cmds start %q",
				len(gotTr.Commands), gotTr.StartURL, len(tr.Commands), tr.StartURL)
		}
		for i := range tr.Commands {
			if gotTr.Commands[i] != tr.Commands[i] {
				t.Fatalf("command %d: got %+v, want %+v", i, gotTr.Commands[i], tr.Commands[i])
			}
		}

		var again bytes.Buffer
		if err := Write(&again, h, gotTr); err != nil {
			t.Fatalf("re-archiving a read-back trace failed: %v", err)
		}
		if !bytes.Equal(first, again.Bytes()) {
			t.Fatal("re-archiving a read-back trace changed the bytes")
		}
	})
}
