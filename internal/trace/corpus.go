package trace

// This file implements the golden-trace regression corpus: a directory
// of committed archives — one per recordable scenario — each paired
// with a golden JSON outcome. The corpus runner replays every archive
// through a fresh environment and diffs what it observes (step counts,
// relaxation counts, indexed-vs-walker XPath agreement, the inferred
// grammar fingerprint, campaign findings) against the golden, so any
// behavioral drift anywhere in the recorder/replayer/xpath/campaign
// stack turns into a reviewable diff instead of a silent change.
//
// Layout, under testdata/corpus/:
//
//	edit-site.warr          archive (versioned, gzip body)
//	edit-site.golden.json   expected replay outcome
//	...
//
// Archives are self-describing: the "corpus-campaigns" extra header key
// tells the runner to also execute WebErr navigation/timing campaigns
// over the trace and fold their findings into the outcome.
//
// Determinism note: GMail's generated element ids come from a
// process-global, never-repeating counter (the paper's stale-id
// behavior), so a GMail outcome's relaxed-step count depends on whether
// the replaying process has rendered GMail pages before. VerifyDir and
// UpdateDir replay archives in sorted filename order in which the
// .nondet variant (recorded later, with higher ids) precedes the plain
// one, so the counter can never realign with a recorded id and the
// outcomes are stable. Replaying a single GMail archive in isolation
// (warr-corpus -run) can therefore legitimately report fewer relaxed
// steps than its golden.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/record"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// ArchiveExt and GoldenExt are the corpus file suffixes.
const (
	ArchiveExt = ".warr"
	GoldenExt  = ".golden.json"
)

// campaignsKey is the extra header key marking archives whose outcome
// includes WebErr campaign results.
const campaignsKey = "corpus-campaigns"

// Outcome is everything the corpus runner observes about one archive.
// It is diffed field by field against the committed golden.
type Outcome struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	App      string `json:"app"`
	Format   int    `json:"formatVersion"`

	// ArchiveSHA256 fingerprints the archive file itself, so any byte
	// change to a committed archive — even semantically inert ones —
	// is visible as golden drift.
	ArchiveSHA256 string `json:"archiveSHA256"`

	Commands int    `json:"commands"`
	Comments int    `json:"annotationComments"`
	StartURL string `json:"startURL"`
	Recorded string `json:"recordedDuration"`

	// Replay outcome in a fresh developer-mode environment.
	Played        int      `json:"played"`
	Failed        int      `json:"failed"`
	RelaxedSteps  int      `json:"relaxedSteps"`
	CoordSteps    int      `json:"coordinateSteps"`
	Complete      bool     `json:"complete"`
	FinalURL      string   `json:"finalURL"`
	FinalTitle    string   `json:"finalTitle"`
	ConsoleErrors []string `json:"consoleErrors,omitempty"`

	// Indexed-vs-walker differential: every XPath the replayer resolved
	// is re-evaluated with both engines over every frame.
	XPathChecked int  `json:"xpathChecked"`
	XPathAgree   bool `json:"indexedWalkerAgree"`

	// GrammarRules and GrammarFingerprint pin the task-tree inference:
	// the fingerprint is a truncated SHA-256 of the grammar text.
	GrammarRules       int    `json:"grammarRules"`
	GrammarFingerprint string `json:"grammarFingerprint"`

	// Campaign outcomes, present when the archive's corpus-campaigns
	// header asks for them.
	Navigation *CampaignSummary `json:"navigation,omitempty"`
	Timing     *CampaignSummary `json:"timing,omitempty"`
}

// CampaignSummary pins a WebErr campaign's observable result.
type CampaignSummary struct {
	Generated      int `json:"generated"`
	Replayed       int `json:"replayed"`
	Pruned         int `json:"pruned"`
	ReplayFailures int `json:"replayFailures"`
	Findings       int `json:"findings"`
	// Injections are the findings' injection descriptions, sorted.
	Injections []string `json:"injections,omitempty"`
}

// RunArchive replays the archive at path through a fresh environment
// and returns its outcome.
func RunArchive(path string) (*Outcome, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	tr, err := rd.Trace()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	h := rd.Header()
	sum := sha256.Sum256(data)

	out := &Outcome{
		Name:          strings.TrimSuffix(filepath.Base(path), ArchiveExt),
		Scenario:      h.Scenario,
		App:           h.App,
		Format:        h.Version,
		ArchiveSHA256: hex.EncodeToString(sum[:]),
		Commands:      len(tr.Commands),
		Comments:      rd.Comments(),
		StartURL:      tr.StartURL,
		Recorded:      tr.Duration().String(),
		XPathAgree:    true,
	}

	// Replay in a fresh developer-mode environment, re-checking every
	// resolved XPath with both evaluation engines.
	env := apps.NewEnv(browser.DeveloperMode)
	agreement := replayer.Hooks{
		OnResolve: func(step replayer.Step, tab *browser.Tab) {
			if step.UsedXPath == "" {
				return
			}
			p, err := xpath.Parse(step.UsedXPath)
			if err != nil {
				return // coordinate fallback may report unparseable paths
			}
			out.XPathChecked++
			for _, f := range tab.MainFrame().Descendants() {
				if f.Doc() == nil {
					continue
				}
				indexed := xpath.Evaluate(p, f.Doc().Root())
				walked := xpath.EvaluateWalk(p, f.Doc().Root())
				if len(indexed) != len(walked) {
					out.XPathAgree = false
					return
				}
				for i := range indexed {
					if indexed[i] != walked[i] {
						out.XPathAgree = false
						return
					}
				}
			}
		},
	}
	r := replayer.New(env.Browser, replayer.Options{Hooks: []replayer.Hooks{agreement}})
	res, tab, err := r.Replay(tr)
	if err != nil {
		return nil, fmt.Errorf("%s: replay: %w", filepath.Base(path), err)
	}
	out.Played = res.Played
	out.Failed = res.Failed
	out.Complete = res.Complete()
	for _, s := range res.Steps {
		switch s.Status {
		case replayer.StepRelaxed:
			out.RelaxedSteps++
		case replayer.StepByCoordinates:
			out.CoordSteps++
		}
	}
	if tab != nil {
		out.FinalURL = tab.URL()
		out.FinalTitle = tab.Title()
		for _, e := range tab.ConsoleErrors() {
			out.ConsoleErrors = append(out.ConsoleErrors, e.Message)
		}
	}

	// Task-tree inference fingerprint.
	newEnv := apps.BrowserFactory(browser.DeveloperMode)
	tree, err := weberr.InferTaskTree(newEnv, tr)
	if err != nil {
		return nil, fmt.Errorf("%s: task tree: %w", filepath.Base(path), err)
	}
	g := weberr.FromTaskTree(tree)
	out.GrammarRules = len(g.RuleNames())
	gsum := sha256.Sum256([]byte(g.String()))
	out.GrammarFingerprint = hex.EncodeToString(gsum[:8])

	// Campaigns, when the archive asks for them — run as jobs on the
	// shared engine (one worker, so execution stays sequential and the
	// GMail id-counter determinism note above still holds). The engine's
	// default environments are the same registry-backed worlds newEnv
	// builds, so outcomes are identical to the historical direct calls.
	kinds := strings.Split(h.Extra[campaignsKey], ",")
	hasCampaign := false
	for _, kind := range kinds {
		if strings.TrimSpace(kind) != "" {
			hasCampaign = true
		}
	}
	if hasCampaign {
		engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: len(kinds)})
		defer engine.Close()
		for _, kind := range kinds {
			var spec jobs.Spec
			switch strings.TrimSpace(kind) {
			case "":
				continue
			case "navigation":
				// The grammar is already inferred (fingerprinted above);
				// hand it to the job so inference does not replay again.
				spec = jobs.Spec{Kind: jobs.KindNavigationCampaign, Trace: tr, Grammar: g}
			case "timing":
				spec = jobs.Spec{Kind: jobs.KindTimingCampaign, Trace: tr}
			default:
				return nil, fmt.Errorf("%s: unknown %s kind %q", filepath.Base(path), campaignsKey, kind)
			}
			job, err := engine.Submit(spec)
			if err != nil {
				return nil, fmt.Errorf("%s: %s campaign: %w", filepath.Base(path), strings.TrimSpace(kind), err)
			}
			_ = job.Wait(nil)
			if err := job.Err(); err != nil {
				return nil, fmt.Errorf("%s: %s campaign: %w", filepath.Base(path), strings.TrimSpace(kind), err)
			}
			switch strings.TrimSpace(kind) {
			case "navigation":
				out.Navigation = summarize(job.Report())
			case "timing":
				out.Timing = summarize(job.Report())
			}
		}
	}
	return out, nil
}

func summarize(rep *weberr.Report) *CampaignSummary {
	s := &CampaignSummary{
		Generated:      rep.Generated,
		Replayed:       rep.Replayed,
		Pruned:         rep.Pruned,
		ReplayFailures: rep.ReplayFailures,
		Findings:       len(rep.Findings),
	}
	for _, f := range rep.Findings {
		s.Injections = append(s.Injections, f.Injection.String())
	}
	sort.Strings(s.Injections)
	return s
}

// MarshalOutcome renders an outcome the way goldens are stored:
// two-space indented JSON with a trailing newline.
func MarshalOutcome(out *Outcome) ([]byte, error) { return marshalGolden(out) }

// MarshalImageOutcome renders an image outcome in the same golden
// layout.
func MarshalImageOutcome(out *ImageOutcome) ([]byte, error) { return marshalGolden(out) }

func marshalGolden(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ---- verify / update ----

// Mismatch is one corpus entry whose outcome differs from its golden
// (or whose archive/golden pairing is broken).
type Mismatch struct {
	Name string
	// Diff is a human-readable description: a line diff of the golden
	// JSON, or the error that prevented comparison.
	Diff string
}

// archives lists the corpus archives in dir, sorted by name.
func archives(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+ArchiveExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// goldenPath pairs an archive path with its golden path.
func goldenPath(archive string) string {
	return strings.TrimSuffix(archive, ArchiveExt) + GoldenExt
}

// VerifyDir replays every archive in dir and diffs its outcome against
// the committed golden. It returns one Mismatch per drifted, broken, or
// unpaired entry; an empty slice means the corpus is green.
func VerifyDir(dir string) ([]Mismatch, error) {
	paths, err := archives(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: no %s archives in %s", ArchiveExt, dir)
	}
	var mismatches []Mismatch
	seen := make(map[string]bool)
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ArchiveExt)
		seen[name] = true
		want, err := os.ReadFile(goldenPath(p))
		if err != nil {
			mismatches = append(mismatches, Mismatch{name, fmt.Sprintf("golden missing: %v", err)})
			continue
		}
		out, err := RunArchive(p)
		if err != nil {
			mismatches = append(mismatches, Mismatch{name, fmt.Sprintf("archive failed to run: %v", err)})
			continue
		}
		got, err := MarshalOutcome(out)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, want) {
			mismatches = append(mismatches, Mismatch{name, diffLines(string(want), string(got))})
		}
	}
	// Committed world images verify like archives: decode the committed
	// bytes, resume the restored session, diff against the golden.
	imgs, err := images(dir)
	if err != nil {
		return nil, err
	}
	for _, p := range imgs {
		base := filepath.Base(p) // e.g. edit-site.image
		seen[base] = true
		want, err := os.ReadFile(p + GoldenExt)
		if err != nil {
			mismatches = append(mismatches, Mismatch{base, fmt.Sprintf("golden missing: %v", err)})
			continue
		}
		out, err := RunImage(p)
		if err != nil {
			mismatches = append(mismatches, Mismatch{base, fmt.Sprintf("image failed to run: %v", err)})
			continue
		}
		got, err := MarshalImageOutcome(out)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, want) {
			mismatches = append(mismatches, Mismatch{base, diffLines(string(want), string(got))})
		}
	}
	// Goldens whose archive (or image) is gone are drift too.
	goldens, err := filepath.Glob(filepath.Join(dir, "*"+GoldenExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(goldens)
	for _, g := range goldens {
		name := strings.TrimSuffix(filepath.Base(g), GoldenExt)
		if !seen[name] {
			mismatches = append(mismatches, Mismatch{name, "golden has no matching archive"})
		}
	}
	return mismatches, nil
}

// UpdateDir regenerates the golden for every archive in dir — and
// removes goldens whose archive is gone, so the verify/update cycle
// always converges — reporting which goldens changed.
func UpdateDir(dir string) (changed []string, err error) {
	paths, err := archives(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: no %s archives in %s", ArchiveExt, dir)
	}
	imgs, err := images(dir)
	if err != nil {
		return nil, err
	}
	hasArchive := make(map[string]bool)
	for _, p := range paths {
		hasArchive[strings.TrimSuffix(filepath.Base(p), ArchiveExt)] = true
	}
	for _, p := range imgs {
		hasArchive[filepath.Base(p)] = true
	}
	goldens, err := filepath.Glob(filepath.Join(dir, "*"+GoldenExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(goldens)
	for _, g := range goldens {
		name := strings.TrimSuffix(filepath.Base(g), GoldenExt)
		if hasArchive[name] {
			continue
		}
		if err := os.Remove(g); err != nil {
			return changed, err
		}
		changed = append(changed, name+" (removed: archive gone)")
	}
	for _, p := range paths {
		out, err := RunArchive(p)
		if err != nil {
			return changed, fmt.Errorf("%s: %w", p, err)
		}
		got, err := MarshalOutcome(out)
		if err != nil {
			return changed, err
		}
		old, readErr := os.ReadFile(goldenPath(p))
		if readErr == nil && bytes.Equal(old, got) {
			continue
		}
		if err := os.WriteFile(goldenPath(p), got, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, strings.TrimSuffix(filepath.Base(p), ArchiveExt))
	}
	for _, p := range imgs {
		out, err := RunImage(p)
		if err != nil {
			return changed, fmt.Errorf("%s: %w", p, err)
		}
		got, err := MarshalImageOutcome(out)
		if err != nil {
			return changed, err
		}
		old, readErr := os.ReadFile(p + GoldenExt)
		if readErr == nil && bytes.Equal(old, got) {
			continue
		}
		if err := os.WriteFile(p+GoldenExt, got, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, filepath.Base(p))
	}
	return changed, nil
}

// diffLines renders a minimal line diff of two JSON documents: common
// lines elided, golden lines prefixed "-", observed lines prefixed "+".
func diffLines(want, got string) string {
	wl := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	gl := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	var b strings.Builder
	i, j := 0, 0
	for i < len(wl) || j < len(gl) {
		switch {
		case i < len(wl) && j < len(gl) && wl[i] == gl[j]:
			i++
			j++
		case i < len(wl) && (j >= len(gl) || !contains(gl[j:], wl[i])):
			fmt.Fprintf(&b, "-%s\n", wl[i])
			i++
		case j < len(gl) && (i >= len(wl) || !contains(wl[i:], gl[j])):
			fmt.Fprintf(&b, "+%s\n", gl[j])
			j++
		default:
			// Both lines exist later in the other document; emit the
			// golden side first to resynchronize.
			fmt.Fprintf(&b, "-%s\n", wl[i])
			i++
		}
	}
	return strings.TrimSuffix(b.String(), "\n")
}

func contains(lines []string, s string) bool {
	for _, l := range lines {
		if l == s {
			return true
		}
	}
	return false
}

// ---- recording ----

// Entry is one recordable corpus scenario.
type Entry struct {
	// Name is the archive basename (without extension).
	Name string
	// Nondet marks the nondeterminism-annotated variant.
	Nondet bool
	// Campaigns lists the WebErr campaigns the corpus runner executes
	// for this entry ("navigation", "timing").
	Campaigns []string

	scenario func() (apps.Scenario, error)
}

// Entries returns the full corpus, resolved through the scenario
// registry: every registered scenario (the four Table II workloads plus
// any plugin registration linked into the process, e.g. the calendar
// app's create-event) contributes a campaign-bearing archive and a
// nondeterminism-annotated variant; each Table I search engine
// contributes a plain archive of the parameterized search scenario.
func Entries() []Entry {
	// A typoed Table I query, so replaying the search archives exercises
	// the engines' typo-correction path.
	const typoQuery = "weather forecst"
	var es []Entry
	for _, name := range registry.ScenarioNames() {
		name := name
		sc := func() (apps.Scenario, error) { return registry.LookupScenario(name) }
		es = append(es, Entry{
			Name:      name,
			Campaigns: []string{"navigation", "timing"},
			scenario:  sc,
		})
		es = append(es, Entry{
			Name:     name + ".nondet",
			Nondet:   true,
			scenario: sc,
		})
	}
	for _, eng := range []struct{ name, url string }{
		{"google", apps.GoogleURL},
		{"bing", apps.BingURL},
		{"ysearch", apps.YSearchURL},
	} {
		eng := eng
		es = append(es, Entry{
			Name:     "search-" + eng.name,
			scenario: func() (apps.Scenario, error) { return apps.SearchScenario(eng.url, typoQuery), nil },
		})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
	return es
}

// RecordEntry records the entry's scenario in a fresh user-mode
// environment — on the shared record path, live oracle required — and
// returns its archive bytes. Recording runs entirely on the virtual
// clock, so the bytes are reproducible.
func (e Entry) RecordEntry() ([]byte, error) {
	sc, err := e.scenario()
	if err != nil {
		return nil, fmt.Errorf("trace: corpus entry %s: %w", e.Name, err)
	}
	rec, err := record.Record(sc, record.Options{Nondet: e.Nondet, VerifyLive: true})
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}

	h := Header{Scenario: sc.Name, App: sc.App, Recorder: "warr-corpus"}
	if len(e.Campaigns) > 0 {
		h.Extra = map[string]string{campaignsKey: strings.Join(e.Campaigns, ",")}
	}
	var buf bytes.Buffer
	if e.Nondet {
		if err := WriteText(&buf, h, rec.Annotated()); err != nil {
			return nil, fmt.Errorf("trace: archiving %s: %w", e.Name, err)
		}
	} else {
		if err := Write(&buf, h, rec.Trace); err != nil {
			return nil, fmt.Errorf("trace: archiving %s: %w", e.Name, err)
		}
	}
	return buf.Bytes(), nil
}

// RecordDir records every corpus entry into dir, one archive each, plus
// the pinned world images (captured from the freshly written archives),
// and returns the entry names written.
func RecordDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var names []string
	for _, e := range Entries() {
		data, err := e.RecordEntry()
		if err != nil {
			return names, err
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name+ArchiveExt), data, 0o644); err != nil {
			return names, err
		}
		names = append(names, e.Name)
	}
	for _, name := range imageEntries {
		if err := recordImage(dir, name); err != nil {
			return names, err
		}
		names = append(names, name+ImageExt)
	}
	return names, nil
}
