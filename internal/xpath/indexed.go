package xpath

// This file implements the index-backed evaluation strategy: instead of
// walking the whole tree per step, the evaluator picks the path's most
// selective attribute predicate, jumps to that (name, value) bucket in
// the document's dom.QueryIndex, verifies each bucket member's ancestor
// chain against the path prefix, and only evaluates the (usually empty)
// path suffix by walking. A stale recorded id — the hot case in the WaRR
// Replayer's relaxation loop — resolves in O(1): its bucket is empty.
//
// The strategy is an optimization, not a semantic fork: for every path
// and context it returns exactly what the walking evaluator returns
// (same elements, same document order, same dedup), which the
// differential tests in indexed_test.go assert page by page.

import (
	"sync"

	"github.com/dslab-epfl/warr/internal/dom"
)

// Compiled is a parsed path prepared for repeated evaluation: the
// indexability analysis runs once, and the relaxation sequence the
// replayer walks on mismatch is computed once and cached. Callers that
// evaluate the same expression many times (the replayer, WebErr
// campaigns) should parse once, Compile once, and reuse.
type Compiled struct {
	Path Path

	// anchorable records whether any step carries an attribute-equality
	// predicate the index can answer.
	anchorable bool

	relaxOnce sync.Once
	relax     []Relaxation
}

// Compile analyzes a parsed path for indexed evaluation.
func Compile(p Path) *Compiled {
	c := &Compiled{Path: p}
analysis:
	for _, s := range p.Steps {
		for _, pred := range s.Preds {
			if _, ok := pred.(AttrEq); ok {
				c.anchorable = true
				break analysis
			}
		}
	}
	return c
}

// MustCompile compiles a known-good expression; it panics on parse error.
func MustCompile(expr string) *Compiled { return Compile(MustParse(expr)) }

// Evaluate returns every element matched by the compiled path, identical
// to Evaluate(c.Path, ctx).
func (c *Compiled) Evaluate(ctx *dom.Node) []*dom.Node {
	if ctx == nil || len(c.Path.Steps) == 0 {
		return nil
	}
	if c.anchorable {
		if out, ok := evaluateIndexed(c.Path, ctx); ok {
			return out
		}
	}
	return evaluateWalk(c.Path, ctx)
}

// First returns the first element matched by the compiled path, or nil.
func (c *Compiled) First(ctx *dom.Node) *dom.Node {
	nodes := c.Evaluate(ctx)
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// Relaxations returns the progressive relaxation sequence for the path,
// computed on first use and cached (the replayer retries it on every
// stale step of a trace).
func (c *Compiled) Relaxations() []Relaxation {
	c.relaxOnce.Do(func() { c.relax = Relaxations(c.Path) })
	return c.relax
}

// evaluateIndexed evaluates p against ctx through the tree's QueryIndex.
// ok is false when the strategy does not apply (unindexed tree, no
// attribute predicate) and the caller must fall back to walking.
func evaluateIndexed(p Path, ctx *dom.Node) (nodes []*dom.Node, ok bool) {
	ix := ctx.QueryIndex()
	if ix == nil {
		return nil, false
	}

	// Anchor on the most selective indexed predicate. Ties prefer the
	// latest step, leaving the shortest suffix to evaluate by walking.
	anchor := -1
	var anchorPred AttrEq
	anchorSize := 0
	for i, s := range p.Steps {
		for _, pred := range s.Preds {
			a, isAttr := pred.(AttrEq)
			if !isAttr {
				continue
			}
			size := ix.CountAttr(a.Name, a.Value)
			if anchor < 0 || size <= anchorSize {
				anchor, anchorPred, anchorSize = i, a, size
			}
		}
	}
	if anchor < 0 {
		return nil, false
	}
	// Every full-path match carries the anchor attribute at step `anchor`
	// of its derivation; an empty bucket means no match anywhere.
	if anchorSize == 0 {
		return nil, true
	}

	// The nodes verified against the prefix are exactly the walker's
	// match set after step `anchor` (each carries the anchor attribute,
	// so the walker's set is a subset of the bucket). Match sets are
	// order-independent as sets — each later step unions per-context
	// candidates — so the suffix can be evaluated from the unsorted
	// verified nodes and the result sorted once at the end, the same
	// document-order normalization evaluateWalk applies.
	ver := newVerifier(p.Steps[:anchor+1], ctx)
	var current []*dom.Node
	for _, n := range ix.NodesByAttr(anchorPred.Name, anchorPred.Value) {
		if ver.reachable(anchor, n) {
			current = append(current, n)
		}
	}
	for _, step := range p.Steps[anchor+1:] {
		if len(current) == 0 {
			return nil, true
		}
		current = applyStep(step, current)
	}
	if len(current) == 0 {
		return nil, true
	}
	sortDocOrder(current)
	return current, true
}

// verifier checks candidates against a fixed (step prefix, context)
// pair. Results are memoized per (step index, node): the per-step
// ancestor scans of a refutation would otherwise multiply into an
// exponential walk on deep documents with several descendant-axis steps,
// and the same ancestors recur across candidates sharing a subtree.
// Memoization only pays — and only guards against blow-up — when the
// prefix has at least two descendant-axis steps (one deep step scans
// each ancestor chain once, linearly); the overwhelmingly common
// recorded shapes (//div/span[@id=...]) verify without allocating.
type verifier struct {
	steps   []Step
	ctx     *dom.Node
	useMemo bool
	memo    map[verKey]bool
}

func newVerifier(steps []Step, ctx *dom.Node) *verifier {
	deep := 0
	for _, s := range steps {
		if s.Deep {
			deep++
		}
	}
	return &verifier{steps: steps, ctx: ctx, useMemo: deep >= 2}
}

type verKey struct {
	k int
	n *dom.Node
}

// reachable reports whether n is a match of steps[:k+1] evaluated from
// ctx — i.e. n satisfies step k and some ancestor chain of n satisfies
// the steps before it. This is the upward verification that replaces
// walking the tree down from ctx.
func (v *verifier) reachable(k int, n *dom.Node) bool {
	if !v.useMemo {
		return v.compute(k, n)
	}
	key := verKey{k, n}
	if r, ok := v.memo[key]; ok {
		return r
	}
	r := v.compute(k, n)
	if v.memo == nil {
		v.memo = make(map[verKey]bool)
	}
	v.memo[key] = r
	return r
}

func (v *verifier) compute(k int, n *dom.Node) bool {
	s := v.steps[k]
	if !elementMatchesTag(n, s.Tag) || !matchesPreds(s, n) {
		return false
	}
	if k == 0 {
		if s.Deep {
			return n != v.ctx && v.ctx.Contains(n)
		}
		return n.Parent() == v.ctx
	}
	if s.Deep {
		// ctx itself is never a step match, so stop the ancestor scan
		// there; above it nothing can satisfy the base case either.
		for a := n.Parent(); a != nil && a != v.ctx; a = a.Parent() {
			if v.reachable(k-1, a) {
				return true
			}
		}
		return false
	}
	p := n.Parent()
	if p == nil || p == v.ctx {
		return false
	}
	return v.reachable(k-1, p)
}
