// Package xpath implements the XPath subset WaRR uses to identify HTML
// elements (paper §IV-B): location paths with child (/) and descendant
// (//) axes, element name or wildcard tests, and predicates on attributes
// (`[@id="content"]`), text (`[text()="Save"]`), and position (`[2]`).
//
// The package also provides the inverse operation — generating an XPath
// expression for a given element (used by the WaRR Recorder) — and the
// progressive relaxation transformations the WaRR Replayer applies when a
// recorded expression no longer matches (paper §IV-C).
package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Pred is a step predicate.
type Pred interface {
	fmt.Stringer
	predNode()
}

// AttrEq matches elements whose attribute Name equals Value
// (`[@id="content"]`).
type AttrEq struct {
	Name  string
	Value string
}

func (p AttrEq) predNode() {}

func (p AttrEq) String() string { return fmt.Sprintf(`[@%s=%s]`, p.Name, quote(p.Value)) }

// quote renders a string literal in XPath syntax. XPath 1.0 has no escape
// sequences, so a value containing both quote characters cannot be
// represented exactly; the double quotes are replaced with single ones in
// that (pathological) case. Generate never emits such values — it falls
// back to positional predicates instead (see representable) — so the
// lossy rewrite only applies to hand-built paths.
func quote(v string) string {
	if !strings.Contains(v, `"`) {
		return `"` + v + `"`
	}
	if !strings.Contains(v, "'") {
		return "'" + v + "'"
	}
	return `"` + strings.ReplaceAll(v, `"`, "'") + `"`
}

// TextEq matches elements whose text content equals Value
// (`[text()="Save"]`).
type TextEq struct {
	Value string
}

func (p TextEq) predNode() {}

func (p TextEq) String() string { return fmt.Sprintf(`[text()=%s]`, quote(p.Value)) }

// Position matches the N'th element (1-based) among same-tag siblings
// (`[2]`).
type Position struct {
	N int
}

func (p Position) predNode() {}

func (p Position) String() string { return fmt.Sprintf("[%d]", p.N) }

// Step is one location step: an axis (child or descendant), a node test
// (tag name or "*"), and zero or more predicates.
type Step struct {
	// Deep selects the descendant axis (the step was preceded by "//");
	// otherwise the child axis.
	Deep  bool
	Tag   string // lowercase tag name, or "*"
	Preds []Pred
}

func (s Step) String() string {
	var b strings.Builder
	if s.Deep {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(s.Tag)
	for _, p := range s.Preds {
		b.WriteString(p.String())
	}
	return b.String()
}

// Path is a parsed XPath expression: a sequence of steps evaluated left to
// right.
type Path struct {
	Steps []Step
}

// String renders the path in the same syntax Parse accepts, so that
// Parse(p.String()) round-trips.
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(s.String())
	}
	return b.String()
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	out := Path{Steps: make([]Step, len(p.Steps))}
	for i, s := range p.Steps {
		cs := Step{Deep: s.Deep, Tag: s.Tag}
		cs.Preds = append([]Pred(nil), s.Preds...)
		out.Steps[i] = cs
	}
	return out
}

// Parse parses an XPath expression in the supported subset.
func Parse(expr string) (Path, error) {
	p := &parser{src: expr}
	path, err := p.parse()
	if err != nil {
		return Path{}, fmt.Errorf("xpath: parsing %q: %w", expr, err)
	}
	return path, nil
}

// MustParse is Parse for known-good expressions (tests, examples); it
// panics on error.
func MustParse(expr string) Path {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) parse() (Path, error) {
	var path Path
	if p.src == "" {
		return path, fmt.Errorf("empty expression")
	}
	for p.pos < len(p.src) {
		step, err := p.step()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
	}
	if len(path.Steps) == 0 {
		return path, fmt.Errorf("no steps")
	}
	return path, nil
}

func (p *parser) step() (Step, error) {
	var s Step
	switch {
	case strings.HasPrefix(p.src[p.pos:], "//"):
		s.Deep = true
		p.pos += 2
	case strings.HasPrefix(p.src[p.pos:], "/"):
		p.pos++
	default:
		return s, fmt.Errorf("expected '/' or '//' at offset %d", p.pos)
	}
	tag := p.name()
	if tag == "" {
		return s, fmt.Errorf("expected element name at offset %d", p.pos)
	}
	s.Tag = strings.ToLower(tag)
	for p.pos < len(p.src) && p.src[p.pos] == '[' {
		pred, err := p.predicate()
		if err != nil {
			return s, err
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

func (p *parser) name() string {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		return "*"
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) predicate() (Pred, error) {
	p.pos++ // consume '['
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unterminated predicate")
	}
	switch c := p.src[p.pos]; {
	case c == '@':
		p.pos++
		name := p.name()
		if name == "" {
			return nil, fmt.Errorf("expected attribute name at offset %d", p.pos)
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return AttrEq{Name: strings.ToLower(name), Value: v}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad position %q", p.src[start:p.pos])
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return Position{N: n}, nil
	case strings.HasPrefix(p.src[p.pos:], "text()"):
		p.pos += len("text()")
		if err := p.expect('='); err != nil {
			return nil, err
		}
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return TextEq{Value: v}, nil
	default:
		return nil, fmt.Errorf("unsupported predicate at offset %d", p.pos)
	}
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) quoted() (string, error) {
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("expected quoted string at end of input")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected quote at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string literal")
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}
