package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/htmlparse"
)

func TestParsePaperExpressions(t *testing.T) {
	// Every expression that appears in the paper must parse and
	// round-trip through String.
	exprs := []string{
		`//div/span[@id="start"]`,
		`//td/div[@id="content"]`,
		`//td/div[text()="Save"]`,
		`//div[@id="id1"]`,
		`//td/div[@id="id1"]`,
	}
	for _, e := range exprs {
		p, err := Parse(e)
		if err != nil {
			t.Errorf("Parse(%q): %v", e, err)
			continue
		}
		if got := p.String(); got != e {
			t.Errorf("round-trip %q = %q", e, got)
		}
	}
}

func TestParseStructure(t *testing.T) {
	p := MustParse(`//td/div[@id="content"][2]`)
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(p.Steps))
	}
	if !p.Steps[0].Deep || p.Steps[0].Tag != "td" {
		t.Errorf("step0 = %+v", p.Steps[0])
	}
	if p.Steps[1].Deep {
		t.Error("step1 should be child axis")
	}
	if len(p.Steps[1].Preds) != 2 {
		t.Fatalf("preds = %d, want 2", len(p.Steps[1].Preds))
	}
	if a, ok := p.Steps[1].Preds[0].(AttrEq); !ok || a.Name != "id" || a.Value != "content" {
		t.Errorf("pred0 = %+v", p.Steps[1].Preds[0])
	}
	if pos, ok := p.Steps[1].Preds[1].(Position); !ok || pos.N != 2 {
		t.Errorf("pred1 = %+v", p.Steps[1].Preds[1])
	}
}

func TestParseWildcardAndSingleQuotes(t *testing.T) {
	p := MustParse(`//*[@class='x']`)
	if p.Steps[0].Tag != "*" {
		t.Errorf("tag = %q", p.Steps[0].Tag)
	}
	if a := p.Steps[0].Preds[0].(AttrEq); a.Value != "x" {
		t.Errorf("value = %q", a.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "div", "//", "//div[", "//div[@]", `//div[@id=]`,
		`//div[@id="unterminated]`, "//div[0]", "//div[x]",
		`//div[text()]`, "/", `//div[@id="a"`,
	}
	for _, e := range bad {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", e)
		}
	}
}

func testDoc(t *testing.T) *dom.Document {
	t.Helper()
	return htmlparse.Parse(`
<html><body>
  <div id="outer">
    <span id="start">go</span>
    <span>other</span>
  </div>
  <table><tr>
    <td><div id="content">cell one</div></td>
    <td><div>Save</div></td>
  </tr></table>
  <form>
    <input type="text" name="q" id="gen-1234">
    <input type="submit" name="btn">
  </form>
  <ul><li>a</li><li>b</li><li>c</li></ul>
</body></html>`, "u")
}

func TestEvaluateDeep(t *testing.T) {
	d := testDoc(t)
	got := Evaluate(MustParse(`//span`), d.Root())
	if len(got) != 2 {
		t.Fatalf("spans = %d, want 2", len(got))
	}
}

func TestEvaluateAttrPredicate(t *testing.T) {
	d := testDoc(t)
	n := First(MustParse(`//td/div[@id="content"]`), d.Root())
	if n == nil || n.TextContent() != "cell one" {
		t.Fatal("attr predicate failed")
	}
}

func TestEvaluateTextPredicate(t *testing.T) {
	d := testDoc(t)
	n := First(MustParse(`//td/div[text()="Save"]`), d.Root())
	if n == nil {
		t.Fatal("text predicate failed")
	}
	if n.ID() != "" {
		t.Fatal("matched wrong div")
	}
}

func TestEvaluatePosition(t *testing.T) {
	d := testDoc(t)
	n := First(MustParse(`//ul/li[2]`), d.Root())
	if n == nil || n.TextContent() != "b" {
		t.Fatalf("positional predicate failed: %v", n)
	}
}

func TestEvaluateChildAxis(t *testing.T) {
	d := testDoc(t)
	// /html/body/div selects only the direct div child.
	got := Evaluate(MustParse(`/html/body/div`), d.Root())
	if len(got) != 1 || got[0].ID() != "outer" {
		t.Fatalf("child axis = %v", got)
	}
}

func TestEvaluateWildcard(t *testing.T) {
	d := testDoc(t)
	got := Evaluate(MustParse(`//form/*`), d.Root())
	if len(got) != 2 {
		t.Fatalf("form children = %d, want 2", len(got))
	}
}

func TestEvaluateNoMatch(t *testing.T) {
	d := testDoc(t)
	if got := Evaluate(MustParse(`//video`), d.Root()); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
	if First(MustParse(`//video`), d.Root()) != nil {
		t.Fatal("First should be nil")
	}
}

func TestEvaluateNilContext(t *testing.T) {
	if got := Evaluate(MustParse(`//div`), nil); got != nil {
		t.Fatal("nil context should yield nil")
	}
}

func TestEvaluateNoDuplicates(t *testing.T) {
	// //div//span with nested divs must not return duplicates.
	d := htmlparse.Parse(`<div><div><span id="s">x</span></div></div>`, "u")
	got := Evaluate(MustParse(`//div//span`), d.Root())
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1 (duplicates?)", len(got))
	}
}

func TestMatches(t *testing.T) {
	d := testDoc(t)
	n := d.GetElementByID("content")
	if !Matches(MustParse(`//td/div[@id="content"]`), d.Root(), n) {
		t.Fatal("Matches = false, want true")
	}
	if Matches(MustParse(`//span`), d.Root(), n) {
		t.Fatal("Matches = true for non-matching path")
	}
}

func TestGenerateWithID(t *testing.T) {
	d := testDoc(t)
	n := d.GetElementByID("content")
	p := Generate(n)
	if got := p.String(); got != `//td/div[@id="content"]` {
		t.Fatalf("Generate = %q", got)
	}
	if First(p, d.Root()) != n {
		t.Fatal("generated path does not resolve to the element")
	}
}

func TestGenerateWithName(t *testing.T) {
	d := testDoc(t)
	// The submit input has a name but the text input has an id; remove the
	// id to force name-based generation.
	n := First(MustParse(`//input[@name="btn"]`), d.Root())
	p := Generate(n)
	if !strings.Contains(p.String(), `@name="btn"`) {
		t.Fatalf("Generate = %q, want name anchor", p.String())
	}
	if First(p, d.Root()) != n {
		t.Fatal("generated path does not resolve")
	}
}

func TestGenerateWithText(t *testing.T) {
	d := testDoc(t)
	n := First(MustParse(`//td/div[text()="Save"]`), d.Root())
	p := Generate(n)
	if got := p.String(); got != `//td/div[text()="Save"]` {
		t.Fatalf("Generate = %q", got)
	}
}

func TestGenerateFallbackPositional(t *testing.T) {
	// Identical text in both <p> elements rules out a text anchor, forcing
	// the ancestor-id + positional fallback.
	d := htmlparse.Parse(`<div id="anchor"><p>x</p><p>x</p></div>`, "u")
	second := d.Root().ElementsByTag("p")[1]
	p := Generate(second)
	if First(p, d.Root()) != second {
		t.Fatalf("generated %q does not resolve to the 2nd p", p.String())
	}
	if !strings.Contains(p.String(), "anchor") {
		t.Fatalf("expected ancestor anchor in %q", p.String())
	}
}

func TestGenerateAbsoluteFallback(t *testing.T) {
	d := htmlparse.Parse(`<div><p>one</p><p>two</p></div>`, "u")
	second := d.Root().ElementsByTag("p")[1]
	p := Generate(second)
	if First(p, d.Root()) != second {
		t.Fatalf("generated %q does not resolve", p.String())
	}
}

func TestGenerateAmbiguousIDFallsBack(t *testing.T) {
	// Duplicate ids: the id anchor is not first-match-unique for the
	// second one, so generation must find something stronger.
	d := htmlparse.Parse(`<div><span id="dup">a</span></div><p><span id="dup">b</span></p>`, "u")
	spans := d.Root().FindAll(func(n *dom.Node) bool { return n.Tag == "span" })
	second := spans[1]
	p := Generate(second)
	if First(p, d.Root()) != second {
		t.Fatalf("generated %q resolves to the wrong element", p.String())
	}
}

func TestGenerateNonElement(t *testing.T) {
	if got := Generate(dom.NewText("x")); len(got.Steps) != 0 {
		t.Fatal("Generate on text node should be empty")
	}
	if got := Generate(nil); len(got.Steps) != 0 {
		t.Fatal("Generate on nil should be empty")
	}
}

func TestRelaxationsOrderAndContent(t *testing.T) {
	p := MustParse(`//td/div[@id="id1"]`)
	rs := Relaxations(p)
	if len(rs) == 0 {
		t.Fatal("no relaxations")
	}
	// The paper's example: //td/div[@id="id1"] → //div[@id="id1"].
	if rs[0].Path.String() != `//div[@id="id1"]` || rs[0].Heuristic != "drop-prefix" {
		t.Fatalf("first relaxation = %q (%s)", rs[0].Path.String(), rs[0].Heuristic)
	}
	// The weakest candidate in the sequence must be the bare tag; its
	// heuristic label may differ when an earlier heuristic already
	// degenerated to the same expression (deduplication keeps the first).
	last := rs[len(rs)-1]
	if last.Path.String() != `//div` {
		t.Fatalf("last relaxation = %q (%s)", last.Path.String(), last.Heuristic)
	}
}

func TestRelaxationsNoDuplicates(t *testing.T) {
	p := MustParse(`//table/tr/td[@id="x"][2]`)
	rs := Relaxations(p)
	seen := map[string]bool{p.String(): true}
	for _, r := range rs {
		key := r.Path.String()
		if seen[key] {
			t.Fatalf("duplicate relaxation %q", key)
		}
		seen[key] = true
	}
}

func TestRelaxationFindsRenamedID(t *testing.T) {
	// Record-time page gave the input id="gen-1234"; replay-time page
	// regenerated it as id="gen-9999" but kept name="q" — the GMail
	// scenario from the paper.
	replayDoc := htmlparse.Parse(`<form><input type="text" name="q" id="gen-9999"></form>`, "u")
	recorded := MustParse(`//form/input[@id="gen-1234"][@name="q"]`)
	if First(recorded, replayDoc.Root()) != nil {
		t.Fatal("recorded path should fail on the new page")
	}
	var found *dom.Node
	var used string
	for _, r := range Relaxations(recorded) {
		if n := First(r.Path, replayDoc.Root()); n != nil {
			found, used = n, r.Heuristic
			break
		}
	}
	if found == nil {
		t.Fatal("relaxation did not find the renamed element")
	}
	if v, _ := found.Attr("name"); v != "q" {
		t.Fatalf("found wrong element: %s", found.OuterHTML())
	}
	if !strings.Contains(used, "name") {
		t.Fatalf("expected a name-preserving heuristic, used %q", used)
	}
}

func TestKeepOnlyAttrKeepsPositions(t *testing.T) {
	p := MustParse(`//div[@id="a"][2]`)
	out := keepOnlyAttr(p, "name")
	if got := out.String(); got != `//div[2]` {
		t.Fatalf("keepOnlyAttr = %q", got)
	}
}

func TestQuoteEdgeCases(t *testing.T) {
	cases := map[string]string{
		`plain`:     `"plain"`,
		`has"quote`: `'has"quote'`,
		`both"and'`: `"both'and'"`,
	}
	for in, want := range cases {
		if got := quote(in); got != want {
			t.Errorf("quote(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Parse(p.String()) round-trips for generated paths.
func TestStringParseRoundTrip(t *testing.T) {
	tags := []string{"div", "span", "td", "input", "a"}
	f := func(deep []bool, tagIdx []uint8, ids []string) bool {
		if len(deep) == 0 || len(tagIdx) == 0 {
			return true
		}
		var p Path
		for i, dp := range deep {
			s := Step{Deep: dp || i == 0, Tag: tags[int(tagIdx[i%len(tagIdx)])%len(tags)]}
			if i < len(ids) && ids[i] != "" && !strings.ContainsAny(ids[i], `"'[]@/=`) {
				s.Preds = []Pred{AttrEq{Name: "id", Value: ids[i]}}
			}
			p.Steps = append(p.Steps, s)
		}
		p.Steps[0].Deep = true
		got, err := Parse(p.String())
		if err != nil {
			return false
		}
		return got.String() == p.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Property: Generate always resolves (First returns the element) on any
// tree built from nested generic elements.
func TestGenerateAlwaysResolvesProperty(t *testing.T) {
	tags := []string{"div", "span", "td", "p", "li"}
	f := func(shape []uint8) bool {
		root := dom.NewElement("body")
		nodes := []*dom.Node{root}
		for i, b := range shape {
			parent := nodes[int(b)%len(nodes)]
			el := dom.NewElement(tags[i%len(tags)])
			parent.AppendChild(el)
			nodes = append(nodes, el)
		}
		for _, n := range nodes[1:] {
			p := Generate(n)
			if First(p, root) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
