package xpath

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/htmlparse"
)

// assertSameNodes fails unless indexed and walker evaluation agree
// exactly — same elements, same document order — for p under root.
func assertSameNodes(t *testing.T, p Path, root *dom.Node) {
	t.Helper()
	got := Evaluate(p, root)
	want := EvaluateWalk(p, root)
	if len(got) != len(want) {
		t.Fatalf("%s: indexed returned %d nodes, walker %d", p, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs: indexed %s, walker %s",
				p, i, got[i].Path(), want[i].Path())
		}
	}
}

// TestIndexedDifferentialDemoPages loads every demo application's start
// page and checks, for each element, that the generated expression and
// all of its relaxations evaluate identically through the index and
// through the walker.
func TestIndexedDifferentialDemoPages(t *testing.T) {
	urls := []string{
		apps.SitesURL, apps.GMailURL, apps.YahooURL, apps.DocsURL,
		apps.GoogleURL, apps.BingURL, apps.YSearchURL,
	}
	env := apps.NewEnv(browser.DeveloperMode)
	for _, url := range urls {
		tab := env.Browser.NewTab()
		if err := tab.Navigate(url); err != nil {
			t.Fatalf("navigate %s: %v", url, err)
		}
		for _, f := range tab.MainFrame().Descendants() {
			root := f.Doc().Root()
			if root.QueryIndex() == nil {
				t.Fatalf("%s: frame document is not indexed", url)
			}
			elements := root.FindAll(func(n *dom.Node) bool {
				return n.Type == dom.ElementNode
			})
			for _, el := range elements {
				p := Generate(el)
				if len(p.Steps) == 0 {
					continue
				}
				assertSameNodes(t, p, root)
				for _, relax := range Relaxations(p) {
					assertSameNodes(t, relax.Path, root)
				}
			}
		}
	}
}

// TestIndexedDifferentialUnderMutation regenerates ids on a loaded page —
// the GMail behaviour that drives relaxation — and re-checks equivalence,
// exercising the incrementally maintained tables rather than the freshly
// built ones.
func TestIndexedDifferentialUnderMutation(t *testing.T) {
	env := apps.NewEnv(browser.DeveloperMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.GMailURL); err != nil {
		t.Fatal(err)
	}
	root := tab.MainFrame().Doc().Root()

	// Record paths before mutating, as the recorder would.
	var recorded []Path
	for _, el := range root.FindAll(func(n *dom.Node) bool { return n.Type == dom.ElementNode }) {
		if p := Generate(el); len(p.Steps) > 0 {
			recorded = append(recorded, p)
		}
	}

	// Regenerate every id, move a subtree, and edit text.
	i := 0
	for _, el := range root.FindAll(func(n *dom.Node) bool { return n.ID() != "" }) {
		el.SetAttr("id", fmt.Sprintf(":%d", 9000+i))
		i++
	}
	body := tab.MainFrame().Doc().Body()
	if first := body.FirstChild(); first != nil {
		first.Detach()
		body.AppendChild(first)
	}
	body.AppendChild(dom.NewText("appended"))

	for _, p := range recorded {
		assertSameNodes(t, p, root)
		for _, relax := range Relaxations(p) {
			assertSameNodes(t, relax.Path, root)
		}
	}
}

// TestEvaluateDocumentOrderWithNesting pins the document-order guarantee
// in the case where naive per-context stepping would interleave: nested
// same-tag containers whose children all match the final step.
func TestEvaluateDocumentOrderWithNesting(t *testing.T) {
	doc := htmlparse.Parse(`
<div class="w"><span class="s">A</span>
  <div class="w"><span class="s">B</span></div>
  <span class="s">C</span>
</div>`, "http://test/")
	root := doc.Root()

	for _, expr := range []string{`//div/span`, `//div/span[@class="s"]`} {
		p := MustParse(expr)
		assertSameNodes(t, p, root)
		var texts []string
		for _, n := range Evaluate(p, root) {
			texts = append(texts, n.TextContent())
		}
		if got := fmt.Sprint(texts); got != "[A B C]" {
			t.Errorf("%s: results out of document order: %s", expr, got)
		}
	}
}

// TestIndexedEmptyBucketShortCircuits verifies the hot case the replayer
// leans on: a stale id resolves to "no match" without walking the tree.
func TestIndexedEmptyBucketShortCircuits(t *testing.T) {
	doc := htmlparse.Parse(`<div id="live"><span name="n">x</span></div>`, "http://test/")
	root := doc.Root()
	p := MustParse(`//div[@id="stale"]/span`)
	if got := Evaluate(p, root); got != nil {
		t.Fatalf("stale id matched %d nodes", len(got))
	}
	assertSameNodes(t, p, root)
}

// TestIndexedDeepNestingRefutationIsFast is the regression for the
// exponential prefix refutation: on a deep chain of same-tag containers,
// a multi-descendant-step expression whose prefix can never match must
// be refuted in polynomial time (pre-memoization this query ran for
// minutes; the walker refutes it in microseconds).
func TestIndexedDeepNestingRefutationIsFast(t *testing.T) {
	d := dom.NewDocument("http://test/")
	cur := d.Body()
	for i := 0; i < 120; i++ {
		div := dom.NewElement("div")
		cur.AppendChild(div)
		cur = div
	}
	cur.AppendChild(dom.NewElement("span", "id", "x"))
	root := d.Root()

	p := MustParse(`//p//div//div//div//div//div//div//span[@id="x"]`)
	done := make(chan []*dom.Node, 1)
	go func() { done <- Evaluate(p, root) }()
	select {
	case got := <-done:
		if got != nil {
			t.Fatalf("impossible prefix matched %d nodes", len(got))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("indexed refutation did not finish within 10s")
	}
	assertSameNodes(t, p, root)

	// The matching variant must also agree with the walker.
	q := MustParse(`//div//div//div//span[@id="x"]`)
	assertSameNodes(t, q, root)
}

// TestCompiledMatchesEvaluate checks the compiled evaluator against the
// package-level one, and that its relaxation sequence matches the
// uncached computation.
func TestCompiledMatchesEvaluate(t *testing.T) {
	doc := htmlparse.Parse(`
<table><tbody><tr>
  <td><div id="content" name="body">Save</div></td>
  <td><div name="body">Other</div></td>
</tr></tbody></table>`, "http://test/")
	root := doc.Root()

	for _, expr := range []string{
		`//td/div[@id="content"]`,
		`//td/div[@name="body"]`,
		`//div[text()="Save"]`, // no attr predicate: walker path
		`//td/div[@id="gone"]`,
	} {
		c := MustCompile(expr)
		got := c.Evaluate(root)
		want := Evaluate(MustParse(expr), root)
		if len(got) != len(want) {
			t.Fatalf("%s: compiled %d nodes, plain %d", expr, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: compiled result %d differs", expr, i)
			}
		}
		if c.First(root) != First(MustParse(expr), root) {
			t.Errorf("%s: First differs", expr)
		}

		relaxed := c.Relaxations()
		plain := Relaxations(c.Path)
		if len(relaxed) != len(plain) {
			t.Fatalf("%s: compiled %d relaxations, plain %d", expr, len(relaxed), len(plain))
		}
		for i := range relaxed {
			if relaxed[i].Path.String() != plain[i].Path.String() ||
				relaxed[i].Heuristic != plain[i].Heuristic {
				t.Errorf("%s: relaxation %d differs", expr, i)
			}
		}
	}
}

// TestGenerateBothQuotesRoundTrips is the regression for the quote()
// lossiness: a value containing both quote characters cannot be written
// as an XPath literal, so Generate must fall back to a positional form
// that still round-trips through String and Parse to the same element.
func TestGenerateBothQuotesRoundTrips(t *testing.T) {
	doc := htmlparse.Parse(`<div><p>first</p><p>second</p></div>`, "http://test/")
	root := doc.Root()
	target := root.FindAll(func(n *dom.Node) bool { return n.Tag == "p" })[1]
	target.SetAttr("id", `it's "quoted"`)
	target.SetAttr("name", `both " and '`)

	p := Generate(target)
	if len(p.Steps) == 0 {
		t.Fatal("Generate returned an empty path")
	}
	reparsed, err := Parse(p.String())
	if err != nil {
		t.Fatalf("generated path %q does not re-parse: %v", p.String(), err)
	}
	if got := First(reparsed, root); got != target {
		t.Fatalf("round-tripped path %q resolves %v, want the generated element", p.String(), got)
	}
	// The unrepresentable values must not appear mangled in the output:
	// quote() rewrites `"` to `'` when both quotes occur, so a mangled
	// literal would carry the values with double quotes replaced.
	s := p.String()
	if strings.Contains(s, "it's 'quoted'") || strings.Contains(s, "both ' and '") {
		t.Errorf("generated path %q leaks an unrepresentable literal", s)
	}
}
