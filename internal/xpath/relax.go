package xpath

// This file implements the WaRR Replayer's progressive XPath relaxation
// (paper §IV-C): when a recorded expression no longer matches — e.g. GMail
// regenerates element ids on every load — the replayer "progressively
// simplifies the expression to find a matching element", guided by
// heuristics that (1) remove attributes such as id, (2) maintain only
// certain attributes such as name, and (3) discard a prefix of the
// expression (//td/div[@id="id1"] → //div[@id="id1"]).

// Relaxation is one relaxed variant of an expression, with a description
// of the heuristic that produced it (surfaced in replay logs and tests).
type Relaxation struct {
	Path      Path
	Heuristic string
}

// Relaxations returns the ordered sequence of progressively weaker
// expressions the replayer should try after the original fails: most
// specific first, tag-only last. The original path itself is not included.
func Relaxations(p Path) []Relaxation {
	var out []Relaxation
	seen := map[string]bool{p.String(): true}
	add := func(r Relaxation) {
		key := r.Path.String()
		if len(r.Path.Steps) == 0 || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, r)
	}

	// Heuristic 1: discard prefixes of the expression, longest first
	// (//td/div[...] → //div[...]).
	for i := 1; i < len(p.Steps); i++ {
		add(Relaxation{Path: dropPrefix(p, i), Heuristic: "drop-prefix"})
	}

	// Heuristic 2: keep only name attributes (drop ids and text, which
	// dynamic applications regenerate).
	add(Relaxation{Path: keepOnlyAttr(p, "name"), Heuristic: "keep-only-name"})
	add(Relaxation{Path: dropPrefix(keepOnlyAttr(p, "name"), len(p.Steps)-1), Heuristic: "keep-only-name+drop-prefix"})

	// Heuristic 3: remove attribute predicates entirely, keeping text and
	// positions.
	add(Relaxation{Path: removeAttrPreds(p), Heuristic: "remove-attributes"})
	add(Relaxation{Path: dropPrefix(removeAttrPreds(p), len(p.Steps)-1), Heuristic: "remove-attributes+drop-prefix"})

	// Last resort: the bare tag of the final step anywhere in the page.
	last := p.Steps[len(p.Steps)-1]
	add(Relaxation{
		Path:      Path{Steps: []Step{{Deep: true, Tag: last.Tag}}},
		Heuristic: "tag-only",
	})
	return out
}

// dropPrefix removes the first n steps, forcing the new first step onto
// the descendant axis so it can match anywhere.
func dropPrefix(p Path, n int) Path {
	if n <= 0 || n >= len(p.Steps) {
		n = len(p.Steps) - 1
	}
	if n < 0 {
		return p.Clone()
	}
	out := p.Clone()
	out.Steps = out.Steps[n:]
	out.Steps[0].Deep = true
	return out
}

// keepOnlyAttr keeps only AttrEq predicates with the given name (plus
// positional predicates); all other predicates are dropped.
func keepOnlyAttr(p Path, name string) Path {
	out := p.Clone()
	for i := range out.Steps {
		var kept []Pred
		for _, pred := range out.Steps[i].Preds {
			switch q := pred.(type) {
			case AttrEq:
				if q.Name == name {
					kept = append(kept, q)
				}
			case Position:
				kept = append(kept, q)
			}
		}
		out.Steps[i].Preds = kept
	}
	return out
}

// removeAttrPreds drops all attribute predicates, keeping text and
// position predicates.
func removeAttrPreds(p Path) Path {
	out := p.Clone()
	for i := range out.Steps {
		var kept []Pred
		for _, pred := range out.Steps[i].Preds {
			if _, isAttr := pred.(AttrEq); !isAttr {
				kept = append(kept, pred)
			}
		}
		out.Steps[i].Preds = kept
	}
	return out
}
