package xpath

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
)

// Evaluate returns every element under ctx (typically a #document node)
// matched by the path, in document order and without duplicates.
func Evaluate(p Path, ctx *dom.Node) []*dom.Node {
	if ctx == nil || len(p.Steps) == 0 {
		return nil
	}
	current := []*dom.Node{ctx}
	for _, step := range p.Steps {
		current = applyStep(step, current)
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// First returns the first element matched by the path, or nil.
func First(p Path, ctx *dom.Node) *dom.Node {
	nodes := Evaluate(p, ctx)
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// Matches reports whether the path selects n when evaluated against root.
func Matches(p Path, root, n *dom.Node) bool {
	for _, m := range Evaluate(p, root) {
		if m == n {
			return true
		}
	}
	return false
}

func applyStep(step Step, ctx []*dom.Node) []*dom.Node {
	var out []*dom.Node
	seen := make(map[*dom.Node]bool)
	for _, c := range ctx {
		for _, cand := range candidates(step, c) {
			if !matchesPreds(step, cand) {
				continue
			}
			if !seen[cand] {
				seen[cand] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

func candidates(step Step, ctx *dom.Node) []*dom.Node {
	var out []*dom.Node
	if step.Deep {
		ctx.Walk(func(n *dom.Node) bool {
			if n != ctx && elementMatchesTag(n, step.Tag) {
				out = append(out, n)
			}
			return true
		})
		return out
	}
	for _, c := range ctx.Children() {
		if elementMatchesTag(c, step.Tag) {
			out = append(out, c)
		}
	}
	return out
}

func elementMatchesTag(n *dom.Node, tag string) bool {
	if n.Type != dom.ElementNode {
		return false
	}
	return tag == "*" || n.Tag == tag
}

func matchesPreds(step Step, n *dom.Node) bool {
	for _, pred := range step.Preds {
		switch p := pred.(type) {
		case AttrEq:
			v, ok := n.Attr(p.Name)
			if !ok || v != p.Value {
				return false
			}
		case TextEq:
			if strings.TrimSpace(n.TextContent()) != p.Value {
				return false
			}
		case Position:
			if n.ElementIndex() != p.N {
				return false
			}
		default:
			return false
		}
	}
	return true
}
