package xpath

import (
	"sort"
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
)

// Evaluate returns every element under ctx (typically a #document node)
// matched by the path, in document order and without duplicates. When the
// context belongs to an indexed tree (dom.QueryIndex) and the path has an
// indexable predicate, evaluation anchors on the most selective index
// bucket instead of walking the tree; results are identical either way.
func Evaluate(p Path, ctx *dom.Node) []*dom.Node {
	if ctx == nil || len(p.Steps) == 0 {
		return nil
	}
	if out, ok := evaluateIndexed(p, ctx); ok {
		return out
	}
	return evaluateWalk(p, ctx)
}

// EvaluateWalk is the reference tree-walking evaluator: every step scans
// its context nodes' children or descendants. It is the fallback for
// unindexed trees and un-indexable paths, and the differential-testing
// oracle the indexed engine is checked against.
func EvaluateWalk(p Path, ctx *dom.Node) []*dom.Node {
	if ctx == nil || len(p.Steps) == 0 {
		return nil
	}
	return evaluateWalk(p, ctx)
}

func evaluateWalk(p Path, ctx *dom.Node) []*dom.Node {
	current := []*dom.Node{ctx}
	for _, step := range p.Steps {
		current = applyStep(step, current)
		if len(current) == 0 {
			return nil
		}
	}
	sortDocOrder(current)
	return current
}

// sortDocOrder puts a deduplicated node-set into document order, the
// order XPath requires of result node-sets. Step application visits
// contexts in sequence, so when an intermediate set contains both an
// ancestor and its descendant, a later child step can emit matches
// interleaved out of document order; the final sort restores the
// invariant for both evaluation strategies.
func sortDocOrder(nodes []*dom.Node) {
	if len(nodes) < 2 {
		// The hot replay case — one resolved element — needs no sort,
		// and sort.Slice's closure machinery would allocate for it.
		return
	}
	sort.Slice(nodes, func(i, j int) bool {
		return dom.CompareDocumentOrder(nodes[i], nodes[j]) < 0
	})
}

// First returns the first element matched by the path, or nil.
func First(p Path, ctx *dom.Node) *dom.Node {
	nodes := Evaluate(p, ctx)
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// Matches reports whether the path selects n when evaluated against root.
func Matches(p Path, root, n *dom.Node) bool {
	for _, m := range Evaluate(p, root) {
		if m == n {
			return true
		}
	}
	return false
}

func applyStep(step Step, ctx []*dom.Node) []*dom.Node {
	var out []*dom.Node
	seen := make(map[*dom.Node]bool)
	for _, c := range ctx {
		for _, cand := range candidates(step, c) {
			if !matchesPreds(step, cand) {
				continue
			}
			if !seen[cand] {
				seen[cand] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

func candidates(step Step, ctx *dom.Node) []*dom.Node {
	var out []*dom.Node
	if step.Deep {
		ctx.Walk(func(n *dom.Node) bool {
			if n != ctx && elementMatchesTag(n, step.Tag) {
				out = append(out, n)
			}
			return true
		})
		return out
	}
	for _, c := range ctx.Children() {
		if elementMatchesTag(c, step.Tag) {
			out = append(out, c)
		}
	}
	return out
}

func elementMatchesTag(n *dom.Node, tag string) bool {
	if n.Type != dom.ElementNode {
		return false
	}
	return tag == "*" || n.Tag == tag
}

func matchesPreds(step Step, n *dom.Node) bool {
	for _, pred := range step.Preds {
		switch p := pred.(type) {
		case AttrEq:
			v, ok := n.Attr(p.Name)
			if !ok || v != p.Value {
				return false
			}
		case TextEq:
			if strings.TrimSpace(n.TextContent()) != p.Value {
				return false
			}
		case Position:
			if n.ElementIndex() != p.N {
				return false
			}
		default:
			return false
		}
	}
	return true
}
