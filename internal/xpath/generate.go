package xpath

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
)

// maxTextPredicate bounds the length of text() predicates the generator
// emits; longer texts make brittle, unreadable expressions.
const maxTextPredicate = 40

// Generate produces an XPath expression identifying n, in the style the
// paper's traces show (Fig. 4): a short descendant expression anchored on
// a distinguishing property — id, name, or text — with one level of parent
// context, e.g. `//td/div[@id="content"]` or `//td/div[text()="Save"]`.
// When no distinguishing property exists near the element, it falls back
// to an absolute path with positional predicates.
//
// The returned expression is guaranteed to match n when evaluated against
// n's root at generation time (it may match other elements too; the first
// match is n whenever the property is unique).
func Generate(n *dom.Node) Path {
	if n == nil || n.Type != dom.ElementNode {
		return Path{}
	}
	root := n.Root()

	// Preference order mirrors the trace format in the paper: id (plus
	// name when present — the name predicate is what the replayer's
	// keep-only-name relaxation falls back on when dynamic applications
	// regenerate ids), then name alone, then visible text, each with one
	// parent step for context.
	// A value containing both quote characters cannot be written as an
	// XPath 1.0 string literal (quote() would silently rewrite it, and
	// the generated expression would not re-match its element after a
	// parse round trip), so such values disqualify their predicate and
	// the generator falls through to positional forms.
	id := n.ID()
	if !representable(id) {
		id = ""
	}
	name, _ := n.Attr("name")
	if !representable(name) {
		name = ""
	}
	if id != "" && name != "" {
		p := anchored(n, AttrEq{Name: "id", Value: id}, AttrEq{Name: "name", Value: name})
		if isFirstMatch(p, root, n) {
			return p
		}
	}
	if id != "" {
		p := anchored(n, AttrEq{Name: "id", Value: id})
		if isFirstMatch(p, root, n) {
			return p
		}
	}
	if name != "" {
		p := anchored(n, AttrEq{Name: "name", Value: name})
		if isFirstMatch(p, root, n) {
			return p
		}
	}
	if text := strings.TrimSpace(n.TextContent()); text != "" && len(text) <= maxTextPredicate && !strings.Contains(text, "\n") && representable(text) {
		p := anchored(n, TextEq{Value: text})
		if isFirstMatch(p, root, n) {
			return p
		}
	}
	if id != "" || name != "" {
		// The id/name anchors above were ambiguous; disambiguate with a
		// positional predicate instead of falling through to a brittle
		// absolute path.
		var preds []Pred
		if id != "" {
			preds = append(preds, AttrEq{Name: "id", Value: id})
		}
		if name != "" {
			preds = append(preds, AttrEq{Name: "name", Value: name})
		}
		preds = append(preds, Position{N: n.ElementIndex()})
		p := anchored(n, preds...)
		if isFirstMatch(p, root, n) {
			return p
		}
	}

	// Try anchoring on the nearest uniquely-identified ancestor, with a
	// positional child path below it.
	for anc := n.Parent(); anc != nil && anc.Type == dom.ElementNode; anc = anc.Parent() {
		if id := anc.ID(); id != "" && representable(id) {
			p := Path{Steps: []Step{{
				Deep: true, Tag: anc.Tag,
				Preds: []Pred{AttrEq{Name: "id", Value: id}},
			}}}
			p.Steps = append(p.Steps, positionalSteps(anc, n)...)
			if isFirstMatch(p, root, n) {
				return p
			}
		}
	}

	// Absolute path from the root element.
	return absolute(n)
}

// GenerateString is Generate rendered as a string.
func GenerateString(n *dom.Node) string { return Generate(n).String() }

// anchored builds //parentTag/tag[preds...] (or //tag[preds...] when the
// parent is not an element).
func anchored(n *dom.Node, preds ...Pred) Path {
	parent := n.Parent()
	if parent != nil && parent.Type == dom.ElementNode && parent.Tag != "body" && parent.Tag != "html" {
		return Path{Steps: []Step{
			{Deep: true, Tag: parent.Tag},
			{Tag: n.Tag, Preds: preds},
		}}
	}
	return Path{Steps: []Step{{Deep: true, Tag: n.Tag, Preds: preds}}}
}

// positionalSteps builds the child steps from anc (exclusive) down to n
// (inclusive), each with a positional predicate where needed.
func positionalSteps(anc, n *dom.Node) []Step {
	var chain []*dom.Node
	for cur := n; cur != nil && cur != anc; cur = cur.Parent() {
		chain = append(chain, cur)
	}
	steps := make([]Step, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		steps = append(steps, positionalStep(chain[i]))
	}
	return steps
}

func positionalStep(n *dom.Node) Step {
	s := Step{Tag: n.Tag}
	// Only add a position when siblings share the tag; <body> in <html>
	// needs no [1].
	if p := n.Parent(); p != nil {
		same := 0
		for _, c := range p.Children() {
			if c.Type == dom.ElementNode && c.Tag == n.Tag {
				same++
			}
		}
		if same > 1 {
			s.Preds = []Pred{Position{N: n.ElementIndex()}}
		}
	}
	return s
}

// absolute builds /html/body/.../tag[pos] from the root element down to n.
// A root element with no parent at all (a detached subtree, as opposed to
// one hanging off a #document node) is excluded from the path, so the
// result evaluates correctly with that root as the context node.
func absolute(n *dom.Node) Path {
	var chain []*dom.Node
	for cur := n; cur != nil && cur.Type == dom.ElementNode; cur = cur.Parent() {
		if cur.Parent() == nil && cur != n {
			break
		}
		chain = append(chain, cur)
	}
	var p Path
	for i := len(chain) - 1; i >= 0; i-- {
		p.Steps = append(p.Steps, positionalStep(chain[i]))
	}
	if len(p.Steps) > 0 && n.Parent() == nil {
		// n is the root itself: anchor it on the descendant axis so the
		// expression is usable from any enclosing context.
		p.Steps[0].Deep = true
	}
	return p
}

// isFirstMatch reports whether n is the first element the path selects.
func isFirstMatch(p Path, root, n *dom.Node) bool {
	return First(p, root) == n
}

// representable reports whether v can be written exactly as an XPath 1.0
// string literal. The language has no escape sequences, so a value
// containing both quote characters cannot be expressed.
func representable(v string) bool {
	return !strings.Contains(v, `"`) || !strings.Contains(v, "'")
}
