package netsim

import (
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/vclock"
)

func echoHandler() Handler {
	return HandlerFunc(func(req *Request) *Response {
		return OK("echo:" + req.Path())
	})
}

func TestFetchRoutesByHost(t *testing.T) {
	n := New(vclock.New())
	n.Register("a.test", echoHandler())
	n.Register("b.test", HandlerFunc(func(req *Request) *Response { return OK("bee") }))

	resp, err := n.Fetch(NewRequest("GET", "http://a.test/page"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body != "echo:/page" {
		t.Fatalf("body = %q", resp.Body)
	}
	resp, _ = n.Fetch(NewRequest("GET", "http://b.test/"))
	if resp.Body != "bee" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestFetchUnknownHost(t *testing.T) {
	n := New(vclock.New())
	if _, err := n.Fetch(NewRequest("GET", "http://ghost.test/")); err == nil {
		t.Fatal("expected error for unknown host")
	}
}

func TestNilHandlerResponseIs404(t *testing.T) {
	n := New(vclock.New())
	n.Register("a.test", HandlerFunc(func(req *Request) *Response { return nil }))
	resp, err := n.Fetch(NewRequest("GET", "http://a.test/missing"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestFetchAsyncHonorsLatency(t *testing.T) {
	clock := vclock.New()
	n := New(clock)
	n.Register("a.test", echoHandler())
	n.SetLatency(200 * time.Millisecond)

	var got *Response
	n.FetchAsync(NewRequest("GET", "http://a.test/x"), func(r *Response, err error) { got = r })
	if got != nil {
		t.Fatal("response delivered before latency elapsed")
	}
	clock.Advance(100 * time.Millisecond)
	if got != nil {
		t.Fatal("response delivered too early")
	}
	clock.Advance(100 * time.Millisecond)
	if got == nil || got.Body != "echo:/x" {
		t.Fatalf("response = %+v", got)
	}
}

func TestFetchAsyncErrorPropagates(t *testing.T) {
	clock := vclock.New()
	n := New(clock)
	var gotErr error
	n.FetchAsync(NewRequest("GET", "http://ghost.test/"), func(r *Response, err error) { gotErr = err })
	clock.RunDue()
	if gotErr == nil {
		t.Fatal("expected routing error")
	}
}

func TestParseFormQuery(t *testing.T) {
	r := NewRequest("GET", "http://a.test/search?q=hello+world&page=2")
	if err := r.ParseForm(); err != nil {
		t.Fatal(err)
	}
	if r.Form.Get("q") != "hello world" || r.Form.Get("page") != "2" {
		t.Fatalf("form = %v", r.Form)
	}
}

func TestParseFormPostBody(t *testing.T) {
	r := NewRequest("POST", "http://a.test/login")
	r.Body = "user=alice&pass=secret"
	if err := r.ParseForm(); err != nil {
		t.Fatal(err)
	}
	if r.Form.Get("user") != "alice" || r.Form.Get("pass") != "secret" {
		t.Fatalf("form = %v", r.Form)
	}
}

func TestRequestAccessors(t *testing.T) {
	r := NewRequest("GET", "https://mail.test/inbox")
	if r.Host() != "mail.test" {
		t.Errorf("Host = %q", r.Host())
	}
	if r.Path() != "/inbox" {
		t.Errorf("Path = %q", r.Path())
	}
	if !r.Secure() {
		t.Error("Secure = false for https")
	}
	r2 := NewRequest("GET", "http://a.test")
	if r2.Path() != "/" {
		t.Errorf("empty path = %q", r2.Path())
	}
	if r2.Secure() {
		t.Error("Secure = true for http")
	}
}

type captureObserver struct{ recs []TrafficRecord }

func (c *captureObserver) Observe(rec TrafficRecord) { c.recs = append(c.recs, rec) }

func TestObserverSeesPlainHTTP(t *testing.T) {
	n := New(vclock.New())
	n.Register("a.test", echoHandler())
	obs := &captureObserver{}
	n.AddObserver(obs)

	req := NewRequest("POST", "http://a.test/submit")
	req.Body = "secret=data"
	if _, err := n.Fetch(req); err != nil {
		t.Fatal(err)
	}
	if len(obs.recs) != 1 {
		t.Fatalf("records = %d", len(obs.recs))
	}
	rec := obs.recs[0]
	if rec.Encrypted {
		t.Error("http marked encrypted")
	}
	if rec.RequestBody != "secret=data" || !strings.Contains(rec.ResponseBody, "echo:") {
		t.Errorf("bodies not visible: %+v", rec)
	}
	if rec.URL != "http://a.test/submit" {
		t.Errorf("URL = %q", rec.URL)
	}
}

func TestObserverBlindToHTTPS(t *testing.T) {
	// The paper's §II argument: proxies cannot record HTTPS content
	// without breaking end-to-end security. The observer sees only
	// connection metadata.
	n := New(vclock.New())
	n.Register("mail.test", echoHandler())
	obs := &captureObserver{}
	n.AddObserver(obs)

	req := NewRequest("POST", "https://mail.test/compose?draft=7")
	req.Body = "to=bob&body=hi"
	if _, err := n.Fetch(req); err != nil {
		t.Fatal(err)
	}
	rec := obs.recs[0]
	if !rec.Encrypted {
		t.Fatal("https not marked encrypted")
	}
	if rec.RequestBody != "" || rec.ResponseBody != "" {
		t.Errorf("encrypted bodies leaked: %+v", rec)
	}
	if rec.URL != "https://mail.test/" {
		t.Errorf("URL leaked path: %q", rec.URL)
	}
}

func TestObserverTimestampUsesVirtualClock(t *testing.T) {
	clock := vclock.New()
	clock.Advance(42 * time.Second)
	n := New(clock)
	n.Register("a.test", echoHandler())
	obs := &captureObserver{}
	n.AddObserver(obs)
	if _, err := n.Fetch(NewRequest("GET", "http://a.test/")); err != nil {
		t.Fatal(err)
	}
	if got := obs.recs[0].Time; !got.Equal(vclock.Epoch.Add(42 * time.Second)) {
		t.Fatalf("time = %v", got)
	}
}
