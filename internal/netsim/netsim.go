// Package netsim provides the in-memory network connecting the simulated
// browser to simulated web application servers. It models what the paper
// needs from a network and nothing more: request/response exchange with
// configurable latency (so timing errors are reproducible on the virtual
// clock) and HTTPS semantics (so the proxy-based-recorder discussion in
// §II is testable: a proxy cannot read encrypted bodies without breaking
// end-to-end security).
package netsim

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/vclock"
)

// Request is an HTTP-like request.
type Request struct {
	Method string
	URL    string // absolute, e.g. "https://sites.test/edit?page=home"
	Header map[string]string
	Body   string

	// Form holds parsed query/body parameters (populated by ParseForm).
	Form url.Values

	// parsed caches url.Parse(URL); parsedFor guards against callers
	// rewriting the URL field after the first accessor ran. Host, Path,
	// and routing each need the parsed form, and re-parsing per call
	// was the single largest allocator on the campaign hot path.
	parsed    *url.URL
	parsedFor string
}

// parseURL returns the parsed form of the request URL, cached while
// the URL field is unchanged.
func (r *Request) parseURL() (*url.URL, error) {
	if r.parsed != nil && r.parsedFor == r.URL {
		return r.parsed, nil
	}
	u, err := parseURLCached(r.URL)
	if err != nil {
		return nil, err
	}
	r.parsed, r.parsedFor = u, r.URL
	return u, nil
}

// The URL parse cache: the same request URLs recur across every
// environment of a campaign (start pages, AJAX endpoints, redirect
// targets), and parsing them anew per request was a top allocator.
// Cached *url.URL values are shared and must never be mutated — every
// consumer in this module only reads fields. Two bounded generations,
// hot entries surviving rotation, as elsewhere.
const urlCacheGen = 512

var (
	urlMu   sync.RWMutex
	urlCur  = make(map[string]*url.URL)
	urlPrev map[string]*url.URL
)

func parseURLCached(raw string) (*url.URL, error) {
	urlMu.RLock()
	u, hot := urlCur[raw]
	if !hot {
		u = urlPrev[raw]
	}
	urlMu.RUnlock()
	if u == nil {
		var err error
		if u, err = url.Parse(raw); err != nil {
			return nil, err
		}
	} else if hot {
		return u, nil
	}
	urlMu.Lock()
	if _, exists := urlCur[raw]; !exists {
		if len(urlCur) >= urlCacheGen {
			urlPrev, urlCur = urlCur, make(map[string]*url.URL, urlCacheGen)
		}
		urlCur[raw] = u
	}
	urlMu.Unlock()
	return u, nil
}

// NewRequest returns a request for the given URL. The Header map is
// created lazily by SetHeader — most simulated requests carry no
// headers, and the hot fetch paths fire thousands of them.
func NewRequest(method, rawURL string) *Request {
	return &Request{Method: method, URL: rawURL}
}

// SetHeader sets one request header, creating the Header map on first
// use.
func (r *Request) SetHeader(name, value string) {
	if r.Header == nil {
		r.Header = make(map[string]string, 1)
	}
	r.Header[name] = value
}

// ParseForm populates Form from the URL query and, for POST, the body.
func (r *Request) ParseForm() error {
	u, err := r.parseURL()
	if err != nil {
		return fmt.Errorf("netsim: parsing url %q: %w", r.URL, err)
	}
	r.Form = u.Query()
	if r.Method == "POST" && r.Body != "" {
		body, err := url.ParseQuery(r.Body)
		if err != nil {
			return fmt.Errorf("netsim: parsing body: %w", err)
		}
		for k, vs := range body {
			for _, v := range vs {
				r.Form.Add(k, v)
			}
		}
	}
	return nil
}

// Host returns the request's host component ("" for unparsable URLs).
func (r *Request) Host() string {
	u, err := r.parseURL()
	if err != nil {
		return ""
	}
	return u.Host
}

// Path returns the request's path component ("/" when empty).
func (r *Request) Path() string {
	u, err := r.parseURL()
	if err != nil || u.Path == "" {
		return "/"
	}
	return u.Path
}

// Secure reports whether the request travels over HTTPS.
func (r *Request) Secure() bool {
	return strings.HasPrefix(r.URL, "https://")
}

// Response is an HTTP-like response.
type Response struct {
	Status      int
	ContentType string
	Header      map[string]string
	Body        string
}

// OK returns a 200 text/html response.
func OK(body string) *Response {
	return &Response{Status: 200, ContentType: "text/html", Header: make(map[string]string), Body: body}
}

// NotFound returns a 404 response.
func NotFound() *Response {
	return &Response{Status: 404, ContentType: "text/html", Header: make(map[string]string), Body: "<html><body><h1>404 Not Found</h1></body></html>"}
}

// Handler serves requests for one host.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// TrafficRecord is what a network-level observer (a Fiddler-style proxy)
// sees for one exchange. For HTTPS traffic the bodies and the path are
// blank: without breaking end-to-end security a proxy sees only the
// connection metadata — the reason the paper rejects proxy-based
// recording (§II).
type TrafficRecord struct {
	Time         time.Time
	Method       string
	URL          string // full URL for HTTP; scheme+host only for HTTPS
	RequestBody  string
	ResponseBody string
	Status       int
	Encrypted    bool
}

// Observer is notified of every exchange crossing the network.
type Observer interface {
	Observe(rec TrafficRecord)
}

// Network routes requests to registered hosts with configurable latency.
type Network struct {
	mu        sync.Mutex
	clock     *vclock.Clock
	hosts     map[string]Handler
	latency   time.Duration
	observers []Observer
}

// New returns a network driven by the given clock.
func New(clock *vclock.Clock) *Network {
	return &Network{clock: clock, hosts: make(map[string]Handler)}
}

// Register installs h as the server for host (e.g. "sites.test").
func (n *Network) Register(host string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[host] = h
}

// SetLatency sets the one-way delivery delay applied by FetchAsync.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// Latency returns the configured one-way delay.
func (n *Network) Latency() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latency
}

// AddObserver attaches a traffic observer (proxy).
func (n *Network) AddObserver(o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observers = append(n.observers, o)
}

// Fetch synchronously resolves a request. Unknown hosts yield an error;
// handlers returning nil yield 404.
func (n *Network) Fetch(req *Request) (*Response, error) {
	n.mu.Lock()
	h, ok := n.hosts[req.Host()]
	observers := append([]Observer(nil), n.observers...)
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: no route to host %q (url %q)", req.Host(), req.URL)
	}
	resp := h.Serve(req)
	if resp == nil {
		resp = NotFound()
	}
	n.notify(observers, req, resp)
	return resp, nil
}

// FetchAsync resolves a request after the configured latency has elapsed
// on the virtual clock, then invokes cb. This is the substrate for AJAX:
// the asynchronous loading that makes web applications "more vulnerable
// to timing errors" (paper §V-B).
func (n *Network) FetchAsync(req *Request, cb func(*Response, error)) {
	n.mu.Lock()
	latency := n.latency
	n.mu.Unlock()
	n.clock.AfterFunc(latency, func() {
		resp, err := n.Fetch(req)
		cb(resp, err)
	})
}

func (n *Network) notify(observers []Observer, req *Request, resp *Response) {
	if len(observers) == 0 {
		return
	}
	rec := TrafficRecord{
		Time:         n.clock.Now(),
		Method:       req.Method,
		URL:          req.URL,
		RequestBody:  req.Body,
		ResponseBody: resp.Body,
		Status:       resp.Status,
		Encrypted:    req.Secure(),
	}
	if rec.Encrypted {
		// A proxy on an HTTPS connection sees only connection metadata.
		u, err := url.Parse(req.URL)
		if err == nil {
			rec.URL = "https://" + u.Host + "/"
		}
		rec.RequestBody = ""
		rec.ResponseBody = ""
	}
	for _, o := range observers {
		o.Observe(rec)
	}
}
