package webdriver

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
)

// This file serializes the driver's master state for durable world
// images (internal/image): the per-frame clients in load order, their
// adopted src-less frames, and the active-client selection. It is the
// data form of CloneFor — frames are named by the browser image's frame
// numbering rather than mapped pointer-to-pointer.

// Image is the serialized form of a driver.
type Image struct {
	Opts    Options       `json:"opts"`
	Clients []ClientImage `json:"clients,omitempty"`
	// Active indexes Clients; -1 means no active client (replay halted).
	Active int `json:"active"`
}

// ClientImage is one serialized client: its frame and adopted frames by
// image index.
type ClientImage struct {
	Frame   int   `json:"frame"`
	Adopted []int `json:"adopted,omitempty"`
}

// EncodeImage serializes the driver, naming frames through frameID
// (the browser image's numbering).
func (d *Driver) EncodeImage(frameID func(*browser.Frame) (int, bool)) (*Image, error) {
	img := &Image{Opts: d.opts, Active: -1}
	for _, c := range d.loadOrder {
		id, ok := frameID(c.frame)
		if !ok {
			return nil, fmt.Errorf("webdriver: client frame not present in the browser image")
		}
		ci := ClientImage{Frame: id}
		for _, a := range c.adopted {
			aid, ok := frameID(a)
			if !ok {
				return nil, fmt.Errorf("webdriver: adopted frame not present in the browser image")
			}
			ci.Adopted = append(ci.Adopted, aid)
		}
		if d.active == c {
			img.Active = len(img.Clients)
		}
		img.Clients = append(img.Clients, ci)
	}
	return img, nil
}

// DecodeImage rebuilds a driver over the decoded tab, resolving frame
// indices through frame. Like CloneFor it attaches as a frame observer
// without re-deriving clients, so the active-client selection — the
// state the paper's unload fix is about — survives exactly.
func DecodeImage(img *Image, tab *browser.Tab, frame func(int) *browser.Frame) (*Driver, error) {
	d := &Driver{tab: tab, opts: img.Opts, clients: make(map[*browser.Frame]*Client, len(img.Clients))}
	tab.AddFrameObserver(d)
	for i, ci := range img.Clients {
		f := frame(ci.Frame)
		if f == nil {
			return nil, fmt.Errorf("webdriver: image client %d names unknown frame %d", i, ci.Frame)
		}
		c := &Client{frame: f}
		for _, aid := range ci.Adopted {
			a := frame(aid)
			if a == nil {
				return nil, fmt.Errorf("webdriver: image client %d adopts unknown frame %d", i, aid)
			}
			c.adopted = append(c.adopted, a)
		}
		d.clients[f] = c
		d.loadOrder = append(d.loadOrder, c)
		if img.Active == i {
			d.active = c
		}
	}
	if img.Active >= len(img.Clients) {
		return nil, fmt.Errorf("webdriver: image active client %d of %d", img.Active, len(img.Clients))
	}
	return d, nil
}
