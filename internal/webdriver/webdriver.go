// Package webdriver implements the browser interaction driver the WaRR
// Replayer is built on — the analog of WebDriver plus ChromeDriver
// (paper §IV-C). The architecture matches the paper's description:
// Chrome is controlled through a plug-in composed of a master and
// multiple clients, one per iframe; the master proxies commands to the
// single active client.
//
// The package reproduces ChromeDriver's four defects and WaRR's fixes,
// each behind an option so the ablation benchmarks can measure them:
//
//  1. no double-click support → fixed by synthesizing the necessary
//     events from JavaScript-level dispatch;
//  2. text input that only sets the value property → fixed by targeting
//     the correct property (textContent for container elements) and
//     triggering the required events;
//  3. no clients for src-less iframes → fixed by letting the parent
//     document's client execute commands on them;
//  4. active-client selection that assumes an unload/load order Chrome
//     does not guarantee → fixed by reselecting a live client on unload.
package webdriver

import (
	"errors"
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/event"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// DefaultFrameName is the custom iframe name that signals a switch back
// to the default (main) frame — the paper's workaround for ChromeDriver
// providing "no means to switch back to an iframe".
const DefaultFrameName = "__warr_default__"

// Errors surfaced by the driver.
var (
	// ErrNoActiveClient means the master has no client to execute
	// commands — the halted-replay state of ChromeDriver defect 4.
	ErrNoActiveClient = errors.New("webdriver: no active client (replay halted)")
	// ErrElementNotFound means no frame contained a match for the
	// expression.
	ErrElementNotFound = errors.New("webdriver: element not found")
	// ErrNoSuchFrame means a frame switch named an unknown frame.
	ErrNoSuchFrame = errors.New("webdriver: no such frame")
	// ErrDoubleClickUnsupported reproduces ChromeDriver defect 1 when
	// the fix is disabled.
	ErrDoubleClickUnsupported = errors.New("webdriver: double click not supported by this driver")
)

// Options select between stock-ChromeDriver behaviour and WaRR's fixes.
// The zero value is the fully fixed driver the WaRR Replayer uses.
type Options struct {
	// DisableDoubleClickFix reverts to ChromeDriver's missing
	// double-click support.
	DisableDoubleClickFix bool
	// LegacyTextInput reverts to ChromeDriver's set-the-value-property
	// text input (no events, wrong property for container elements).
	LegacyTextInput bool
	// DisableSrclessIframeFix stops the parent client from executing
	// commands on src-less iframes.
	DisableSrclessIframeFix bool
	// DisableUnloadFix reverts to the assumed-order active-client
	// selection that halts replay when Chrome unloads frames late.
	DisableUnloadFix bool
}

// Client executes commands on one frame — a ChromeDriver client.
type Client struct {
	frame *browser.Frame
	// adopted are src-less child frames this client executes commands on
	// (fix 3: Chrome loads no client for them, so the parent's client
	// takes over).
	adopted []*browser.Frame
}

// Frame returns the frame the client is responsible for.
func (c *Client) Frame() *browser.Frame { return c.frame }

// searchRoots returns the documents this client can address.
func (c *Client) searchRoots() []*browser.Frame {
	return append([]*browser.Frame{c.frame}, c.adopted...)
}

// Driver is the ChromeDriver-style master. It observes frame lifecycle
// events from the tab and maintains one client per (src-bearing) frame,
// with a single active client executing commands.
type Driver struct {
	tab  *browser.Tab
	opts Options

	clients map[*browser.Frame]*Client
	// loadOrder preserves client creation order, newest last.
	loadOrder []*Client
	active    *Client
}

// New attaches a driver to a tab.
func New(tab *browser.Tab, opts Options) *Driver {
	d := &Driver{tab: tab, opts: opts, clients: make(map[*browser.Frame]*Client)}
	tab.AddFrameObserver(d)
	// Adopt frames that existed before attachment.
	for _, f := range tab.MainFrame().Descendants() {
		d.FrameLoaded(f)
	}
	return d
}

// Tab returns the driven tab.
func (d *Driver) Tab() *browser.Tab { return d.tab }

// CloneFor re-creates the driver's exact master state — clients, their
// adopted src-less frames, load order, and the active-client selection —
// against a forked tab, using mapFrame to translate frames. A fresh
// New() on the forked tab would instead re-derive the active client
// from scratch and could disagree with the history-dependent selection
// the unload fix produces; replay forks must not change which frame
// answers element searches first.
func (d *Driver) CloneFor(tab *browser.Tab, mapFrame func(*browser.Frame) *browser.Frame) *Driver {
	nd := &Driver{tab: tab, opts: d.opts, clients: make(map[*browser.Frame]*Client, len(d.clients))}
	tab.AddFrameObserver(nd)
	for _, c := range d.loadOrder {
		nf := mapFrame(c.frame)
		if nf == nil {
			continue
		}
		nc := &Client{frame: nf}
		for _, a := range c.adopted {
			if na := mapFrame(a); na != nil {
				nc.adopted = append(nc.adopted, na)
			}
		}
		nd.clients[nf] = nc
		nd.loadOrder = append(nd.loadOrder, nc)
		if d.active == c {
			nd.active = nc
		}
	}
	return nd
}

// ActiveClient returns the client currently executing commands, or nil.
func (d *Driver) ActiveClient() *Client { return d.active }

// FrameLoaded implements browser.FrameObserver.
func (d *Driver) FrameLoaded(f *browser.Frame) {
	if !f.HasSrc() && f.Parent() != nil {
		// Chrome does not load a ChromeDriver client for src-less
		// iframes (defect 3). With the fix, the parent's client adopts
		// the frame.
		if !d.opts.DisableSrclessIframeFix {
			if pc, ok := d.clients[f.Parent()]; ok {
				pc.adopted = append(pc.adopted, f)
			}
		}
		return
	}
	c := &Client{frame: f}
	d.clients[f] = c
	d.loadOrder = append(d.loadOrder, c)
	if d.opts.DisableUnloadFix {
		// ChromeDriver defect 4, load half: the master assumes the old
		// page unloads before the new page loads, so a load only claims
		// the active slot when a preceding unload vacated it. Chrome
		// delivers the load first, so the slot is still occupied here —
		// and the unload that follows clears it for good.
		if d.active == nil {
			d.active = c
		}
		return
	}
	if d.active == nil || f.Parent() == nil {
		// The main frame's client becomes active on page load.
		d.active = c
	}
}

// FrameUnloaded implements browser.FrameObserver.
func (d *Driver) FrameUnloaded(f *browser.Frame) {
	c, ok := d.clients[f]
	if !ok {
		return
	}
	delete(d.clients, f)
	for i, lc := range d.loadOrder {
		if lc == c {
			d.loadOrder = append(d.loadOrder[:i], d.loadOrder[i+1:]...)
			break
		}
	}
	if d.active != c {
		return
	}
	if d.opts.DisableUnloadFix {
		// ChromeDriver defect 4: the master assumes loads and unloads
		// arrive in order (unload of the old page, then load of the
		// new), so on unload it waits for a load that — because Chrome
		// already delivered it — never comes. No new active client is
		// chosen and the replay halts.
		d.active = nil
		return
	}
	// WaRR's fix: "ensuring that unloads do not prevent selecting a new
	// active client" — reselect the most recently loaded live client.
	d.active = nil
	for i := len(d.loadOrder) - 1; i >= 0; i-- {
		if d.loadOrder[i].frame.Alive() {
			d.active = d.loadOrder[i]
			return
		}
	}
}

// SwitchToFrame makes the named iframe's client active.
// DefaultFrameName switches back to the main frame (the paper's custom
// name workaround).
func (d *Driver) SwitchToFrame(name string) error {
	if name == DefaultFrameName {
		if c, ok := d.clients[d.tab.MainFrame()]; ok {
			d.active = c
			return nil
		}
		return ErrNoSuchFrame
	}
	f := d.tab.MainFrame().FrameByName(name)
	if f == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchFrame, name)
	}
	if c, ok := d.clients[f]; ok {
		d.active = c
		return nil
	}
	// A src-less frame has no client of its own; command execution goes
	// through the adopting parent client (fix 3).
	if !d.opts.DisableSrclessIframeFix {
		for _, c := range d.clients {
			for _, a := range c.adopted {
				if a == f {
					d.active = c
					return nil
				}
			}
		}
	}
	return fmt.Errorf("%w: %q has no client", ErrNoSuchFrame, name)
}

// Element is a located DOM element, bound to the frame it was found in.
type Element struct {
	driver *Driver
	frame  *browser.Frame
	node   *dom.Node
}

// Node returns the underlying DOM node.
func (e *Element) Node() *dom.Node { return e.node }

// Frame returns the frame the element lives in.
func (e *Element) Frame() *browser.Frame { return e.frame }

// FindElement locates the first element matching the XPath expression.
// The search starts in the active client's frames and then widens to
// every client (the master proxies to whichever client owns the match).
func (d *Driver) FindElement(expr string) (*Element, error) {
	path, err := xpath.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("webdriver: %w", err)
	}
	return d.findParsed(path)
}

// FindElementPath is FindElement for a pre-parsed path. Callers that
// evaluate the same expression repeatedly (the replayer's relaxation
// loop, WebErr campaigns) parse once and pass the Path here, skipping
// the per-candidate render-to-string and re-parse round trip.
func (d *Driver) FindElementPath(path xpath.Path) (*Element, error) {
	return d.findParsed(path)
}

func (d *Driver) findParsed(path xpath.Path) (*Element, error) {
	if d.active == nil {
		return nil, ErrNoActiveClient
	}
	// Active client first.
	for _, f := range d.active.searchRoots() {
		if n := xpath.First(path, f.Doc().Root()); n != nil {
			return &Element{driver: d, frame: f, node: n}, nil
		}
	}
	// Then the other clients, in load order.
	for _, c := range d.loadOrder {
		if c == d.active {
			continue
		}
		for _, f := range c.searchRoots() {
			if n := xpath.First(path, f.Doc().Root()); n != nil {
				return &Element{driver: d, frame: f, node: n}, nil
			}
		}
	}
	return nil, &notFoundError{path: path}
}

// notFoundError is ErrElementNotFound carrying the expression that missed.
// The message renders lazily: the replayer's relaxation loop discards one
// of these per failed candidate, and rendering the path eagerly used to
// cost more than the indexed lookup itself.
type notFoundError struct{ path xpath.Path }

func (e *notFoundError) Error() string {
	return ErrElementNotFound.Error() + ": " + e.path.String()
}

func (e *notFoundError) Unwrap() error { return ErrElementNotFound }

// FindByCoordinates locates the element at window coordinates — the
// backup identification clicks carry (paper §IV-B).
func (d *Driver) FindByCoordinates(x, y int) (*Element, error) {
	if d.active == nil {
		return nil, ErrNoActiveClient
	}
	frame, node := d.tab.HitTest(x, y)
	if node == nil {
		return nil, fmt.Errorf("%w: no element at %d,%d", ErrElementNotFound, x, y)
	}
	return &Element{driver: d, frame: frame, node: node}, nil
}

// noBoxError reports a click on an element without a layout box. The
// message renders lazily: error-injection campaigns hit this path for
// a large share of mutated clicks (hidden editors, display:none
// chrome), and rendering the node path eagerly dominated the failure
// path's allocations.
type noBoxError struct{ node *dom.Node }

func (e *noBoxError) Error() string {
	return "webdriver: element " + e.node.Path() + " has no layout box"
}

// Click clicks the element through the native input path (WebDriver
// issues OS-level clicks).
func (e *Element) Click() error {
	x, y, ok := e.driver.tab.AbsoluteCenter(e.frame, e.node)
	if !ok {
		return &noBoxError{node: e.node}
	}
	e.driver.tab.Click(x, y)
	return nil
}

// DoubleClick double-clicks the element. Stock ChromeDriver lacks this
// (defect 1); WaRR adds it "by using JavaScript to create and trigger the
// necessary events".
func (e *Element) DoubleClick() error {
	if e.driver.opts.DisableDoubleClickFix {
		return ErrDoubleClickUnsupported
	}
	x, y, ok := e.driver.tab.AbsoluteCenter(e.frame, e.node)
	if !ok {
		return &noBoxError{node: e.node}
	}
	dev := e.driver.tab.Browser().Mode() == browser.DeveloperMode
	for _, typ := range []string{event.TypeMouseDown, event.TypeMouseUp, event.TypeClick,
		event.TypeMouseDown, event.TypeMouseUp, event.TypeClick, event.TypeDblClick} {
		ev := event.NewSynthetic(typ, e.node, dev)
		ev.SetMouseData(event.MouseData{X: x, Y: y})
		event.Dispatch(ev)
	}
	e.driver.tab.Pump()
	return nil
}

// TypeKey replays one keystroke into the element by synthesizing
// keyboard events and applying the text default action.
//
// Fidelity depends on the browser build: in a user-mode browser the
// KeyboardEvent properties are read-only, so handlers observe keyCode 0 —
// the exact damage the paper describes. In the developer-mode browser the
// WaRR Replayer uses, the events are "practically indistinguishable from
// those generated by users" (§IV-C).
func (e *Element) TypeKey(key string, code int) error {
	e.frame.SetFocused(e.node)
	dev := e.driver.tab.Browser().Mode() == browser.DeveloperMode
	kd := event.KeyData{Key: key, Code: code}

	dispatchKey := func(typ string) bool {
		ev := event.NewSynthetic(typ, e.node, dev)
		// In user mode this fails with ErrReadOnlyProperty and the event
		// goes out without key data — degraded, not fatal, matching a
		// real page's experience of synthetic events.
		_ = ev.SetKeyData(kd)
		return event.Dispatch(ev)
	}

	allowDefault := dispatchKey(event.TypeKeyDown)
	if allowDefault && !browser.IsControlKey(key) {
		allowDefault = dispatchKey(event.TypeKeyPress)
	}
	if allowDefault {
		e.applyTextDefault(key)
	}
	dispatchKey(event.TypeKeyUp)
	e.driver.tab.Pump()
	return nil
}

// applyTextDefault mutates the element the way the default action of a
// keystroke would.
func (e *Element) applyTextDefault(key string) {
	n := e.node
	if e.driver.opts.LegacyTextInput {
		// ChromeDriver defect 2: "When simulating keystrokes into an
		// HTML element, ChromeDriver sets that element's value property"
		// — which exists for input and textarea but not for div. No
		// events fire, and container elements show nothing.
		if !browser.IsControlKey(key) {
			n.AppendValue(key)
		}
		return
	}
	switch {
	case key == browser.KeyBackspace:
		deleteLast(n)
	case browser.IsControlKey(key):
		return
	case n.Tag == "input" || n.Tag == "textarea":
		n.AppendValue(key)
	default:
		// The WaRR fix: set the correct property (textContent for
		// container elements) and trigger the required events.
		if last := n.LastChild(); last != nil && last.Type == dom.TextNode {
			last.AppendData(key)
		} else {
			n.AppendChild(dom.NewText(key))
		}
	}
	event.Dispatch(event.New(event.TypeInput, n))
}

func deleteLast(n *dom.Node) {
	if n.Tag == "input" || n.Tag == "textarea" {
		if len(n.Value) > 0 {
			n.SetValue(n.Value[:len(n.Value)-1])
		}
		return
	}
	if last := n.LastChild(); last != nil && last.Type == dom.TextNode && len(last.Data) > 0 {
		last.SetData(last.Data[:len(last.Data)-1])
	}
}

// Drag replays a drag of the element by (dx, dy) via synthetic drag
// events.
func (e *Element) Drag(dx, dy int) error {
	dev := e.driver.tab.Browser().Mode() == browser.DeveloperMode
	for _, typ := range []string{event.TypeDragStart, event.TypeDrag, event.TypeDragEnd} {
		ev := event.NewSynthetic(typ, e.node, dev)
		ev.SetDragData(event.DragData{DX: dx, DY: dy})
		event.Dispatch(ev)
	}
	e.driver.tab.Pump()
	return nil
}

// Text returns the element's text content (assertion helper for test
// oracles).
func (e *Element) Text() string { return e.node.TextContent() }

// Value returns the element's value property.
func (e *Element) Value() string { return e.node.Value }
