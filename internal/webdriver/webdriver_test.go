package webdriver

import (
	"errors"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// env wires a browser over a static page set.
type env struct {
	clock   *vclock.Clock
	browser *browser.Browser
	tab     *browser.Tab
}

func newEnv(t *testing.T, mode browser.Mode, pages map[string]string) *env {
	t.Helper()
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if body, ok := pages[req.Path()]; ok {
			return netsim.OK(body)
		}
		return netsim.NotFound()
	}))
	b := browser.New(clock, network, mode)
	e := &env{clock: clock, browser: b, tab: b.NewTab()}
	if err := e.tab.Navigate("http://app.test/"); err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	return e
}

func TestFindElementByXPath(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="a">one</div><div id="b">two</div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="b"]`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Text() != "two" {
		t.Errorf("Text = %q", el.Text())
	}
	if _, err := d.FindElement(`//div[@id="zzz"]`); !errors.Is(err, ErrElementNotFound) {
		t.Errorf("missing element error = %v", err)
	}
}

func TestFindElementSearchesIframes(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/":      `<html><body><div id="main">m</div><iframe src="/child" name="kid"></iframe></body></html>`,
		"/child": `<html><body><div id="inner">deep</div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="inner"]`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Text() != "deep" {
		t.Errorf("Text = %q", el.Text())
	}
	if el.Frame() == e.tab.MainFrame() {
		t.Error("element should live in the child frame")
	}
}

func TestSwitchToFrameAndBack(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/":      `<html><body><div id="x">main</div><iframe src="/child" name="kid"></iframe></body></html>`,
		"/child": `<html><body><div id="x">child</div></body></html>`,
	})
	d := New(e.tab, Options{})
	if err := d.SwitchToFrame("kid"); err != nil {
		t.Fatal(err)
	}
	el, err := d.FindElement(`//div[@id="x"]`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Text() != "child" {
		t.Errorf("active-frame-first search returned %q", el.Text())
	}
	// The paper's custom-name workaround: switch back to the default.
	if err := d.SwitchToFrame(DefaultFrameName); err != nil {
		t.Fatal(err)
	}
	el, err = d.FindElement(`//div[@id="x"]`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Text() != "main" {
		t.Errorf("after default switch, search returned %q", el.Text())
	}
	if err := d.SwitchToFrame("ghost"); !errors.Is(err, ErrNoSuchFrame) {
		t.Errorf("unknown frame error = %v", err)
	}
}

// ---- defect 1: double click ----

func TestDoubleClickFixDispatchesDblClick(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="cell" ondblclick="event.target.setAttribute('data-hit', 'yes')">x</div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="cell"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.DoubleClick(); err != nil {
		t.Fatal(err)
	}
	if got := el.Node().AttrOr("data-hit", ""); got != "yes" {
		t.Errorf("dblclick handler did not run: data-hit=%q", got)
	}
}

func TestDoubleClickDefectRefuses(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="cell">x</div></body></html>`,
	})
	d := New(e.tab, Options{DisableDoubleClickFix: true})
	el, err := d.FindElement(`//div[@id="cell"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.DoubleClick(); !errors.Is(err, ErrDoubleClickUnsupported) {
		t.Errorf("err = %v, want ErrDoubleClickUnsupported", err)
	}
}

// ---- defect 2: text input ----

func TestTypeKeyIntoContainerElement(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="ed" contenteditable="true"></div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="ed"]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range "hi" {
		if err := el.TypeKey(string(ch), int(ch&^0x20)); err != nil {
			t.Fatal(err)
		}
	}
	if got := el.Text(); got != "hi" {
		t.Errorf("container text = %q (the WaRR fix targets textContent)", got)
	}
	if el.Value() != "" {
		t.Errorf("value property set on a div: %q", el.Value())
	}
}

func TestLegacyTextInputDefect(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body>
			<div id="ed" contenteditable="true"></div>
			<input id="in">
			<div id="log"></div>
			<script>
				document.getElementById("in").addEventListener("input", function(e) {
					document.getElementById("log").textContent = "fired";
				});
			</script>
		</body></html>`,
	})
	d := New(e.tab, Options{LegacyTextInput: true})

	// Container elements get nothing visible: ChromeDriver sets the
	// value property, which divs do not render.
	ed, err := d.FindElement(`//div[@id="ed"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.TypeKey("a", 65); err != nil {
		t.Fatal(err)
	}
	if got := ed.Text(); got != "" {
		t.Errorf("legacy input rendered text in a div: %q", got)
	}

	// And no input events fire even for real inputs.
	in, err := d.FindElement(`//input[@id="in"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.TypeKey("a", 65); err != nil {
		t.Fatal(err)
	}
	log, err := d.FindElement(`//div[@id="log"]`)
	if err != nil {
		t.Fatal(err)
	}
	if log.Text() == "fired" {
		t.Error("legacy text input should not trigger input events")
	}
}

func TestTypeKeyBackspace(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><input id="in" value="abc"></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//input[@id="in"]`)
	if err != nil {
		t.Fatal(err)
	}
	el.Node().SetValue("abc")
	if err := el.TypeKey(browser.KeyBackspace, browser.NamedKeyCode(browser.KeyBackspace)); err != nil {
		t.Fatal(err)
	}
	if got := el.Value(); got != "ab" {
		t.Errorf("value after backspace = %q", got)
	}
}

// ---- defect 3: src-less iframes ----

const srclessPage = `<html><body>
<div id="top">top</div>
<iframe name="quick"><div id="widget">w</div></iframe>
</body></html>`

func TestSrclessIframeFixAdoptsFrame(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{"/": srclessPage})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="widget"]`)
	if err != nil {
		t.Fatalf("src-less iframe content unreachable: %v", err)
	}
	if el.Text() != "w" {
		t.Errorf("Text = %q", el.Text())
	}
	// Switching to the src-less frame routes through the parent client.
	if err := d.SwitchToFrame("quick"); err != nil {
		t.Errorf("SwitchToFrame(quick): %v", err)
	}
}

func TestSrclessIframeDefectHidesFrame(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{"/": srclessPage})
	d := New(e.tab, Options{DisableSrclessIframeFix: true})
	if _, err := d.FindElement(`//div[@id="widget"]`); err == nil {
		t.Error("src-less iframe content should be unreachable without the fix")
	}
	if err := d.SwitchToFrame("quick"); err == nil {
		t.Error("switching to a clientless frame should fail without the fix")
	}
}

// ---- defect 4: active-client selection on unload ----

const navPageA = `<html><body><a id="go" href="/b">next</a></body></html>`
const navPageB = `<html><body><div id="done">arrived</div></body></html>`

func TestUnloadFixSurvivesNavigation(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{"/": navPageA, "/b": navPageB})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//a[@id="go"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.Click(); err != nil {
		t.Fatal(err)
	}
	// After navigation the driver must still execute commands.
	got, err := d.FindElement(`//div[@id="done"]`)
	if err != nil {
		t.Fatalf("driver lost its active client after navigation: %v", err)
	}
	if got.Text() != "arrived" {
		t.Errorf("Text = %q", got.Text())
	}
}

func TestUnloadDefectHaltsReplay(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{"/": navPageA, "/b": navPageB})
	d := New(e.tab, Options{DisableUnloadFix: true})
	el, err := d.FindElement(`//a[@id="go"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.Click(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FindElement(`//div[@id="done"]`); !errors.Is(err, ErrNoActiveClient) {
		t.Errorf("err = %v, want ErrNoActiveClient (halted replay)", err)
	}
}

// ---- coordinates & drag ----

func TestFindByCoordinates(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><button id="b">Click me</button></body></html>`,
	})
	d := New(e.tab, Options{})
	n := e.tab.MainFrame().Doc().GetElementByID("b")
	x, y := e.tab.Layout().Center(n)
	el, err := d.FindByCoordinates(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if el.Node() != n {
		t.Errorf("hit %s, want the button", el.Node().Tag)
	}
}

func TestDragDispatchesDragEvents(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="box" ondrag="event.target.setAttribute('data-d', '' + event.dx + ',' + event.dy)">box</div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="box"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.Drag(7, 9); err != nil {
		t.Fatal(err)
	}
	if got := el.Node().AttrOr("data-d", ""); got != "7,9" {
		t.Errorf("drag handler saw %q, want 7,9", got)
	}
}

func TestUserModeKeyEventsDegraded(t *testing.T) {
	page := `<html><body>
		<input id="in">
		<div id="seen"></div>
		<script>
			document.getElementById("in").addEventListener("keydown", function(e) {
				document.getElementById("seen").textContent = "" + e.keyCode;
			});
		</script>
	</body></html>`

	// User mode: synthetic key events carry keyCode 0.
	usr := newEnv(t, browser.UserMode, map[string]string{"/": page})
	ud := New(usr.tab, Options{})
	el, err := ud.FindElement(`//input[@id="in"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el.TypeKey("a", 65); err != nil {
		t.Fatal(err)
	}
	seen, _ := ud.FindElement(`//div[@id="seen"]`)
	if got := seen.Text(); got != "0" {
		t.Errorf("user-mode handler saw keyCode %q, want 0 (read-only property)", got)
	}

	// Developer mode: the true keyCode is visible.
	dev := newEnv(t, browser.DeveloperMode, map[string]string{"/": page})
	dd := New(dev.tab, Options{})
	el2, err := dd.FindElement(`//input[@id="in"]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := el2.TypeKey("a", 65); err != nil {
		t.Fatal(err)
	}
	seen2, _ := dd.FindElement(`//div[@id="seen"]`)
	if got := seen2.Text(); got != "65" {
		t.Errorf("developer-mode handler saw keyCode %q, want 65", got)
	}
}

func TestElementTextAndValueHelpers(t *testing.T) {
	e := newEnv(t, browser.DeveloperMode, map[string]string{
		"/": `<html><body><div id="d">hello <b>world</b></div></body></html>`,
	})
	d := New(e.tab, Options{})
	el, err := d.FindElement(`//div[@id="d"]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := el.Text(); !strings.Contains(got, "hello") || !strings.Contains(got, "world") {
		t.Errorf("Text = %q", got)
	}
}
