package record

import (
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/registry"
)

// This file is the one record path every tool shares: create (or adopt)
// an environment, navigate a tab to the scenario's start page, attach
// the WaRR Recorder, run the scenario, and detach before returning —
// so the recorder can never keep logging into a returned trace while
// the caller goes on using the tab. RecordSession (public API),
// experiments.RecordScenario, warr-record's nondet flow, and the golden
// corpus recorder are all thin wrappers over Record.

// Options configure Record.
type Options struct {
	// Mode is the browser build of the recording environment; zero
	// means UserMode — recording is what ordinary users' browsers do.
	Mode browser.Mode
	// Env, when set, is the environment to record in; nil builds a
	// fresh default-registry environment of the given Mode.
	Env *registry.Env
	// Nondet attaches a nondeterminism log (timers, network exchanges)
	// for the session; the annotated trace is available through
	// Recorded.Annotated.
	Nondet bool
	// VerifyLive applies the scenario's oracle to the live recording
	// session before returning; a failing oracle fails the recording.
	VerifyLive bool
}

// Recorded is the outcome of recording one scenario.
type Recorded struct {
	// Trace is the recorded command trace.
	Trace command.Trace
	// Stats reports the recorder's own overhead (§VI).
	Stats core.Stats
	// Env and Tab are the live recording environment, for oracles that
	// inspect the original session. The recorder is already detached.
	Env *registry.Env
	Tab *browser.Tab
	// Nondet is the attached nondeterminism log (nil unless requested).
	Nondet *core.NondetLog
	// Start is the virtual time recording began at (for Annotated).
	Start time.Time
}

// Annotated interleaves the logged nondeterminism events into the
// recorded trace as comment lines; it returns "" when no log was
// attached.
func (r *Recorded) Annotated() string {
	if r.Nondet == nil {
		return ""
	}
	return r.Nondet.Annotate(r.Trace, r.Start)
}

// Record records a scenario end to end and returns the trace with the
// live session around it.
func Record(sc registry.Scenario, opts Options) (*Recorded, error) {
	mode := opts.Mode
	if mode == 0 {
		mode = browser.UserMode
	}
	env := opts.Env
	if env == nil {
		env = registry.MustNewEnv(mode)
	}
	var log *core.NondetLog
	if opts.Nondet {
		log = core.NewNondetLog(env.Clock)
		env.Network.AddObserver(log)
	}
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		return nil, fmt.Errorf("recording %s: %w", sc.Name, err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	// Detach before returning — on every path, including errors: the
	// recorder must not keep logging into the returned trace if the
	// caller goes on using the tab.
	defer rec.Detach()
	start := env.Clock.Now()
	if err := sc.Run(env, tab); err != nil {
		return nil, fmt.Errorf("recording %s: %w", sc.Name, err)
	}
	if opts.VerifyLive {
		if err := sc.Verify(env, tab); err != nil {
			return nil, fmt.Errorf("recording %s: live session failed: %w", sc.Name, err)
		}
	}
	rec.Detach()
	return &Recorded{
		Trace:  rec.Trace(),
		Stats:  rec.Stats(),
		Env:    env,
		Tab:    tab,
		Nondet: log,
		Start:  start,
	}, nil
}
