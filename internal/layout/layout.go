// Package layout implements a simple deterministic box layout for the
// simulated browser. WaRR click commands record the position in the
// browser window where the click originated as backup element
// identification (paper §IV-B); producing and consuming those coordinates
// requires every element to have a box, and hit-testing to map a
// coordinate back to the deepest element under it.
//
// The layout model is a simplified flow: elements stack vertically inside
// their parent, table cells split their row horizontally, and inline-ish
// leaf elements get content-proportional widths. It is not typographically
// faithful — it only needs to be deterministic, containment-consistent
// (children inside parents), and collision-free between siblings.
package layout

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
)

// Default dimensions, in CSS-pixel-like units.
const (
	lineHeight    = 18
	charWidth     = 8
	inlinePadding = 16
	// DefaultViewportWidth matches a common 2011-era browser window.
	DefaultViewportWidth = 1024
)

// Box is an element's rectangle in window coordinates.
type Box struct {
	X, Y, W, H int
}

// Contains reports whether the point (x, y) falls inside the box.
func (b Box) Contains(x, y int) bool {
	return x >= b.X && x < b.X+b.W && y >= b.Y && y < b.Y+b.H
}

// Center returns the box's center point.
func (b Box) Center() (int, int) { return b.X + b.W/2, b.Y + b.H/2 }

// inlineTags render with content-proportional width instead of filling
// their parent.
var inlineTags = map[string]bool{
	"a": true, "b": true, "i": true, "em": true, "strong": true,
	"span": true, "button": true, "input": true, "img": true,
	"label": true, "select": true, "code": true, "small": true,
}

// Layout holds the computed boxes for one document.
type Layout struct {
	boxes map[*dom.Node]Box
	root  *dom.Node
}

// Compute lays out the document's body into a viewport of the given width
// (DefaultViewportWidth when w <= 0).
func Compute(doc *dom.Document, w int) *Layout {
	if w <= 0 {
		w = DefaultViewportWidth
	}
	l := &Layout{boxes: make(map[*dom.Node]Box), root: doc.Root()}
	body := doc.Body()
	if body == nil {
		return l
	}
	l.layoutBlock(body, 0, 0, w)
	return l
}

// layoutBlock assigns n the box (x, y, w, height) and recursively lays out
// its children; it returns the height consumed.
func (l *Layout) layoutBlock(n *dom.Node, x, y, w int) int {
	if hidden(n) {
		l.boxes[n] = Box{X: x, Y: y, W: 0, H: 0}
		return 0
	}
	if n.Tag == "tr" {
		return l.layoutRow(n, x, y, w)
	}

	cy := y
	hasOwnText := strings.TrimSpace(n.OwnText()) != ""
	if hasOwnText {
		cy += lineHeight
	}
	for _, c := range n.Children() {
		if c.Type != dom.ElementNode {
			continue
		}
		cw := w
		cx := x
		if inlineTags[c.Tag] && c.NumChildren() <= 2 {
			cw = inlineWidth(c, w)
		}
		cy += l.layoutBlock(c, cx, cy, cw)
	}
	h := cy - y
	if h < lineHeight {
		h = lineHeight
	}
	l.boxes[n] = Box{X: x, Y: y, W: w, H: h}
	return h
}

// layoutRow lays out a table row: element children share the width.
func (l *Layout) layoutRow(n *dom.Node, x, y, w int) int {
	cells := n.ChildElements()
	if len(cells) == 0 {
		l.boxes[n] = Box{X: x, Y: y, W: w, H: lineHeight}
		return lineHeight
	}
	cw := w / len(cells)
	if cw < 1 {
		cw = 1
	}
	maxH := 0
	for i, c := range cells {
		h := l.layoutBlock(c, x+i*cw, y, cw)
		if h > maxH {
			maxH = h
		}
	}
	if maxH < lineHeight {
		maxH = lineHeight
	}
	l.boxes[n] = Box{X: x, Y: y, W: w, H: maxH}
	return maxH
}

func inlineWidth(n *dom.Node, maxW int) int {
	textLen := len(strings.TrimSpace(n.TextContent()))
	if v := n.Value; v != "" && textLen == 0 {
		textLen = len(v)
	}
	if textLen == 0 {
		textLen = 4
	}
	w := textLen*charWidth + inlinePadding
	if w > maxW {
		w = maxW
	}
	return w
}

// hidden reports whether the element is removed from layout via the hidden
// attribute or an inline display:none style.
func hidden(n *dom.Node) bool {
	if n.HasAttr("hidden") {
		return true
	}
	if style, ok := n.Attr("style"); ok {
		s := strings.ReplaceAll(style, " ", "")
		if strings.Contains(s, "display:none") {
			return true
		}
	}
	return false
}

// BoxOf returns the element's box and whether the element was laid out.
func (l *Layout) BoxOf(n *dom.Node) (Box, bool) {
	b, ok := l.boxes[n]
	return b, ok
}

// Center returns the center point of n's box (0,0 when n has no box).
func (l *Layout) Center(n *dom.Node) (int, int) {
	b, ok := l.boxes[n]
	if !ok {
		return 0, 0
	}
	return b.Center()
}

// HitTest returns the deepest visible element whose box contains (x, y),
// or nil when the point falls outside every box.
func (l *Layout) HitTest(x, y int) *dom.Node {
	var best *dom.Node
	bestDepth := -1
	l.root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		b, ok := l.boxes[n]
		if !ok || b.W == 0 || b.H == 0 || !b.Contains(x, y) {
			return true
		}
		if d := n.Depth(); d > bestDepth {
			best, bestDepth = n, d
		}
		return true
	})
	return best
}
