package layout

import (
	"testing"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/htmlparse"
)

func TestBoxContains(t *testing.T) {
	b := Box{X: 10, Y: 20, W: 30, H: 40}
	if !b.Contains(10, 20) || !b.Contains(39, 59) {
		t.Error("Contains misses interior points")
	}
	if b.Contains(40, 20) || b.Contains(10, 60) || b.Contains(9, 20) {
		t.Error("Contains hits exterior points")
	}
	x, y := b.Center()
	if x != 25 || y != 40 {
		t.Errorf("Center = %d,%d", x, y)
	}
}

func TestBlocksStackVertically(t *testing.T) {
	d := htmlparse.Parse(`<div id="a">one</div><div id="b">two</div>`, "u")
	l := Compute(d, 800)
	ba, _ := l.BoxOf(d.GetElementByID("a"))
	bb, _ := l.BoxOf(d.GetElementByID("b"))
	if ba.Y >= bb.Y {
		t.Fatalf("blocks not stacked: a.Y=%d b.Y=%d", ba.Y, bb.Y)
	}
	if ba.W != 800 || bb.W != 800 {
		t.Fatalf("block widths = %d,%d, want 800", ba.W, bb.W)
	}
}

func TestChildrenInsideParents(t *testing.T) {
	d := htmlparse.Parse(`<div id="p"><div id="c1">x</div><div id="c2">y</div></div>`, "u")
	l := Compute(d, 800)
	p, _ := l.BoxOf(d.GetElementByID("p"))
	for _, id := range []string{"c1", "c2"} {
		c, ok := l.BoxOf(d.GetElementByID(id))
		if !ok {
			t.Fatalf("no box for %s", id)
		}
		if c.X < p.X || c.Y < p.Y || c.X+c.W > p.X+p.W || c.Y+c.H > p.Y+p.H {
			t.Fatalf("child %s box %+v escapes parent %+v", id, c, p)
		}
	}
}

func TestSiblingBlocksDoNotOverlap(t *testing.T) {
	d := htmlparse.Parse(`<div id="a">aa</div><div id="b">bb</div><div id="c">cc</div>`, "u")
	l := Compute(d, 640)
	ids := []string{"a", "b", "c"}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			bi, _ := l.BoxOf(d.GetElementByID(ids[i]))
			bj, _ := l.BoxOf(d.GetElementByID(ids[j]))
			if bi.Y+bi.H > bj.Y && bj.Y+bj.H > bi.Y {
				t.Fatalf("boxes %s %+v and %s %+v overlap", ids[i], bi, ids[j], bj)
			}
		}
	}
}

func TestTableCellsSplitHorizontally(t *testing.T) {
	d := htmlparse.Parse(`<table><tr><td id="l">left</td><td id="r">right</td></tr></table>`, "u")
	l := Compute(d, 600)
	bl, _ := l.BoxOf(d.GetElementByID("l"))
	br, _ := l.BoxOf(d.GetElementByID("r"))
	if bl.Y != br.Y {
		t.Fatalf("cells not on same row: %d vs %d", bl.Y, br.Y)
	}
	if bl.X+bl.W > br.X {
		t.Fatalf("cells overlap: %+v %+v", bl, br)
	}
}

func TestHiddenElementHasZeroBox(t *testing.T) {
	d := htmlparse.Parse(`<div id="v">shown</div><div id="h" style="display: none">hidden</div>`, "u")
	l := Compute(d, 800)
	bh, _ := l.BoxOf(d.GetElementByID("h"))
	if bh.W != 0 || bh.H != 0 {
		t.Fatalf("hidden box = %+v, want zero size", bh)
	}
	d2 := htmlparse.Parse(`<div id="h" hidden>x</div>`, "u")
	l2 := Compute(d2, 800)
	b2, _ := l2.BoxOf(d2.GetElementByID("h"))
	if b2.W != 0 {
		t.Fatal("hidden attribute not honored")
	}
}

func TestHitTestFindsDeepest(t *testing.T) {
	d := htmlparse.Parse(`<div id="outer"><span id="inner">click me</span></div>`, "u")
	l := Compute(d, 800)
	inner := d.GetElementByID("inner")
	x, y := l.Center(inner)
	hit := l.HitTest(x, y)
	if hit != inner {
		t.Fatalf("HitTest(%d,%d) = %v, want #inner", x, y, hit)
	}
}

func TestHitTestOutside(t *testing.T) {
	d := htmlparse.Parse(`<div>x</div>`, "u")
	l := Compute(d, 800)
	if got := l.HitTest(-5, -5); got != nil {
		t.Fatalf("HitTest outside = %v, want nil", got)
	}
}

func TestHitTestRoundTripAllElements(t *testing.T) {
	// For every visible element, hit-testing its center must return the
	// element itself or a descendant — this is the property the click
	// coordinate fallback relies on.
	d := htmlparse.Parse(`
		<div id="a">text
			<div id="b"><span id="c">s</span></div>
			<table><tr><td id="d">1</td><td id="e">2</td></tr></table>
		</div>`, "u")
	l := Compute(d, 800)
	for _, id := range []string{"b", "c", "d", "e"} {
		n := d.GetElementByID(id)
		x, y := l.Center(n)
		hit := l.HitTest(x, y)
		if hit == nil || !n.Contains(hit) {
			t.Errorf("HitTest center of #%s = %v", id, hit)
		}
	}
}

func TestInlineElementsContentWidth(t *testing.T) {
	d := htmlparse.Parse(`<div><button id="b">OK</button></div>`, "u")
	l := Compute(d, 800)
	bb, _ := l.BoxOf(d.GetElementByID("b"))
	if bb.W >= 800 {
		t.Fatalf("button width = %d, want content-proportional", bb.W)
	}
	if bb.W <= 0 {
		t.Fatal("button has no width")
	}
}

func TestInputValueWidth(t *testing.T) {
	d := htmlparse.Parse(`<div><input id="i" type="text"></div>`, "u")
	d.GetElementByID("i").SetValue("some typed text")
	l := Compute(d, 800)
	b, _ := l.BoxOf(d.GetElementByID("i"))
	if b.W <= inlinePadding {
		t.Fatalf("input width = %d, want value-proportional", b.W)
	}
}

func TestComputeDefaults(t *testing.T) {
	d := htmlparse.Parse(`<div id="x">x</div>`, "u")
	l := Compute(d, 0)
	b, _ := l.BoxOf(d.GetElementByID("x"))
	if b.W != DefaultViewportWidth {
		t.Fatalf("width = %d, want default %d", b.W, DefaultViewportWidth)
	}
}

func TestNoBodyDocument(t *testing.T) {
	root := dom.NewDocumentNode()
	doc := dom.WrapDocument(root, "u")
	l := Compute(doc, 100) // must not panic
	if l.HitTest(5, 5) != nil {
		t.Fatal("empty doc hit test should be nil")
	}
}

func TestDeterminism(t *testing.T) {
	src := `<div><span>a</span><table><tr><td>x</td></tr></table></div>`
	d1 := htmlparse.Parse(src, "u")
	d2 := htmlparse.Parse(src, "u")
	l1, l2 := Compute(d1, 500), Compute(d2, 500)
	var n1, n2 []*dom.Node
	d1.Root().Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			n1 = append(n1, n)
		}
		return true
	})
	d2.Root().Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			n2 = append(n2, n)
		}
		return true
	})
	for i := range n1 {
		b1, ok1 := l1.BoxOf(n1[i])
		b2, ok2 := l2.BoxOf(n2[i])
		if ok1 != ok2 || b1 != b2 {
			t.Fatalf("layout not deterministic at %s: %+v vs %+v", n1[i].Tag, b1, b2)
		}
	}
}
