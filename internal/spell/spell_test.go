package spell

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"privacy", "privacy", 0},
		{"privacy", "pricavy", 2},  // transposition = distance 2
		{"privacy", "privcy", 1},   // omission
		{"privacy", "privaacy", 1}, // insertion
		{"privacy", "privzcy", 1},  // substitution
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	clamp := func(s string) string {
		if len(s) > 24 {
			return s[:24]
		}
		return s
	}
	symmetric := func(a, b string) bool {
		a, b = clamp(a), clamp(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool {
		a = clamp(a)
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("identity:", err)
	}
	bounded := func(a, b string) bool {
		a, b = clamp(a), clamp(b)
		d := Levenshtein(a, b)
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		min := len(a) - len(b)
		if min < 0 {
			min = -min
		}
		return d >= min && d <= max
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("bounds:", err)
	}
	triangle := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("triangle inequality:", err)
	}
}

var testCorpus = []string{
	"facebook privacy settings",
	"world cup south africa",
	"android phones comparison",
	"facebook login page",
}

func TestDictionaryBuild(t *testing.T) {
	d := NewDictionary(testCorpus)
	if !d.Contains("facebook") || !d.Contains("privacy") {
		t.Error("dictionary missing corpus words")
	}
	if d.Contains("nonexistent") {
		t.Error("dictionary contains absent word")
	}
	if got := d.Freq("facebook"); got != 2 {
		t.Errorf("freq(facebook) = %d, want 2", got)
	}
	if d.Len() == 0 {
		t.Error("empty dictionary")
	}
}

func TestWithoutTailDropsDeterministically(t *testing.T) {
	d := NewDictionary(testCorpus)
	a := d.WithoutTail(3)
	b := d.WithoutTail(3)
	if a.Len() != b.Len() {
		t.Error("WithoutTail is nondeterministic")
	}
	if a.Len() >= d.Len() {
		t.Errorf("WithoutTail dropped nothing: %d vs %d", a.Len(), d.Len())
	}
	if got := d.WithoutTail(0).Len(); got != d.Len() {
		t.Errorf("keepMod=0 should keep everything, got %d of %d", got, d.Len())
	}
}

func TestCorrectorFixesDistance1(t *testing.T) {
	d := NewDictionary(testCorpus)
	c := NewCorrector("d1", d, 1)
	got, changed := c.Correct("facebook privzcy settings")
	if !changed || got != "facebook privacy settings" {
		t.Errorf("Correct = %q (changed=%v)", got, changed)
	}
}

func TestDistance1CorrectorMissesTransposition(t *testing.T) {
	d := NewDictionary(testCorpus)
	c1 := NewCorrector("d1", d, 1)
	c2 := NewCorrector("d2", d, 2)
	const typoed = "facebook pricavy settings" // transposition, distance 2

	got1, _ := c1.Correct(typoed)
	if got1 == "facebook privacy settings" {
		t.Error("distance-1 corrector should miss a transposition")
	}
	got2, changed := c2.Correct(typoed)
	if !changed || got2 != "facebook privacy settings" {
		t.Errorf("distance-2 corrector = %q", got2)
	}
}

func TestCorrectorLeavesKnownWordsAlone(t *testing.T) {
	d := NewDictionary(testCorpus)
	c := NewCorrector("d2", d, 2)
	got, changed := c.Correct("facebook privacy settings")
	if changed || got != "facebook privacy settings" {
		t.Errorf("known query changed to %q", got)
	}
}

func TestCorrectorTieBreaksByFrequency(t *testing.T) {
	// "page" (freq 1) vs "facebook" (freq 2): a word equidistant from
	// two candidates must pick the more frequent one deterministically.
	d := NewDictionary([]string{"cat hat", "cat mat", "cat"})
	c := NewCorrector("tie", d, 1)
	got, changed := c.Correct("bat")
	if !changed || got != "cat" {
		t.Errorf("tie broke to %q, want the most frequent candidate", got)
	}
}

func TestQueryCorrectorSnapsToCorpus(t *testing.T) {
	qc := NewQueryCorrector("google", testCorpus, 4, nil)
	got, changed := qc.Correct("facebook pricavy settings")
	if !changed || got != "facebook privacy settings" {
		t.Errorf("QueryCorrector = %q (changed=%v)", got, changed)
	}
	// Known queries pass through unchanged.
	got, changed = qc.Correct("world cup south africa")
	if changed {
		t.Errorf("known query changed to %q", got)
	}
}

func TestQueryCorrectorFallback(t *testing.T) {
	dict := NewDictionary(testCorpus)
	word := NewCorrector("w", dict, 2)
	qc := NewQueryCorrector("google", testCorpus[:1], 2, word)
	// Far from the 1-query corpus, but word-level fixable.
	got, changed := qc.Correct("world cup sputh africa")
	if !changed || got != "world cup south africa" {
		t.Errorf("fallback = %q (changed=%v)", got, changed)
	}
}

func TestQueryCorrectorCaseInsensitive(t *testing.T) {
	qc := NewQueryCorrector("google", testCorpus, 4, nil)
	got, changed := qc.Correct("FACEBOOK pricavy SETTINGS")
	if !changed || got != "facebook privacy settings" {
		t.Errorf("got %q", got)
	}
}

func TestWords(t *testing.T) {
	got := Words("  Hello   WORLD ")
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Errorf("Words = %v", got)
	}
}

func TestCorrectorUncorrectableWordSurvives(t *testing.T) {
	d := NewDictionary(testCorpus)
	c := NewCorrector("d1", d, 1)
	got, changed := c.Correct("zzzzzzzzzz")
	if changed || !strings.Contains(got, "zzzzzzzzzz") {
		t.Errorf("uncorrectable word mangled: %q", got)
	}
}
