package spell

// QueryCorrector corrects whole queries against a corpus of known
// queries, the way a search engine with rich query logs can: instead of
// fixing words one at a time against a dictionary, it snaps the entire
// query to the nearest frequently-seen query. This is the mechanism that
// lets the Google-shaped engine of Table I detect and fix every injected
// typo — the original query is always in the corpus, and a single-word
// typo leaves the full query within a small edit distance of it.
type QueryCorrector struct {
	// Name identifies the engine flavour in reports.
	Name string

	corpus      []string
	maxDistance int
	// fallback fixes queries that no corpus entry is near enough to.
	fallback *Corrector
}

// NewQueryCorrector builds a query-level corrector. maxDistance bounds
// the whole-query edit distance considered; fallback may be nil.
func NewQueryCorrector(name string, corpus []string, maxDistance int, fallback *Corrector) *QueryCorrector {
	return &QueryCorrector{
		Name:        name,
		corpus:      append([]string(nil), corpus...),
		maxDistance: maxDistance,
		fallback:    fallback,
	}
}

// Correct returns the corrected query and whether it changed.
func (c *QueryCorrector) Correct(query string) (string, bool) {
	q := normalizeQuery(query)
	best := ""
	bestDist := c.maxDistance + 1
	for _, cand := range c.corpus {
		nc := normalizeQuery(cand)
		if nc == q {
			return query, false // already a known query
		}
		// Cheap length filter before the O(nm) distance.
		dl := len(nc) - len(q)
		if dl < 0 {
			dl = -dl
		}
		if dl >= bestDist {
			continue
		}
		if dist := Levenshtein(q, nc); dist < bestDist {
			best, bestDist = nc, dist
		}
	}
	if best != "" {
		return best, true
	}
	if c.fallback != nil {
		return c.fallback.Correct(query)
	}
	return query, false
}

func normalizeQuery(q string) string {
	ws := Words(q)
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
