// Package spell implements the query spell-checking substrate behind the
// three simulated search engines of Table I. The paper measures how well
// Google, Bing, and Yahoo! detect and fix a typo injected into each of
// 186 frequent queries (Google 100%, Bing 59.1%, Yahoo 84.4%).
//
// The engines differ along two axes that reproduce that spread:
//
//   - maximum edit distance considered: a distance-1 corrector cannot fix
//     transposition typos (Levenshtein distance 2), which is the dominant
//     reason the Bing-shaped engine trails;
//   - dictionary coverage: the Yahoo-shaped engine's dictionary misses a
//     deterministic slice of rare terms, so typos in those terms go
//     unfixed.
package spell

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Dictionary is a spelling dictionary with corpus frequencies.
type Dictionary struct {
	freq  map[string]int
	words []string // deterministic iteration order
}

// NewDictionary builds a dictionary from a corpus of queries: every word
// of every query enters with its occurrence count.
func NewDictionary(corpus []string) *Dictionary {
	d := &Dictionary{freq: make(map[string]int)}
	for _, q := range corpus {
		for _, w := range Words(q) {
			if d.freq[w] == 0 {
				d.words = append(d.words, w)
			}
			d.freq[w]++
		}
	}
	sort.Strings(d.words)
	return d
}

// Words splits a query into lowercase words.
func Words(q string) []string {
	return strings.Fields(strings.ToLower(q))
}

// Contains reports whether w is a dictionary word.
func (d *Dictionary) Contains(w string) bool { return d.freq[w] > 0 }

// Freq returns w's corpus frequency.
func (d *Dictionary) Freq(w string) int { return d.freq[w] }

// Len returns the number of distinct words.
func (d *Dictionary) Len() int { return len(d.words) }

// WithoutTail returns a copy of the dictionary missing a deterministic
// fraction of words — models an engine whose dictionary has poorer
// coverage of rare terms. keepMod=6 drops roughly one word in six.
func (d *Dictionary) WithoutTail(keepMod uint32) *Dictionary {
	out := &Dictionary{freq: make(map[string]int)}
	for _, w := range d.words {
		if keepMod != 0 && hashWord(w)%keepMod == 0 {
			continue
		}
		out.freq[w] = d.freq[w]
		out.words = append(out.words, w)
	}
	return out
}

func hashWord(w string) uint32 {
	h := fnv.New32a()
	// hash.Hash32 Write never fails.
	_, _ = h.Write([]byte(w))
	return h.Sum32()
}

// Corrector fixes spelling in queries.
type Corrector struct {
	// Name identifies the engine flavour in reports.
	Name string
	dict *Dictionary
	// maxDistance is the largest edit distance the corrector searches.
	maxDistance int
}

// NewCorrector builds a corrector over a dictionary.
func NewCorrector(name string, dict *Dictionary, maxDistance int) *Corrector {
	return &Corrector{Name: name, dict: dict, maxDistance: maxDistance}
}

// Correct returns the corrected query and whether any word changed.
func (c *Corrector) Correct(query string) (string, bool) {
	words := Words(query)
	changed := false
	for i, w := range words {
		if c.dict.Contains(w) {
			continue
		}
		if best, ok := c.bestMatch(w); ok {
			words[i] = best
			changed = true
		}
	}
	return strings.Join(words, " "), changed
}

// bestMatch finds the dictionary word nearest to w within the distance
// budget. Ties break toward higher corpus frequency, then lexicographic
// order, keeping corrections deterministic.
func (c *Corrector) bestMatch(w string) (string, bool) {
	best := ""
	bestDist := c.maxDistance + 1
	bestFreq := -1
	for _, cand := range c.dict.words {
		// Cheap length filter before the O(nm) distance.
		dl := len(cand) - len(w)
		if dl < 0 {
			dl = -dl
		}
		if dl >= bestDist {
			continue
		}
		dist := Levenshtein(w, cand)
		if dist > c.maxDistance {
			continue
		}
		f := c.dict.freq[cand]
		if dist < bestDist || (dist == bestDist && f > bestFreq) {
			best, bestDist, bestFreq = cand, dist, f
		}
	}
	return best, best != ""
}
