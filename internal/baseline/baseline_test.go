package baseline

import (
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
)

// recordScenario runs a Table II scenario with the Selenium-IDE recorder
// attached and returns the resulting script plus the recording env.
func recordScenario(t *testing.T, sc apps.Scenario) (Script, *apps.Env) {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	rec := NewSeleniumIDE()
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Fatalf("live session must succeed before judging the recorder: %v", err)
	}
	return rec.Script(), env
}

func TestSeleniumRecordsFormTyping(t *testing.T) {
	script, _ := recordScenario(t, apps.AuthenticateScenario())
	text := script.Text()
	if !strings.Contains(text, "type") || !strings.Contains(text, "silviu") {
		t.Errorf("script misses the typed user name:\n%s", text)
	}
	if !strings.Contains(text, "epfl2011") {
		t.Errorf("script misses the typed password:\n%s", text)
	}
}

func TestSeleniumReplayCompletesAuthenticate(t *testing.T) {
	script, _ := recordScenario(t, apps.AuthenticateScenario())
	replayEnv := apps.NewEnv(browser.UserMode)
	res, tab, err := Replay(replayEnv.Browser, script)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("replay incomplete: %+v", res.Errors)
	}
	if err := apps.AuthenticateScenario().Verify(replayEnv, tab); err != nil {
		t.Errorf("authenticate replay should reproduce the session: %v", err)
	}
}

func TestSeleniumMissesContentEditableTyping(t *testing.T) {
	script, _ := recordScenario(t, apps.EditSiteScenario())
	if strings.Contains(script.Text(), "Hello world!") {
		t.Errorf("page-level recorder should not see contenteditable keystrokes:\n%s", script.Text())
	}
	// Replaying the partial script must NOT reproduce the session.
	replayEnv := apps.NewEnv(browser.UserMode)
	_, tab, err := Replay(replayEnv.Browser, script)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.EditSiteScenario().Verify(replayEnv, tab); err == nil {
		t.Error("partial trace unexpectedly reproduced the edit-site session")
	}
}

func TestSeleniumMissesDrag(t *testing.T) {
	script, _ := recordScenario(t, apps.ComposeEmailScenario())
	for _, c := range script.Commands {
		if c.Cmd != "click" && c.Cmd != "type" {
			t.Errorf("unexpected command kind %q (baseline has no drag support)", c.Cmd)
		}
	}
}

func TestSeleniumMissesSpreadsheetEdits(t *testing.T) {
	script, _ := recordScenario(t, apps.EditSpreadsheetScenario())
	replayEnv := apps.NewEnv(browser.UserMode)
	_, _, err := Replay(replayEnv.Browser, script)
	if err != nil {
		t.Fatal(err)
	}
	if got := apps.DocsIn(replayEnv).Cell("r2c2"); got == "42" {
		t.Error("baseline replay unexpectedly reproduced the cell edit")
	}
}

func TestSeleniumStopPropagationHidesClicks(t *testing.T) {
	// An app that stops click propagation: the engine-level recorder sees
	// the click, the page-level recorder cannot.
	env := apps.NewEnv(browser.UserMode)
	env.Network.Register("quiet.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		return netsim.OK(`<html><body><button id="b" onclick="event.stopPropagation()">Go</button></body></html>`)
	}))
	tab := env.Browser.NewTab()
	if err := tab.Navigate("http://quiet.test/"); err != nil {
		t.Fatal(err)
	}
	rec := NewSeleniumIDE()
	rec.Attach(tab)

	n := tab.MainFrame().Doc().GetElementByID("b")
	x, y := tab.Layout().Center(n)
	tab.Click(x, y)

	if got := len(rec.Script().Commands); got != 0 {
		t.Errorf("recorded %d commands; stopPropagation should hide the click", got)
	}
}

func TestFiddlerSeesPlaintextBodies(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	f := NewFiddler()
	f.AttachTo(env.Network)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.YahooURL); err != nil {
		t.Fatal(err)
	}
	recs := f.Records()
	if len(recs) == 0 {
		t.Fatal("no traffic recorded")
	}
	if recs[0].Encrypted {
		t.Error("yahoo traffic should be plaintext")
	}
	if !strings.Contains(recs[0].ResponseBody, "Yahoo!") {
		t.Error("proxy should see plaintext response bodies")
	}
}

func TestFiddlerBlindToHTTPS(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	f := NewFiddler()
	f.AttachTo(env.Network)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.GMailURL); err != nil {
		t.Fatal(err)
	}
	if f.EncryptedCount() == 0 {
		t.Fatal("gmail traffic should be encrypted")
	}
	for _, r := range f.Records() {
		if !r.Encrypted {
			continue
		}
		if r.ResponseBody != "" || strings.Contains(r.URL, "/mail") {
			t.Errorf("proxy sees through HTTPS: %+v", r)
		}
	}
}

func TestFiddlerReplaySkipsEncrypted(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	f := NewFiddler()
	f.AttachTo(env.Network)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.GMailURL); err != nil {
		t.Fatal(err)
	}
	if err := tab.Navigate(apps.YahooURL); err != nil {
		t.Fatal(err)
	}
	res := f.ReplayTraffic(apps.NewEnv(browser.UserMode).Network)
	if res.Skipped == 0 {
		t.Error("encrypted exchanges should be skipped")
	}
	if res.Issued == 0 {
		t.Error("plaintext exchanges should be re-issued")
	}
}

func TestFiddlerCannotAttributeRequests(t *testing.T) {
	// §II: a user click and a page-load subresource fetch are
	// indistinguishable in the traffic log — both are plain GETs.
	env := apps.NewEnv(browser.UserMode)
	f := NewFiddler()
	f.AttachTo(env.Network)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil { // page load
		t.Fatal(err)
	}
	sc := apps.EditSiteScenario()
	if err := sc.Run(env, tab); err != nil { // user actions → more traffic
		t.Fatal(err)
	}
	for _, r := range f.Records() {
		if r.Method != "GET" {
			continue
		}
		// Nothing in the record says "user action": same shape for all.
		if r.URL == "" {
			t.Errorf("record missing URL: %+v", r)
		}
	}
	if len(f.Records()) < 3 {
		t.Errorf("expected load + AJAX + save traffic, got %d records", len(f.Records()))
	}
}

func TestSeleneseScriptText(t *testing.T) {
	s := Script{
		StartURL: "http://yahoo.test/",
		Commands: []SeleneseCommand{
			{Cmd: "click", Target: `//input[@id="u"]`},
			{Cmd: "type", Target: `//input[@id="u"]`, Value: "silviu"},
		},
	}
	text := s.Text()
	want := "open | http://yahoo.test/ |\n" +
		"click | //input[@id=\"u\"] | \n" +
		"type | //input[@id=\"u\"] | silviu\n"
	if text != want {
		t.Errorf("Text =\n%q\nwant\n%q", text, want)
	}
}

func TestSeleniumReset(t *testing.T) {
	script, _ := recordScenario(t, apps.AuthenticateScenario())
	if len(script.Commands) == 0 {
		t.Fatal("nothing recorded")
	}
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.YahooURL); err != nil {
		t.Fatal(err)
	}
	rec := NewSeleniumIDE()
	rec.Attach(tab)
	n := tab.MainFrame().Doc().GetElementByID("u")
	x, y := tab.Layout().Center(n)
	tab.Click(x, y)
	rec.Reset()
	if got := len(rec.Script().Commands); got != 0 {
		t.Errorf("commands after reset = %d", got)
	}
	if rec.Script().StartURL != apps.YahooURL {
		t.Errorf("start url = %q", rec.Script().StartURL)
	}
}

func TestSeleniumTypeCoalescesPerElement(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.YahooURL); err != nil {
		t.Fatal(err)
	}
	rec := NewSeleniumIDE()
	rec.Attach(tab)
	n := tab.MainFrame().Doc().GetElementByID("u")
	x, y := tab.Layout().Center(n)
	tab.Click(x, y)
	tab.TypeText("abc")
	script := rec.Script()
	var types []SeleneseCommand
	for _, c := range script.Commands {
		if c.Cmd == "type" {
			types = append(types, c)
		}
	}
	if len(types) != 1 {
		t.Fatalf("got %d type commands, want 1 coalesced:\n%s", len(types), script.Text())
	}
	if types[0].Value != "abc" {
		t.Errorf("coalesced value = %q", types[0].Value)
	}
}

func TestSeleniumReplayUnknownCommand(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	res, _, err := Replay(env.Browser, Script{
		StartURL: apps.YahooURL,
		Commands: []SeleneseCommand{{Cmd: "dragAndDrop", Target: `//input[@id="u"]`}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() || len(res.Errors) != 1 {
		t.Errorf("unknown command should fail the step: %+v", res)
	}
}

func TestFiddlerSummaryAndReset(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	f := NewFiddler()
	f.AttachTo(env.Network)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.GMailURL); err != nil {
		t.Fatal(err)
	}
	sum := f.Summary()
	if !strings.Contains(sum, "[encrypted]") {
		t.Errorf("summary misses encryption marker:\n%s", sum)
	}
	f.Reset()
	if len(f.Records()) != 0 {
		t.Error("records survived reset")
	}
}
