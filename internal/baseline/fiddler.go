package baseline

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/netsim"
)

// Fiddler is the network-level recording baseline: a logging proxy
// attached as a traffic observer. The paper's §II argues two structural
// problems with this approach, both observable here:
//
//   - the log cannot distinguish requests caused by user actions from
//     requests a page makes while loading (sub-resources, AJAX), so a
//     "replay" of the log re-issues everything indiscriminately;
//   - HTTPS exchanges appear as opaque connection records — no path, no
//     bodies — unless end-to-end security is broken.
type Fiddler struct {
	records []netsim.TrafficRecord
}

var _ netsim.Observer = (*Fiddler)(nil)

// NewFiddler returns an empty proxy log.
func NewFiddler() *Fiddler { return &Fiddler{} }

// AttachTo registers the proxy on a network.
func (f *Fiddler) AttachTo(n *netsim.Network) { n.AddObserver(f) }

// Observe implements netsim.Observer.
func (f *Fiddler) Observe(rec netsim.TrafficRecord) {
	f.records = append(f.records, rec)
}

// Records returns the captured traffic in order.
func (f *Fiddler) Records() []netsim.TrafficRecord {
	return append([]netsim.TrafficRecord(nil), f.records...)
}

// Reset clears the log.
func (f *Fiddler) Reset() { f.records = nil }

// EncryptedCount returns how many exchanges were HTTPS-opaque.
func (f *Fiddler) EncryptedCount() int {
	n := 0
	for _, r := range f.records {
		if r.Encrypted {
			n++
		}
	}
	return n
}

// ReplayResultNet summarizes a traffic-log replay.
type ReplayResultNet struct {
	Issued  int
	Skipped int // encrypted records cannot be re-issued
	Failed  int
}

// ReplayTraffic re-issues every recorded plaintext request against a
// network — all a proxy-level recorder can do. Encrypted records carry
// no path or body and are skipped.
func (f *Fiddler) ReplayTraffic(n *netsim.Network) ReplayResultNet {
	var res ReplayResultNet
	for _, rec := range f.records {
		if rec.Encrypted {
			res.Skipped++
			continue
		}
		req := netsim.NewRequest(rec.Method, rec.URL)
		req.Body = rec.RequestBody
		if _, err := n.Fetch(req); err != nil {
			res.Failed++
			continue
		}
		res.Issued++
	}
	return res
}

// Summary renders a compact description of the log, e.g. for reports.
func (f *Fiddler) Summary() string {
	var b strings.Builder
	for _, r := range f.records {
		b.WriteString(r.Method)
		b.WriteByte(' ')
		b.WriteString(r.URL)
		if r.Encrypted {
			b.WriteString(" [encrypted]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
