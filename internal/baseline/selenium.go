// Package baseline implements the recording baselines WaRR is evaluated
// against: a Selenium-IDE-style page-level recorder (the Table II
// comparison) and a Fiddler-style network-traffic recorder (the §II
// design discussion).
//
// The Selenium-IDE baseline is deliberately built where the real tool
// is built: inside the page, on top of DOM event listeners. Its fidelity
// gap relative to WaRR is therefore structural, not an implementation
// accident:
//
//   - it models typing as a per-form-control `type` command derived from
//     input events on input/textarea elements, so keystrokes into
//     contenteditable regions (the Sites editor, the GMail message body)
//     are never recorded;
//   - it has no representation for UI-element drags;
//   - a double click reaches it as ordinary clicks, losing the gesture;
//   - events whose propagation a page stops never bubble to its
//     document-level listeners;
//   - replaying a `type` command writes the control's value property
//     instead of synthesizing keystrokes, so keyCode-sensitive handlers
//     do not run ("fails to trigger event handlers associated to a user
//     action", §I).
package baseline

import (
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/event"
	"github.com/dslab-epfl/warr/internal/webdriver"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// SeleneseCommand is one step of a Selenium-IDE-style script.
type SeleneseCommand struct {
	// Cmd is "click" or "type".
	Cmd string
	// Target is the element locator (an XPath expression).
	Target string
	// Value is the full text for a type command ("" for clicks).
	Value string
}

// String renders the command in Selenese table style.
func (c SeleneseCommand) String() string {
	return fmt.Sprintf("%s | %s | %s", c.Cmd, c.Target, c.Value)
}

// Script is a recorded Selenium-IDE-style session.
type Script struct {
	StartURL string
	Commands []SeleneseCommand
}

// Text renders the script, one command per line.
func (s Script) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open | %s |\n", s.StartURL)
	for _, c := range s.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SeleniumIDE is the page-level recorder. Attach it to a tab and it
// injects document-level listeners into every page the tab loads,
// exactly like a recorder delivered as a browser plug-in content script.
type SeleniumIDE struct {
	tab      *browser.Tab
	startURL string
	commands []SeleneseCommand
	detached bool
}

var _ browser.FrameObserver = (*SeleniumIDE)(nil)

// NewSeleniumIDE returns a detached recorder.
func NewSeleniumIDE() *SeleniumIDE { return &SeleniumIDE{} }

// Attach installs the recorder on a tab. Pages already loaded and every
// future page get the injected listeners.
func (s *SeleniumIDE) Attach(tab *browser.Tab) {
	s.tab = tab
	s.detached = false
	s.startURL = tab.URL()
	tab.AddFrameObserver(s)
	for _, f := range tab.MainFrame().Descendants() {
		s.inject(f)
	}
}

// Detach stops recording. The injected listeners stay installed — the
// simulated DOM, like a real content script's, has no listener removal
// — but everything they observe after Detach is ignored, so a detached
// recorder can never keep logging into a returned script while the
// caller goes on using the tab.
func (s *SeleniumIDE) Detach() { s.detached = true }

// Script returns the recorded session.
func (s *SeleniumIDE) Script() Script {
	return Script{StartURL: s.startURL, Commands: append([]SeleneseCommand(nil), s.commands...)}
}

// Reset clears recorded commands and re-reads the start URL.
func (s *SeleniumIDE) Reset() {
	s.commands = nil
	if s.tab != nil {
		s.startURL = s.tab.URL()
	}
}

// FrameLoaded implements browser.FrameObserver: new page, new injected
// listeners (the plug-in's content script re-runs on every load).
func (s *SeleniumIDE) FrameLoaded(f *browser.Frame) {
	if s.detached {
		return
	}
	s.inject(f)
}

// FrameUnloaded implements browser.FrameObserver.
func (s *SeleniumIDE) FrameUnloaded(f *browser.Frame) {}

// inject hooks document-level bubble listeners for clicks and input.
func (s *SeleniumIDE) inject(f *browser.Frame) {
	if f.Doc() == nil {
		return
	}
	root := f.Doc().Root()
	event.Listen(root, event.TypeClick, false, func(e *event.Event) {
		if s.detached || !e.Trusted || e.Target == nil {
			return
		}
		s.commands = append(s.commands, SeleneseCommand{
			Cmd:    "click",
			Target: xpath.GenerateString(e.Target),
		})
	})
	event.Listen(root, event.TypeInput, false, func(e *event.Event) {
		if s.detached {
			return
		}
		t := e.Target
		if t == nil {
			return
		}
		// The recorder only understands form controls: typing is modelled
		// as changes to the value property. Contenteditable containers
		// have no value — their edits are invisible here, which is the
		// Table II fidelity gap.
		if t.Tag != "input" && t.Tag != "textarea" {
			return
		}
		locator := xpath.GenerateString(t)
		if n := len(s.commands); n > 0 &&
			s.commands[n-1].Cmd == "type" && s.commands[n-1].Target == locator {
			s.commands[n-1].Value = t.Value
			return
		}
		s.commands = append(s.commands, SeleneseCommand{
			Cmd:    "type",
			Target: locator,
			Value:  t.Value,
		})
	})
}

// ReplayResult summarizes a script replay.
type ReplayResult struct {
	Played int
	Failed int
	Errors []error
}

// Complete reports whether every command executed.
func (r *ReplayResult) Complete() bool { return r.Failed == 0 }

// Replay executes the script in a fresh tab of b, the way the Selenium
// IDE player does: native clicks, but typing by writing the value
// property (no key events — the infidelity the paper calls out).
func Replay(b *browser.Browser, script Script) (*ReplayResult, *browser.Tab, error) {
	tab := b.NewTab()
	driver := webdriver.New(tab, webdriver.Options{})
	if script.StartURL != "" {
		if err := tab.Navigate(script.StartURL); err != nil {
			return nil, tab, fmt.Errorf("baseline: loading start page: %w", err)
		}
	}
	res := &ReplayResult{}
	for _, cmd := range script.Commands {
		if err := replayOne(driver, tab, cmd); err != nil {
			res.Failed++
			res.Errors = append(res.Errors, fmt.Errorf("%s: %w", cmd, err))
			continue
		}
		res.Played++
	}
	return res, tab, nil
}

func replayOne(driver *webdriver.Driver, tab *browser.Tab, cmd SeleneseCommand) error {
	el, err := driver.FindElement(cmd.Target)
	if err != nil {
		return err
	}
	switch cmd.Cmd {
	case "click":
		return el.Click()
	case "type":
		n := el.Node()
		n.SetValue(cmd.Value)
		event.Dispatch(event.New(event.TypeInput, n))
		return nil
	default:
		return fmt.Errorf("baseline: unknown selenese command %q", cmd.Cmd)
	}
}
