// Package cliutil shares the registry listing the warr command-line
// tools print for -list, so the three faces cannot drift apart.
package cliutil

import (
	"fmt"
	"io"

	"github.com/dslab-epfl/warr/internal/registry"
)

// PrintApps lists the registered applications in registration order
// under the given heading. The last column reports the fuzzing
// campaign's coverage feedback for each app: "coverage" when its state
// implements registry.CoverageSource (app-state marks feed the corpus),
// "digest-only" when candidate dedup has only the trace-digest lane.
func PrintApps(w io.Writer, heading string) {
	fmt.Fprintln(w, heading)
	for _, a := range registry.Apps() {
		fmt.Fprintf(w, "  %-16s %-22s %-28s %s\n", a.Name(), a.Host(), a.StartURL(), coverageTag(a))
	}
}

// coverageTag names an app's fuzz-coverage capability.
func coverageTag(a registry.App) string {
	if registry.HasCoverageMarks(a) {
		return "coverage"
	}
	return "digest-only"
}

// PrintScenarios lists the registered scenarios under the given
// heading; withSteps adds each scenario's typed step list.
func PrintScenarios(w io.Writer, heading string, withSteps bool) {
	fmt.Fprintln(w, heading)
	for _, name := range registry.ScenarioNames() {
		sc, err := registry.LookupScenario(name)
		if err != nil {
			fmt.Fprintf(w, "  %-18s (unresolvable: %v)\n", name, err)
			continue
		}
		tag := ""
		if a, err := registry.LookupApp(sc.App); err == nil && registry.HasCoverageMarks(a) {
			tag = " [coverage]"
		}
		switch {
		case len(sc.Steps) > 0:
			fmt.Fprintf(w, "  %-18s %s / %s (%d steps)%s\n", name, sc.App, sc.Name, len(sc.Steps), tag)
		default:
			fmt.Fprintf(w, "  %-18s %s / %s (custom Run)%s\n", name, sc.App, sc.Name, tag)
		}
		if withSteps {
			for _, step := range sc.Steps {
				fmt.Fprintf(w, "      %s\n", step)
			}
		}
	}
}
