package warr_test

// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations of the design decisions DESIGN.md calls out. Domain
// metrics are attached via b.ReportMetric:
//
//	go test -bench=. -benchmem
//
//	BenchmarkRecorderOverheadPerAction  — §VI (per-action logging cost vs the 100 ms threshold)
//	BenchmarkRecordEditSession          — Fig. 4 (recording the edit-site trace)
//	BenchmarkReplayEditSession          — Fig. 1 (replaying it in a fresh environment)
//	BenchmarkReplayGMail*               — XPath-relaxation ablation (§IV-C)
//	BenchmarkTable1TypoDetection        — Table I (186 queries x 3 engines)
//	BenchmarkTable2Fidelity             — Table II (4 scenarios x 2 recorders)
//	BenchmarkTaskTreeInference          — Fig. 6
//	BenchmarkWebErrTraceGeneration      — §V-A (grammar-confined mutants vs exhaustive)
//	BenchmarkWebErrCampaignPruning*     — §V-A heuristic 1 (prefix-failure pruning)
//	BenchmarkEnvFork                    — one environment checkpoint (trie scheduler unit cost)
//	BenchmarkCampaignSharedPrefix*      — trace-trie scheduler vs the flat-executor ablation
//	BenchmarkImageWriteRead             — WARR-IMAGE serialize + restore round trip (per-shard shipping cost)
//	BenchmarkCampaignDistributed        — the full campaign through the coordinator/worker wire protocol
//	BenchmarkFuzzCampaign               — one budgeted coverage-guided error-model fuzzing campaign
//	BenchmarkLoadCampaign               — one multi-user load campaign (users/s on virtual time)
//	BenchmarkSealReport                 — AUsER report encryption (§VI)

import (
	"context"
	"crypto/rsa"
	"net/http/httptest"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	warr "github.com/dslab-epfl/warr"
	"github.com/dslab-epfl/warr/internal/baseline"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/distrib"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/errmodel"
	"github.com/dslab-epfl/warr/internal/experiments"
	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// recordOnce memoizes the recorded traces the replay benchmarks consume.
var (
	recordOnce sync.Once
	editTrace  warr.Trace
	gmailTrace warr.Trace
)

func benchTraces(b *testing.B) (edit, gmail warr.Trace) {
	b.Helper()
	recordOnce.Do(func() {
		var err error
		if editTrace, err = warr.RecordSession(warr.EditSiteScenario()); err != nil {
			b.Fatalf("recording edit-site: %v", err)
		}
		if gmailTrace, err = warr.RecordSession(warr.ComposeEmailScenario()); err != nil {
			b.Fatalf("recording compose: %v", err)
		}
	})
	return editTrace, gmailTrace
}

// gcSettle isolates a benchmark from its neighbors' allocator debris.
// Some benchmarks in this suite allocate tens of megabytes per op
// (Table I replays 558 live search sessions); whoever runs after them
// inherits a biased GC pacer and unreturned spans, and min-of-3 cannot
// damp a systematic bias. Settling the heap before the timer starts
// makes ns/op reflect the benchmark's own steady state — which is what
// the bench gate compares across runs.
func gcSettle() { debug.FreeOSMemory() }

// BenchmarkRecorderOverheadPerAction measures the §VI quantity directly:
// the wall-clock cost the recorder hook adds to one keystroke arriving
// at the engine. The paper reports hundreds of microseconds; anything
// below the 100 ms perception threshold keeps the recorder always-on.
func BenchmarkRecorderOverheadPerAction(b *testing.B) {
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		b.Fatal(err)
	}
	rec := warr.NewRecorder(env.Clock)
	rec.Attach(tab)
	doc := tab.MainFrame().Doc()
	field := doc.GetElementByID("u")
	x, y := tab.Layout().Center(field)
	tab.Click(x, y)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.TypeText("a")
		field.SetValue("") // keep per-keystroke work constant across b.N
	}
	b.StopTimer()

	s := rec.Stats()
	if s.Actions == 0 {
		b.Fatal("no actions recorded")
	}
	b.ReportMetric(float64(s.LoggingTime.Nanoseconds())/float64(s.Actions), "ns/logged-action")
}

// BenchmarkRecorderOffBaseline is the control: the same keystrokes with
// no recorder attached, isolating the recorder's marginal cost.
func BenchmarkRecorderOffBaseline(b *testing.B) {
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		b.Fatal(err)
	}
	doc := tab.MainFrame().Doc()
	field := doc.GetElementByID("u")
	x, y := tab.Layout().Center(field)
	tab.Click(x, y)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.TypeText("a")
		field.SetValue("") // keep per-keystroke work constant across b.N
	}
}

// BenchmarkRecordEditSession records the full Fig. 4 session per
// iteration: environment, navigation, 14 user actions.
func BenchmarkRecordEditSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := warr.RecordSession(warr.EditSiteScenario()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayEditSession replays the Fig. 4 trace in a fresh
// developer-mode environment per iteration (Fig. 1, step 3).
func BenchmarkReplayEditSession(b *testing.B) {
	edit, _ := benchTraces(b)
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := warr.NewDemoEnv(warr.DeveloperMode)
		res, _, err := warr.Replay(env.Browser, edit)
		if err != nil || !res.Complete() {
			b.Fatalf("replay failed: %v / %+v", err, res)
		}
	}
}

// BenchmarkReplayGMailWithRelaxation replays the compose trace against
// regenerated ids; relaxed lookups per replay are reported.
func BenchmarkReplayGMailWithRelaxation(b *testing.B) {
	_, gmail := benchTraces(b)
	relaxed := 0
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := warr.NewDemoEnv(warr.DeveloperMode)
		r := warr.NewReplayer(env.Browser, warr.ReplayOptions{})
		res, _, err := r.Replay(gmail)
		if err != nil || !res.Complete() {
			b.Fatalf("replay failed: %v", err)
		}
		for _, s := range res.Steps {
			if s.Status == warr.StepRelaxed {
				relaxed++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(relaxed)/float64(b.N), "relaxed-steps/replay")
}

// BenchmarkReplayGMailNoRelaxation is the ablation: with relaxation and
// the coordinate fallback disabled, stale ids make steps fail; the
// failure count is the fidelity price of the ablation.
func BenchmarkReplayGMailNoRelaxation(b *testing.B) {
	_, gmail := benchTraces(b)
	failed := 0
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := warr.NewDemoEnv(warr.DeveloperMode)
		r := warr.NewReplayer(env.Browser, warr.ReplayOptions{
			DisableRelaxation:         true,
			DisableCoordinateFallback: true,
		})
		res, _, err := r.Replay(gmail)
		if err != nil {
			b.Fatal(err)
		}
		failed += res.Failed
	}
	b.StopTimer()
	b.ReportMetric(float64(failed)/float64(b.N), "failed-steps/replay")
}

// xpathBenchWorkload is the replayer's element-resolution pattern on the
// GMail page: a recorded expression whose id is stale (a miss) followed
// by the keep-only-name relaxation that rescues it (a hit).
func xpathBenchWorkload(b *testing.B) (*dom.Node, []xpath.Path) {
	b.Helper()
	env := warr.NewDemoEnv(warr.DeveloperMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.GMailURL); err != nil {
		b.Fatal(err)
	}
	root := tab.MainFrame().Doc().Root()
	return root, []xpath.Path{
		xpath.MustParse(`//div/div[@id=":17"][@name="compose"]`), // stale recorded id
		xpath.MustParse(`//div/div[@name="compose"]`),            // keep-only-name relaxation
		xpath.MustParse(`//td/input[@name="to"]`),
		xpath.MustParse(`//div[@name="send"]`),
	}
}

// BenchmarkXPathEvaluateIndexed measures the index-backed query engine on
// the replayer's resolution workload (stale-id misses are O(1) bucket
// lookups; hits anchor on the name attribute).
func BenchmarkXPathEvaluateIndexed(b *testing.B) {
	root, paths := xpathBenchWorkload(b)
	if root.QueryIndex() == nil {
		b.Fatal("page not indexed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			xpath.Evaluate(p, root)
		}
	}
}

// BenchmarkXPathEvaluateWalker is the same workload through the
// tree-walking reference evaluator — the pre-index behaviour.
func BenchmarkXPathEvaluateWalker(b *testing.B) {
	root, paths := xpathBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			xpath.EvaluateWalk(p, root)
		}
	}
}

// BenchmarkTable1TypoDetection regenerates Table I per iteration: 186
// typoed queries against each of the three engines.
func BenchmarkTable1TypoDetection(b *testing.B) {
	var detected [3]float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Table1Options{Seed: 2011})
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range rows {
			detected[j] = r.Percent()
		}
	}
	b.ReportMetric(detected[0], "google-%")
	b.ReportMetric(detected[1], "bing-%")
	b.ReportMetric(detected[2], "yahoo-%")
}

// BenchmarkTable2Fidelity regenerates Table II per iteration: four
// scenarios recorded by both recorders and replayed in fresh
// environments.
func BenchmarkTable2Fidelity(b *testing.B) {
	complete := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		complete = 0
		for _, r := range rows {
			if r.WaRR == experiments.Complete {
				complete++
			}
		}
	}
	b.ReportMetric(float64(complete), "warr-complete-rows")
}

// BenchmarkSeleniumRecorderOverheadPerAction mirrors the §VI
// measurement for the page-level baseline (engine-level vs page-level
// recording ablation).
func BenchmarkSeleniumRecorderOverheadPerAction(b *testing.B) {
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		b.Fatal(err)
	}
	rec := baseline.NewSeleniumIDE()
	rec.Attach(tab)
	doc := tab.MainFrame().Doc()
	field := doc.GetElementByID("u")
	x, y := tab.Layout().Center(field)
	tab.Click(x, y)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.TypeText("a")
		field.SetValue("") // keep per-keystroke work constant across b.N
	}
}

// BenchmarkTaskTreeInference regenerates Fig. 6 per iteration: a
// stepwise replay with page-shape capture and similarity clustering.
func BenchmarkTaskTreeInference(b *testing.B) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := warr.InferTaskTree(fresh, edit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWebErrTraceGeneration measures grammar-confined mutant
// enumeration and reports how many traces it yields versus the
// factorial blow-up of exhaustive reordering (§V-A's 100! example).
func BenchmarkWebErrTraceGeneration(b *testing.B) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	tree, err := warr.InferTaskTree(fresh, edit)
	if err != nil {
		b.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count = len(warr.Mutants(g, warr.InjectOptions{}))
	}
	b.StopTimer()
	b.ReportMetric(float64(count), "grammar-confined-traces")
	exhaustive, _ := weberr.ExhaustiveReorderCount(len(edit.Commands)).Float64()
	b.ReportMetric(exhaustive, "exhaustive-traces")
}

// BenchmarkWebErrCampaignPruning runs the substitution/forget campaign
// with prefix-failure pruning and reports replays saved.
func BenchmarkWebErrCampaignPruning(b *testing.B) {
	benchCampaign(b, false)
}

// BenchmarkWebErrCampaignNoPruning is the ablation control.
func BenchmarkWebErrCampaignNoPruning(b *testing.B) {
	benchCampaign(b, true)
}

func benchCampaign(b *testing.B, disablePruning bool) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	tree, err := warr.InferTaskTree(fresh, edit)
	if err != nil {
		b.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	var rep *warr.CampaignReport
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = warr.RunNavigationCampaign(fresh, g, warr.CampaignOptions{
			Inject:         warr.InjectOptions{Kinds: []warr.ErrorKind{warr.Substitute, warr.Forget}},
			DisablePruning: disablePruning,
			Replayer:       replayer.Options{Pacing: replayer.PaceRecorded},
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Replayed), "replays")
	b.ReportMetric(float64(rep.Pruned), "pruned")
}

// BenchmarkNavigationCampaignSequential is the wall-clock baseline for
// the concurrent campaign executor: the full edit-site navigation
// campaign replayed one trace at a time. Pruning is disabled so both
// parallelisms replay exactly the same trace set.
func BenchmarkNavigationCampaignSequential(b *testing.B) {
	benchParallelCampaign(b, 1)
}

// BenchmarkNavigationCampaignParallel fans the same campaign out over 8
// concurrent replay sessions in isolated environments. The workload is
// CPU-bound over a simulated substrate, so the wall-clock speedup over
// the sequential baseline tracks GOMAXPROCS: expect ~min(8, cores)
// scaling on multi-core hardware and parity on a single core.
func BenchmarkNavigationCampaignParallel(b *testing.B) {
	benchParallelCampaign(b, 8)
}

func benchParallelCampaign(b *testing.B, parallelism int) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	tree, err := warr.InferTaskTree(fresh, edit)
	if err != nil {
		b.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	var rep *warr.CampaignReport
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = warr.RunNavigationCampaign(fresh, g, warr.CampaignOptions{
			Parallelism:    parallelism,
			DisablePruning: true,
			Replayer:       replayer.Options{Pacing: replayer.PaceNone},
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Replayed), "replays")
	b.ReportMetric(float64(len(rep.Findings)), "findings")
}

// BenchmarkEnvFork measures one environment checkpoint: deep-copying
// the world — cookies, the loaded page with its DOM and query indexes,
// script state, pending AJAX, and (copy-on-write, materialized on
// first touch) the server state of every hosted application —
// mid-replay of the edit-site trace. This is the unit cost the trie
// scheduler pays per divergent suffix instead of replaying the shared
// prefix.
func BenchmarkEnvFork(b *testing.B) {
	edit, _ := benchTraces(b)
	env := warr.NewDemoEnv(warr.DeveloperMode)
	s, err := warr.NewReplaySession(nil, env.Browser, edit, warr.ReplayOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Stop mid-trace, right after the Edit click queued the editor
	// fetch, so the fork carries pending AJAX — the expensive, realistic
	// checkpoint.
	for i := 0; i < len(edit.Commands)/2; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("session ended early")
		}
	}
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fork(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSharedPrefix pins the trie scheduler against the
// flat executor on the same campaign (edit-site navigation mutants,
// pruning off so both replay identical trace sets). The two rows are
// this benchmark and BenchmarkCampaignFlatAblation; their ratio is the
// shared-prefix win at equal semantics.
func BenchmarkCampaignSharedPrefix(b *testing.B) {
	benchSharedPrefixCampaign(b, false)
}

// BenchmarkCampaignFlatAblation is the control: the same jobs with
// prefix sharing disabled.
func BenchmarkCampaignFlatAblation(b *testing.B) {
	benchSharedPrefixCampaign(b, true)
}

func benchSharedPrefixCampaign(b *testing.B, disableSharing bool) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	tree, err := warr.InferTaskTree(fresh, edit)
	if err != nil {
		b.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	mutants := warr.Mutants(g, warr.InjectOptions{})
	jobs := make([]campaign.Job, len(mutants))
	for i, m := range mutants {
		jobs[i] = campaign.Job{Trace: m.Trace()}
	}
	var outcomes []campaign.Outcome
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec := campaign.New(fresh, campaign.Options{
			Replayer:             replayer.Options{Pacing: replayer.PaceNone},
			DisablePruning:       true,
			DisablePrefixSharing: disableSharing,
		})
		outcomes = exec.Execute(nil, jobs)
	}
	b.StopTimer()
	replays := 0
	for _, out := range outcomes {
		if out.Result != nil {
			replays++
		}
	}
	b.ReportMetric(float64(replays), "replays")
}

// BenchmarkImageWriteRead measures shipping one branch-point world to a
// worker and back to life: capture the forked world mid-replay of the
// edit-site trace, serialize it to WARR-IMAGE bytes (checksummed
// sections included), decode and validate those bytes, and restore a
// runnable environment plus replay session from them. This is the
// per-shard overhead distributed campaigns pay instead of replaying the
// shared prefix on every worker.
func BenchmarkImageWriteRead(b *testing.B) {
	edit, _ := benchTraces(b)
	env := warr.NewDemoEnv(warr.DeveloperMode)
	s, err := warr.NewReplaySession(nil, env.Browser, edit, warr.ReplayOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// The same mid-trace point BenchmarkEnvFork checkpoints: the Edit
	// click has queued the editor fetch, so the image carries pending
	// AJAX — the expensive, realistic world.
	for i := 0; i < len(edit.Commands)/2; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("session ended early")
		}
	}
	var size int
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := image.Capture(env, s, image.Header{})
		if err != nil {
			b.Fatal(err)
		}
		data, _, err := image.Encode(img)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
		decoded, _, err := image.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := image.LoadSession(decoded, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "image-bytes")
}

// BenchmarkCampaignDistributed runs the edit-site navigation campaign
// through the full coordinator/worker machinery — trie planning, image
// shipping over loopback HTTP, two workers restoring worlds and
// executing shards, outcome merge — and is read against
// BenchmarkNavigationCampaignParallel (the same campaign, same
// semantics, in-process): their gap is the wire-protocol tax.
func BenchmarkCampaignDistributed(b *testing.B) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	tree, err := warr.InferTaskTree(fresh, edit)
	if err != nil {
		b.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	copts := weberr.CampaignOptions{
		Replayer:       replayer.Options{Pacing: replayer.PaceNone},
		DisablePruning: true,
	}
	plan := weberr.NavigationPlan(g, copts)
	spec := jobs.DistSpec{
		Campaign:       "navigation",
		Mode:           browser.DeveloperMode,
		Replayer:       copts.Replayer,
		DisablePruning: true,
	}

	pool := distrib.NewPool(distrib.PoolOptions{})
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workers = 2
	for i := 0; i < workers; i++ {
		w := distrib.NewWorker(distrib.WorkerOptions{
			Coordinator:  srv.URL,
			PollInterval: time.Millisecond,
		})
		go func() { _ = w.Run(ctx) }()
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	if err := pool.WaitForWorkers(wctx, workers); err != nil {
		wcancel()
		b.Fatal(err)
	}
	wcancel()

	var rep *weberr.Report
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec := weberr.NavigationExecutor(fresh, copts)
		outs, ok := pool.DistributeCampaign(ctx, exec, plan, spec)
		if !ok {
			b.Fatal("campaign was not distributed")
		}
		rep = weberr.ReportOutcomes(outs)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Replayed), "replays")
	b.ReportMetric(float64(len(rep.Findings)), "findings")
}

// BenchmarkFuzzCampaign runs one budgeted coverage-guided fuzzing
// campaign over the edit-site trace: seeded error-model enumeration and
// mutation, digest/prune dedup, batched replay through the trie
// scheduler, coverage fingerprinting, and corpus admission. The fixed
// seed makes every iteration replay the identical candidate set, so
// ns/op is comparable across runs — and the reported findings metric
// doubles as a determinism canary in the gate.
func BenchmarkFuzzCampaign(b *testing.B) {
	edit, _ := benchTraces(b)
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }
	var stats *campaign.FuzzStats
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx := campaign.NewFuzzExecutor(fresh, campaign.FuzzOptions{
			Budget: 32,
			Inspect: func(job campaign.Job, res *replayer.Result, tab *browser.Tab) error {
				if res.Failed > 0 || res.Cancelled {
					return nil
				}
				return weberr.ConsoleOracle(tab, res)
			},
			Coverage: errmodel.CampaignCoverage,
		})
		stats = fx.Run(nil, errmodel.NewMutator(edit, 1, nil))
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.Replayed), "replays")
	b.ReportMetric(float64(len(stats.Findings)), "findings")
	b.ReportMetric(float64(stats.CoverageBits), "coverage-bits")
}

// BenchmarkLoadCampaign runs one multi-user load campaign over the
// mixed workload: schedule exploration, shared-world absorption with
// result sharing by world shape, and the interference checks. The
// fixed seed makes every iteration explore the identical schedule set,
// so ns/op is comparable across runs — and the findings metric doubles
// as a determinism canary in the gate. users/s is the domain metric:
// virtual users priced per wall-clock second.
func BenchmarkLoadCampaign(b *testing.B) {
	var rep *warr.LoadReport
	b.ReportAllocs()
	gcSettle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = warr.RunLoadCampaign(context.Background(), warr.LoadOptions{
			Workload: "mixed", Users: 10000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
	b.ReportMetric(float64(len(rep.Findings)), "findings")
	b.ReportMetric(float64(rep.CoverageBits), "coverage-bits")
}

// BenchmarkSealReport measures AUsER's hybrid encryption of a full
// report (trace + snapshot + console).
func BenchmarkSealReport(b *testing.B) {
	edit, _ := benchTraces(b)
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.SitesURL); err != nil {
		b.Fatal(err)
	}
	report, err := warr.NewUserReport("bench", edit, tab, warr.ReportOptions{})
	if err != nil {
		b.Fatal(err)
	}
	key := benchKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := warr.SealReport(report, &key.PublicKey); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypoInjection measures the humanerr typo model on the 186
// queries (workload generation for Table I).
func BenchmarkTypoInjection(b *testing.B) {
	queries := humanerr.Queries186
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Table1Options{
			Queries: queries[:10], Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

var (
	benchKeyOnce sync.Once
	benchRSAKey  *rsa.PrivateKey
)

func benchKey(b *testing.B) *rsa.PrivateKey {
	b.Helper()
	benchKeyOnce.Do(func() {
		k, err := warr.GenerateDeveloperKey(2048)
		if err != nil {
			b.Fatalf("key: %v", err)
		}
		benchRSAKey = k
	})
	return benchRSAKey
}
