// Package warr is the public API of WaRR, a tool that records and
// replays with high fidelity the interaction between users and modern
// web applications (Andrica & Candea, "WaRR: A Tool for High-Fidelity
// Web Application Record and Replay", DSN 2011).
//
// WaRR consists of two independent components:
//
//   - the WaRR Recorder is embedded in the web browser's engine layer,
//     where every mouse click, UI-element drag, and keystroke arrives
//     for dispatch, and logs each user action as a WaRR Command;
//   - the WaRR Replayer drives a developer-mode browser — one in which
//     normally read-only JavaScript event properties are settable —
//     through a WebDriver/ChromeDriver-style interaction driver,
//     resolving each command's target element by its recorded XPath
//     expression with progressive relaxation when the page has changed.
//
// On top of the record/replay core, package warr exposes the paper's two
// tools: WebErr (testing web applications against realistic human
// errors; see weberr.go) and AUsER (automatic user experience reports;
// see auser.go).
//
// The browser, the network, and the web applications in this module are
// simulated substrates: deterministic, in-memory reimplementations of
// the layers the paper instruments (Chrome/WebKit, HTTP(S), and the
// Google/Yahoo applications). NewDemoEnv returns a ready-made world with
// all of the paper's evaluation applications installed.
package warr

import (
	"context"
	"io"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/trace"
	"github.com/dslab-epfl/warr/internal/vclock"
	"github.com/dslab-epfl/warr/internal/webdriver"
)

// ---- browser substrate ----

// Browser is the simulated web browser hosting both WaRR components.
type Browser = browser.Browser

// Tab is one browser tab; user input enters through its hardware-level
// methods (Click, TypeText, Drag, PressKey).
type Tab = browser.Tab

// Frame is one browsing context (the main frame or an iframe).
type Frame = browser.Frame

// Mode selects the browser build.
type Mode = browser.Mode

// Browser build modes: users run UserMode browsers; the WaRR Replayer
// requires a DeveloperMode browser, which lifts the read-only
// restriction on KeyboardEvent properties (§IV-C).
const (
	UserMode      = browser.UserMode
	DeveloperMode = browser.DeveloperMode
)

// Clock is the virtual clock that drives browsers, networks, timers, and
// the elapsed-time fields of recorded commands.
type Clock = vclock.Clock

// NewClock returns a fresh virtual clock.
func NewClock() *Clock { return vclock.New() }

// ---- WaRR Commands ----

// Command is one recorded user action: its type (click, doubleclick,
// drag, type), the XPath identifier of the element acted upon,
// action-specific data, and the time elapsed since the previous action
// (§IV-B).
type Command = command.Command

// Action is the type of user action a command records.
type Action = command.Action

// Actions.
const (
	Click       = command.Click
	DoubleClick = command.DoubleClick
	Drag        = command.Drag
	Type        = command.Type
)

// Trace is a recorded interaction session.
type Trace = command.Trace

// ParseTrace parses a trace from its text serialization.
func ParseTrace(s string) (Trace, error) { return command.Parse(s) }

// ReadTrace parses a trace from a reader.
func ReadTrace(r io.Reader) (Trace, error) { return command.Read(r) }

// ---- versioned trace archives ----

// TraceArchiveHeader is the plaintext metadata block of a versioned
// trace archive: format version, scenario and application names,
// recorder identity, creation time, and forward-compatible extra keys.
type TraceArchiveHeader = trace.Header

// TraceArchiveVersion is the archive format version this build writes.
const TraceArchiveVersion = trace.Version

// TraceBodyMagic is the first line of an archive body and of a
// canonical legacy text dump.
const TraceBodyMagic = trace.BodyMagic

// TraceArchiveWriter streams a trace into an archive command by
// command; TraceArchiveReader streams it back out with strict
// validation (version check, per-line parse, footer count, gzip CRC).
type (
	TraceArchiveWriter = trace.Writer
	TraceArchiveReader = trace.Reader
)

// NewTraceArchiveWriter opens a streaming archive writer on w.
func NewTraceArchiveWriter(w io.Writer, h TraceArchiveHeader) (*TraceArchiveWriter, error) {
	return trace.NewWriter(w, h)
}

// NewTraceArchiveReader opens a streaming archive reader on r.
func NewTraceArchiveReader(r io.Reader) (*TraceArchiveReader, error) {
	return trace.NewReader(r)
}

// WriteTraceArchive archives a whole trace to w under the given header.
func WriteTraceArchive(w io.Writer, h TraceArchiveHeader, tr Trace) error {
	return trace.Write(w, h, tr)
}

// WriteTraceArchiveText archives a pre-rendered trace text body —
// e.g. a NondetLog-annotated trace — preserving its comment lines.
func WriteTraceArchiveText(w io.Writer, h TraceArchiveHeader, body string) error {
	return trace.WriteText(w, h, body)
}

// WriteTraceArchiveFile archives a trace to path;
// WriteTraceArchiveTextFile does the same for a pre-rendered body.
func WriteTraceArchiveFile(path string, h TraceArchiveHeader, tr Trace) error {
	return trace.WriteFile(path, h, tr)
}

// WriteTraceArchiveTextFile archives a pre-rendered trace text body —
// comment lines preserved — to path.
func WriteTraceArchiveTextFile(path string, h TraceArchiveHeader, body string) error {
	return trace.WriteTextFile(path, h, body)
}

// ReadTraceArchive reads a whole archive from r.
func ReadTraceArchive(r io.Reader) (TraceArchiveHeader, Trace, error) {
	return trace.Read(r)
}

// ReadTraceAuto reads a trace in either on-disk format: a versioned
// archive (detected by its magic) or the legacy Fig. 4 text dump.
// Legacy traces return a zero-valued header.
func ReadTraceAuto(r io.Reader) (TraceArchiveHeader, Trace, error) {
	return trace.ReadAuto(r)
}

// IsTraceArchive reports whether data opens like a versioned trace
// archive (as opposed to the legacy text dump).
func IsTraceArchive(data []byte) bool { return trace.IsArchive(data) }

// ---- the WaRR Recorder ----

// Recorder is the WaRR Recorder: always-on, embedded at the browser
// engine layer, logging every user action as a WaRR Command (§IV-A).
type Recorder = core.Recorder

// RecorderStats reports the recorder's own overhead (§VI).
type RecorderStats = core.Stats

// NewRecorder returns a recorder driven by the given clock. Attach it to
// a tab with its Attach method; it records until Detach.
func NewRecorder(clock *Clock) *Recorder { return core.New(clock) }

// NondetLog records nondeterminism sources alongside user actions —
// timer firings and network exchanges — realizing the extension the
// paper describes as an advantage of the engine-embedded design
// (§III-A). Its Annotate method interleaves the events into a recorded
// trace as comment lines, and the result still parses as a trace.
type NondetLog = core.NondetLog

// NondetEvent is one observed nondeterministic occurrence.
type NondetEvent = core.NondetEvent

// Nondeterminism sources.
const (
	TimerFired      = core.TimerFired
	NetworkExchange = core.NetworkExchange
)

// NewNondetLog attaches a nondeterminism log to an environment's clock
// and network.
func NewNondetLog(env *DemoEnv) *NondetLog {
	l := core.NewNondetLog(env.Clock)
	env.Network.AddObserver(l)
	return l
}

// ---- the WaRR Replayer ----

// Replayer is the WaRR Replayer: it simulates a user interacting with a
// web application as specified by WaRR Commands (§III-B).
type Replayer = replayer.Replayer

// ReplayOptions configure a Replayer.
type ReplayOptions = replayer.Options

// Pacing selects how the replayer spaces commands in virtual time.
type Pacing = replayer.Pacing

// Pacing modes: PaceRecorded reproduces the recorded think time;
// PaceNone replays with no wait (WebErr's timing-error stress, §V-B).
const (
	PaceRecorded = replayer.PaceRecorded
	PaceNone     = replayer.PaceNone
)

// ReplayResult summarizes a replay; Step describes each command's
// resolution (direct XPath match, relaxation heuristic, coordinate
// fallback, or failure).
type (
	ReplayResult = replayer.Result
	ReplayStep   = replayer.Step
)

// Step statuses.
const (
	StepOK            = replayer.StepOK
	StepRelaxed       = replayer.StepRelaxed
	StepByCoordinates = replayer.StepByCoordinates
	StepFailed        = replayer.StepFailed
)

// DriverOptions expose the ChromeDriver defect switches (§IV-C); the
// zero value is the fully fixed driver WaRR uses.
type DriverOptions = webdriver.Options

// NewReplayer returns a replayer driving the given browser. For full
// replay fidelity the browser should be a DeveloperMode build.
func NewReplayer(b *Browser, opts ReplayOptions) *Replayer {
	return replayer.New(b, opts)
}

// ---- session-based replay ----

// ReplaySession replays one trace incrementally: one command per Next
// call, or streamed through the Steps iterator, with the session's
// context checked between commands — cancellation stops the replay at
// the next command boundary with a partial result.
type ReplaySession = replayer.Session

// ReplayHooks is one observer in a session's hook chain: BeforeStep
// runs before a command is resolved, OnResolve after element resolution
// and before execution, AfterStep with the final step outcome. WebErr's
// grammar inference and AUsER's progressive snapshotting are hooks.
type ReplayHooks = replayer.Hooks

// NewReplaySession opens a replay session for the trace in a fresh tab
// of b: the start page is loaded, but no command is replayed until Next
// (or Steps) is called.
func NewReplaySession(ctx context.Context, b *Browser, tr Trace, opts ReplayOptions) (*ReplaySession, error) {
	return NewReplayer(b, opts).NewSession(ctx, tr)
}

// Replay records the common case in one call: it replays the trace in a
// fresh tab of b with default options and returns the outcome and the
// tab, whose final page state the caller's oracle may inspect. It is a
// thin wrapper over a ReplaySession run to completion.
func Replay(b *Browser, tr Trace) (*ReplayResult, *Tab, error) {
	return NewReplayer(b, ReplayOptions{}).Replay(tr)
}

// ReplayContext is Replay under a context: cancellation stops the
// session between commands and the partial result (Cancelled set) is
// returned.
func ReplayContext(ctx context.Context, b *Browser, tr Trace) (*ReplayResult, *Tab, error) {
	return NewReplayer(b, ReplayOptions{}).ReplayContext(ctx, tr)
}

// ---- the campaign executor ----

// CampaignExecutor replays many traces as independent sessions over a
// worker pool of isolated environments, sharing one prefix-failure
// pruning table. WebErr's campaigns run on it; it is exposed so other
// tools can fan replay out the same way.
type CampaignExecutor = campaign.Executor

// CampaignJob is one executor work unit: a trace plus caller metadata.
type CampaignJob = campaign.Job

// CampaignOutcome is the per-job result, in job order.
type CampaignOutcome = campaign.Outcome

// ExecutorOptions configure a CampaignExecutor (Parallelism, replayer
// options, pruning, the per-job Inspect callback).
type ExecutorOptions = campaign.Options

// PruneTable is the concurrency-safe prefix-failure-pruning table
// campaign workers share (§V-A heuristic 1).
type PruneTable = campaign.PruneTable

// NewCampaignExecutor returns an executor creating one isolated
// environment per job from newEnv.
func NewCampaignExecutor(newEnv EnvFactory, opts ExecutorOptions) *CampaignExecutor {
	return campaign.New(newEnv, opts)
}

// NewPruneTable returns an empty pruning table, for campaigns that span
// several executors.
func NewPruneTable() *PruneTable { return campaign.NewPruneTable() }
