module github.com/dslab-epfl/warr

go 1.23.0
