package warr

import (
	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/record"
	"github.com/dslab-epfl/warr/internal/registry"
)

// DemoEnv is a self-contained simulated world: a virtual clock, an
// in-memory network, a browser, and every registered web application —
// out of the box, the five the paper's evaluation uses (Google Sites,
// GMail, the Yahoo! portal, Google Docs, and three web search engines)
// plus any App the process registered. Each DemoEnv is fully isolated —
// fresh server state, fresh clock — which is what makes
// record-in-one-environment, replay-in-another meaningful.
type DemoEnv = Env

// Scenario is a scripted user session against a registered application,
// with a built-in oracle (Verify) deciding whether the session's
// observable effect happened.
type Scenario = registry.Scenario

// NewDemoEnv builds an isolated environment with all registered
// applications, hosting a browser of the given mode. It is sugar over
// NewEnv with the full default registry.
func NewDemoEnv(mode Mode) *DemoEnv { return registry.MustNewEnv(mode) }

// Demo application start URLs.
const (
	SitesURL   = apps.SitesURL
	GMailURL   = apps.GMailURL
	YahooURL   = apps.YahooURL
	DocsURL    = apps.DocsURL
	GoogleURL  = apps.GoogleURL
	BingURL    = apps.BingURL
	YSearchURL = apps.YSearchURL
)

// Demo scenarios — the workloads of the paper's Table II.
var (
	EditSiteScenario        = apps.EditSiteScenario
	ComposeEmailScenario    = apps.ComposeEmailScenario
	AuthenticateScenario    = apps.AuthenticateScenario
	EditSpreadsheetScenario = apps.EditSpreadsheetScenario
	SearchScenario          = apps.SearchScenario
	TableIIScenarios        = apps.TableIIScenarios
)

// ScenarioByName resolves a registered scenario name ("edit-site",
// "compose-email", ...); ScenarioNames lists them. Both are thin
// wrappers over the default registry — LookupScenario is the typed-error
// form.
var (
	ScenarioByName = apps.ScenarioByName
	ScenarioNames  = apps.ScenarioNames
)

// RecordOptions configure RecordScenario: the browser mode (default
// UserMode), a pre-built environment to record in, nondeterminism
// logging, and whether the live session's oracle must pass.
type RecordOptions = record.Options

// RecordedSession is a recorded scenario with the live session around
// it: the trace, recorder stats, the recording environment and tab
// (recorder already detached), and — when requested — the
// nondeterminism log, whose annotated trace Annotated renders.
type RecordedSession = record.Recorded

// RecordScenario records a scenario end to end on the one record path
// every tool shares: create (or adopt) an environment, navigate a tab
// to the scenario's start page, attach a Recorder, run the scenario,
// and detach before returning.
func RecordScenario(sc Scenario, opts RecordOptions) (*RecordedSession, error) {
	return record.Record(sc, opts)
}

// RecordSession records a scenario in a fresh user-mode environment and
// returns the trace — the common case of RecordScenario.
func RecordSession(sc Scenario) (Trace, error) {
	r, err := record.Record(sc, record.Options{})
	if err != nil {
		return Trace{}, err
	}
	return r.Trace, nil
}
