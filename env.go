package warr

import (
	"github.com/dslab-epfl/warr/internal/apps"
)

// DemoEnv is a self-contained simulated world: a virtual clock, an
// in-memory network, a browser, and the five web applications the
// paper's evaluation uses (Google Sites, GMail, the Yahoo! portal,
// Google Docs, and three web search engines). Each DemoEnv is fully
// isolated — fresh server state, fresh clock — which is what makes
// record-in-one-environment, replay-in-another meaningful.
type DemoEnv = apps.Env

// Scenario is a scripted user session against a demo application, with
// a built-in oracle (Verify) deciding whether the session's observable
// effect happened.
type Scenario = apps.Scenario

// NewDemoEnv builds an isolated environment with all demo applications
// registered, hosting a browser of the given mode.
func NewDemoEnv(mode Mode) *DemoEnv { return apps.NewEnv(mode) }

// Demo application start URLs.
const (
	SitesURL   = apps.SitesURL
	GMailURL   = apps.GMailURL
	YahooURL   = apps.YahooURL
	DocsURL    = apps.DocsURL
	GoogleURL  = apps.GoogleURL
	BingURL    = apps.BingURL
	YSearchURL = apps.YSearchURL
)

// Demo scenarios — the workloads of the paper's Table II.
var (
	EditSiteScenario        = apps.EditSiteScenario
	ComposeEmailScenario    = apps.ComposeEmailScenario
	AuthenticateScenario    = apps.AuthenticateScenario
	EditSpreadsheetScenario = apps.EditSpreadsheetScenario
	SearchScenario          = apps.SearchScenario
	TableIIScenarios        = apps.TableIIScenarios
)

// ScenarioByName resolves a scenario name ("edit-site", "compose-email",
// "authenticate", "edit-spreadsheet"); ScenarioNames lists them.
var (
	ScenarioByName = apps.ScenarioByName
	ScenarioNames  = apps.ScenarioNames
)

// RecordSession records a scenario end to end: it creates a fresh
// user-mode environment, navigates a tab to the scenario's start page,
// attaches a Recorder, runs the scenario, and returns the trace.
func RecordSession(sc Scenario) (Trace, error) {
	env := NewDemoEnv(UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		return Trace{}, err
	}
	rec := NewRecorder(env.Clock)
	rec.Attach(tab)
	// Detach before returning: the recorder must not keep logging into
	// the returned trace if the caller goes on using the tab.
	defer rec.Detach()
	if err := sc.Run(env, tab); err != nil {
		return Trace{}, err
	}
	return rec.Trace(), nil
}
