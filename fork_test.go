package warr_test

import (
	"testing"

	warr "github.com/dslab-epfl/warr"
	"github.com/dslab-epfl/warr/apps/calendar"
)

// TestEnvForkPublicSurface exercises environment forking through the
// public API only, against the calendar plugin — itself written purely
// on the public surface. Every registered application, plugin included,
// must implement AppSnapshotter for the default world to fork.
func TestEnvForkPublicSurface(t *testing.T) {
	for _, app := range warr.RegisteredApps() {
		st := app.NewState()
		if _, ok := st.(warr.AppSnapshotter); !ok {
			t.Errorf("app %q state (%T) does not implement AppSnapshotter", app.Name(), st)
		}
	}

	tr, err := warr.RecordSession(calendar.CreateEventScenario())
	if err != nil {
		t.Fatal(err)
	}

	env := warr.NewDemoEnv(warr.DeveloperMode)
	s, err := warr.NewReplaySession(nil, env.Browser, tr, warr.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr.Commands)/2; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at %d", i)
		}
	}

	// Fork the world mid-replay and finish the trace in the fork.
	forkEnv, err := env.Fork()
	if err != nil {
		t.Fatalf("Env.Fork: %v", err)
	}
	fork, err := s.Fork()
	if err != nil {
		t.Fatalf("Session.Fork: %v", err)
	}
	if res := fork.Run(); !res.Complete() {
		t.Fatalf("forked replay incomplete: %+v", res)
	}
	sessEnv, ok := fork.Tab().Browser().World().(*warr.Env)
	if !ok {
		t.Fatalf("forked browser world is %T, want *warr.Env", fork.Tab().Browser().World())
	}
	if got := len(calendar.StateIn(sessEnv).Events()); got != 1 {
		t.Errorf("forked world stored %d events, want 1", got)
	}
	// The plain Env.Fork copy is a world of its own, not affected by
	// either replay.
	if got := len(calendar.StateIn(forkEnv).Events()); got != 0 {
		t.Errorf("mid-replay env fork stored %d events, want 0", got)
	}
	// The parent finishes independently.
	if res := s.Run(); !res.Complete() {
		t.Fatalf("parent replay incomplete: %+v", res)
	}
	if got := len(calendar.StateIn(env).Events()); got != 1 {
		t.Errorf("parent world stored %d events, want 1", got)
	}
}
