// Parallel campaign execution: WebErr generates hundreds of erroneous
// traces per application (paper §V), and each replays in its own
// isolated environment — an embarrassingly parallel workload. This
// example runs the edit-site navigation campaign twice, sequentially
// and fanned out over 8 concurrent replay sessions, and shows that the
// findings are identical: prefix-failure pruning races only shift the
// replayed/pruned split, never which bugs the oracle flags.
//
//	go run ./examples/parallel-campaign
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	// Record the correct session and infer its grammar (Fig. 5, steps 1-2).
	trace, err := warr.RecordSession(warr.EditSiteScenario())
	if err != nil {
		log.Fatal(err)
	}
	fresh := warr.NewEnvFactory(warr.DeveloperMode)
	tree, err := warr.InferTaskTree(fresh, trace)
	if err != nil {
		log.Fatal(err)
	}
	grammar := warr.GrammarFromTaskTree(tree)
	fmt.Printf("grammar yields %d single-error mutants\n\n", len(warr.Mutants(grammar, warr.InjectOptions{})))

	// The erroneous traces replay with no wait time, so the §V-C timing
	// bug class surfaces as findings the two runs must agree on.
	opts := warr.CampaignOptions{
		Replayer: warr.ReplayOptions{Pacing: warr.PaceNone},
	}

	run := func(parallelism int) (*warr.CampaignReport, time.Duration) {
		o := opts
		o.Parallelism = parallelism
		start := time.Now()
		rep := warr.RunNavigationCampaign(fresh, grammar, o)
		return rep, time.Since(start)
	}

	seq, seqTime := run(1)
	fmt.Printf("sequential:     %d replayed, %d pruned, %d findings in %s\n",
		seq.Replayed, seq.Pruned, len(seq.Findings), seqTime.Round(time.Millisecond))

	par, parTime := run(8)
	fmt.Printf("parallelism 8:  %d replayed, %d pruned, %d findings in %s\n",
		par.Replayed, par.Pruned, len(par.Findings), parTime.Round(time.Millisecond))

	if !sameFindings(seq, par) {
		log.Fatal("parallel campaign diverged from the sequential run")
	}
	fmt.Println("\nfindings identical at both parallelisms:")
	for _, f := range par.Findings {
		fmt.Printf("  BUG under [%s]\n", f.Injection)
	}
}

// sameFindings compares the two reports' finding sets by injection.
func sameFindings(a, b *warr.CampaignReport) bool {
	keys := func(rep *warr.CampaignReport) []string {
		out := make([]string, len(rep.Findings))
		for i, f := range rep.Findings {
			out[i] = f.Injection.String()
		}
		sort.Strings(out)
		return out
	}
	ka, kb := keys(a), keys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
