// Nondeterminism tracing (paper §III-A): because the WaRR Recorder
// lives inside the browser engine, it "can easily be extended to record
// various sources of nondeterminism (e.g., timers)". This example
// records the same Google Sites editing session twice — once patient,
// once impatient — with the nondeterminism log attached, and prints the
// annotated traces side by side.
//
// The annotations make the §V-C bug's cause visible at a glance: in the
// passing run the editor-module fetch and its timer land *between* the
// Edit click and the first keystroke; in the failing run the Save click
// arrives before any module traffic, so the Save handler dereferences
// the uninitialized editor variable.
//
//	go run ./examples/nondet-tracing
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	fmt.Println("=== patient user (editor loads before typing) ===")
	patient, err := annotatedSession(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(patient)

	fmt.Println("=== impatient user (saves before the editor module arrives) ===")
	impatient, err := annotatedSession(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(impatient)

	if !strings.Contains(impatient, "TypeError") {
		log.Fatal("expected the impatient run to hit the §V-C bug")
	}
}

// annotatedSession records an edit-site interaction with the
// nondeterminism log attached and returns the annotated trace (plus the
// console outcome).
func annotatedSession(patient bool) (string, error) {
	env := warr.NewDemoEnv(warr.UserMode)
	ndlog := warr.NewNondetLog(env)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.SitesURL); err != nil {
		return "", err
	}
	rec := warr.NewRecorder(env.Clock)
	rec.Attach(tab)
	// Detach on every path: the trace below must be a closed artifact.
	defer rec.Detach()
	start := env.Clock.Now()
	tab.AdvanceTime(100 * time.Millisecond) // the user reads the page first

	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	if patient {
		tab.AdvanceTime(2 * warr.NewDemoEnv(warr.UserMode).Network.Latency())
		tab.TypeText("hi")
	}
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
			break
		}
	}

	rec.Detach()
	out := ndlog.Annotate(rec.Trace(), start)
	for _, e := range tab.ConsoleErrors() {
		out += "console: " + e.Message + "\n"
	}
	return out, nil
}
