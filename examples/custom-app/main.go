// Custom-app: bring your own web application and workload — the
// environment API is an open world.
//
// This example defines a tiny guestbook application and a "sign the
// guestbook" scenario entirely on the public API (no internal
// packages), registers both, and then runs the paper's Fig. 1 loop
// over them: record the session in one environment, replay the trace
// in a brand-new one, and check the oracle there. After registration
// the same workload is also available to the command-line tools by
// name (warr-record/weberr -scenario sign-guestbook), because they
// resolve scenarios through the same registry.
//
//	go run ./examples/custom-app
package main

import (
	"fmt"
	"log"
	"sync"

	warr "github.com/dslab-epfl/warr"
)

// ---- the application plugin ----

// Guestbook hosts guestbook.test: a message box and a scripted Sign
// control appending entries server-side.
type Guestbook struct{}

func (Guestbook) Name() string     { return "Guestbook" }
func (Guestbook) Host() string     { return "guestbook.test" }
func (Guestbook) StartURL() string { return "http://guestbook.test/" }

// NewState returns fresh per-environment server state: two environments
// hosting the Guestbook never share entries.
func (Guestbook) NewState() warr.AppState { return newGuestbookState() }

type guestbookState struct {
	srv *warr.WebServer

	mu      sync.Mutex
	entries []string
}

func newGuestbookState() *guestbookState {
	s := &guestbookState{}
	srv := warr.NewWebServer("guestbook")
	srv.Handle("/", s.home)
	srv.Handle("/sign", s.sign)
	s.srv = srv
	return s
}

func (s *guestbookState) Handler() warr.WebHandler { return s.srv }

// Snapshot implements warr.AppSnapshotter — the ~10 lines that make
// Guestbook environments forkable, so campaigns share trace prefixes
// via checkpoints instead of replaying every erroneous trace from
// command zero. Deep-copy the data, copy the issued sessions, share
// nothing mutable.
func (s *guestbookState) Snapshot() warr.AppState {
	dup := newGuestbookState()
	s.mu.Lock()
	dup.entries = append([]string(nil), s.entries...)
	s.mu.Unlock()
	dup.srv.CopySessionsFrom(s.srv)
	return dup
}

func (s *guestbookState) Reset() {
	s.mu.Lock()
	s.entries = nil
	s.mu.Unlock()
	s.srv.ResetSessions()
}

func (s *guestbookState) Entries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.entries...)
}

func (s *guestbookState) home(req *warr.WebRequest, sess *warr.WebSession) *warr.WebResponse {
	s.mu.Lock()
	entries := append([]string(nil), s.entries...)
	s.mu.Unlock()

	list := `<div class="empty">Be the first to sign!</div>`
	if len(entries) > 0 {
		list = ""
		for i, e := range entries {
			list += fmt.Sprintf(`<div class="entry" id="e%d">%s</div>`, i+1, warr.HTMLEscape(e))
		}
	}
	body := fmt.Sprintf(`
<div id="hdr">Guestbook</div>
<div>Message <input id="msg" name="msg"></div>
<div id="sign" name="sign">Sign</div>
<div id="entries">%s</div>`, list)

	// The Sign control is scripted (not a form submit): exactly the
	// kind of action page-level recorders miss and the engine-embedded
	// WaRR Recorder captures.
	script := `
document.getElementById("sign").addEventListener("click", function(e) {
	var msg = document.getElementById("msg").value;
	window.location = "/sign?msg=" + encodeURIComponent(msg);
});
`
	return warr.WebOK(warr.WebPage("Guestbook", body, script))
}

func (s *guestbookState) sign(req *warr.WebRequest, sess *warr.WebSession) *warr.WebResponse {
	if msg := req.Form.Get("msg"); msg != "" {
		s.mu.Lock()
		s.entries = append(s.entries, msg)
		s.mu.Unlock()
	}
	return warr.WebRedirect("/")
}

// ---- the scenario, on the declarative builder ----

// signScenario types a message and signs. The oracle reads the
// server-side state back through the environment's registry lookup.
func signScenario() warr.Scenario {
	const message = "WaRR was here"
	return warr.NewScenario(Guestbook{}, "Sign guestbook").
		ClickID("msg").
		Type(message).
		Pause().
		ClickName("sign").
		Verify(func(env *warr.Env, tab *warr.Tab) error {
			st, ok := env.State("Guestbook")
			if !ok {
				return fmt.Errorf("guestbook not hosted")
			}
			entries := st.(*guestbookState).Entries()
			if len(entries) != 1 || entries[0] != message {
				return fmt.Errorf("entries = %q, want [%q]", entries, message)
			}
			return nil
		}).
		MustBuild()
}

func main() {
	// 1. Register the plugin: from here on, every NewDemoEnv hosts the
	// guestbook next to the paper's applications, and the scenario
	// resolves by name everywhere.
	warr.MustRegisterApp(Guestbook{})
	warr.MustRegisterScenario("sign-guestbook", signScenario)

	sc, err := warr.LookupScenario("sign-guestbook")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q against %s; steps:\n", sc.Name, sc.App)
	for _, step := range sc.Steps {
		fmt.Printf("  %s\n", step)
	}

	// 2. Record the session (the shared record path: navigate, attach,
	// run, detach).
	trace, err := warr.RecordSession(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d WaRR Commands\n", len(trace.Commands))

	// 3. Replay in a brand-new environment and apply the oracle there.
	env := warr.NewDemoEnv(warr.DeveloperMode)
	res, tab, err := warr.Replay(env.Browser, trace)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Complete() {
		log.Fatalf("replay incomplete: %d failed", res.Failed)
	}
	if err := sc.Verify(env, tab); err != nil {
		log.Fatalf("replay did not reproduce the session: %v", err)
	}
	fmt.Println("replayed in a fresh environment: guestbook signed there too")

	// 4. The same trace drives a WebErr timing campaign — any
	// registered workload is campaign-testable.
	fresh := warr.NewEnvFactory(warr.DeveloperMode)
	rep := warr.RunTimingCampaign(fresh, trace, warr.CampaignOptions{})
	fmt.Printf("timing campaign: %d erroneous traces replayed, %d findings\n",
		rep.Replayed, len(rep.Findings))
}
