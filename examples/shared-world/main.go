// Multi-user shared worlds: a load campaign runs N virtual users —
// per-user browsers and cookie jars — against ONE shared application
// environment, serialized onto the virtual clock by an explicit
// schedule, so every interleaving is a replayable value. This example
// shows the class of bug that makes the machinery worth having: a
// lost update that NO single-user campaign can reach, because it only
// exists between two sessions racing a read-modify-write. It then
// re-runs the same campaign at parallelism 8 with result sharing
// disabled and shows the findings report is byte-identical — the
// determinism contract that makes a schedule string a bug report.
//
//	go run ./examples/shared-world
package main

import (
	"context"
	"fmt"
	"log"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	ctx := context.Background()

	// One user per world: the Sites notes page's read-modify-write
	// races only against itself, so the explorer can try every
	// interleaving of a 1-user world and find nothing.
	solo, err := warr.RunLoadCampaign(ctx, warr.LoadOptions{
		Workload: "sites-notes", Users: 1, Cohort: 1, Budget: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-user worlds: %d findings — the bug does not exist alone\n\n", len(solo.Findings))

	// Two users in one shared world: the explorer perturbs the
	// interleaving (seeded, bounded, deduplicated) and surfaces the
	// lost update, with the exact schedule that reproduces it.
	shared, err := warr.RunLoadCampaign(ctx, warr.LoadOptions{
		Workload: "sites-notes", Users: 2, Cohort: 2, Budget: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(shared.Render())

	// A schedule is a value: "users:2;slots:0,1,0,1" means user 0's
	// first op, then user 1's, then user 0's second, then user 1's.
	// Parse it back and it is the complete recipe for the interleaving.
	sched, err := warr.ParseLoadSchedule(shared.Findings[0].Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreproducing schedule replays %d interleaved ops across %d users\n",
		len(sched.Slots), sched.Users)

	// The determinism contract: same (seed, budget) means the same
	// report bytes at any parallelism and with sharing ablated —
	// worlds re-executed instead of served from the dedup cache.
	again, err := warr.RunLoadCampaign(ctx, warr.LoadOptions{
		Workload: "sites-notes", Users: 2, Cohort: 2, Budget: 4, Seed: 1,
		Parallelism: 8, DisableSharing: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if shared.Render() != again.Render() {
		log.Fatal("parallel unshared run diverged from the serial run")
	}
	fmt.Println("parallelism 8 + sharing ablated: report byte-identical")
}
