// Quickstart: record a user session and replay it — Fig. 1 of the paper
// in ~40 lines.
//
// A user edits a Google Sites page ("Hello world!") in a user-mode
// browser while the WaRR Recorder, embedded at the browser's engine
// layer, logs every click and keystroke as WaRR Commands. The trace is
// then replayed by the WaRR Replayer in a completely fresh environment
// (new server state, new browser — developer mode), and the replayed
// session produces the same observable effect: the page is saved with
// the typed text.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	// 1. Record: run the edit-site session with the recorder attached.
	scenario := warr.EditSiteScenario()
	trace, err := warr.RecordSession(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d WaRR Commands:\n\n%s\n", len(trace.Commands), trace.CommandsText())

	// 2. The trace is a durable text artifact (paper Fig. 4 format).
	parsed, err := warr.ParseTrace(trace.Text())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay in a brand-new environment with a developer-mode
	// browser (settable event properties — §IV-C). The session API
	// streams steps as they replay; one-shot warr.Replay wraps this.
	env := warr.NewDemoEnv(warr.DeveloperMode)
	session, err := warr.NewReplaySession(context.Background(), env.Browser, parsed, warr.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for step := range session.Steps() {
		fmt.Printf("  %-8s %s\n", step.Status, step.Cmd)
	}
	result, tab := session.Result(), session.Tab()
	fmt.Printf("replayed %d/%d commands\n", result.Played, len(parsed.Commands))

	// 4. The replayed session reproduces the user's effect.
	if err := scenario.Verify(env, tab); err != nil {
		log.Fatalf("replay did not reproduce the session: %v", err)
	}
	fmt.Println("verified: the replayed page was saved with the typed text")
}
