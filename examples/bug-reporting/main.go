// Bug reporting with AUsER (paper §VI): an always-on recorder means
// that when a bug manifests, the complete bug-triggering interaction is
// already captured. The user files a report with one click; sensitive
// keystrokes are redacted and the report is encrypted so only the
// application's developers can read it (§IV-D).
//
// The developers' side is replay as a service: this example boots a
// local warr-serve on a loopback port, POSTs the sealed envelope to
// /api/reports, and watches the ingestion job (replay → minimize →
// classify) through the HTTP API — exactly what a production AUsER
// deployment would run behind the report button.
//
//	go run ./examples/bug-reporting
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	// The user's ordinary session — recording is always on.
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		log.Fatal(err)
	}
	recorder := warr.NewRecorder(env.Clock)
	recorder.Attach(tab)

	scenario := warr.AuthenticateScenario()
	if err := scenario.Run(env, tab); err != nil {
		log.Fatal(err)
	}
	fmt.Println("user signed in (the trace now contains their password)")

	// The user hits a bug and presses the report button. Recording stops
	// — the trace must not grow while the report is assembled — and the
	// trace is redacted before it leaves the machine: keystrokes into
	// elements whose XPath mentions "pass" become "*".
	recorder.Detach()
	report, err := warr.NewUserReport(
		"After signing in, the page looks wrong.",
		recorder.Trace(), tab,
		warr.ReportOptions{Redact: warr.RedactMatching("pass")},
	)
	if err != nil {
		log.Fatal(err)
	}

	if strings.Contains(report.Trace.Text(), "epfl2011") {
		log.Fatal("password leaked into the report")
	}
	fmt.Println("password keystrokes redacted; user-visible actions preserved")

	// Encrypt to the developers' public key: hybrid RSA-OAEP + AES-GCM.
	devKey, err := warr.GenerateDeveloperKey(2048)
	if err != nil {
		log.Fatal(err)
	}
	envelope, err := warr.SealReport(report, &devKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := envelope.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed report: %d bytes on the wire\n\n", len(wire))

	// The developers' side: a warr-serve daemon holding the private key.
	srv := warr.NewJobServer(warr.JobServerOptions{DeveloperKey: devKey})
	defer srv.Engine().Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("warr-serve listening on %s\n", base)

	// The sealed envelope goes over the wire; the server opens it and
	// enqueues a report-ingestion job: replay, minimize, classify.
	resp, err := http.Post(base+"/api/reports", "application/json", bytes.NewReader(wire))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("report rejected: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("report accepted: job %s (%s)\n", job.ID, job.State)

	// Watch the job through the same API a dashboard would poll.
	var final struct {
		State   string `json:"state"`
		Played  int    `json:"played"`
		Failed  int    `json:"failed"`
		Verdict string `json:"verdict"`
		Error   string `json:"error"`
	}
	for {
		resp, err := http.Get(base + "/api/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if final.State != "queued" && final.State != "running" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != "done" {
		log.Fatalf("ingestion job ended %s: %s", final.State, final.Error)
	}

	fmt.Printf("ingestion finished: %d commands replayed, %d failed\n", final.Played, final.Failed)
	fmt.Printf("classification: %s\n\n", final.Verdict)
	fmt.Println("developers received:")
	fmt.Println(report.Text())
}
