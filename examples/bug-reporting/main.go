// Bug reporting with AUsER (paper §VI): an always-on recorder means
// that when a bug manifests, the complete bug-triggering interaction is
// already captured. The user files a report with one click; sensitive
// keystrokes are redacted and the report is encrypted so only the
// application's developers can read it (§IV-D).
//
// The session here: a user signs in to the Yahoo! portal (typing a
// password!), then hits a bug. The password keystrokes are stripped from
// the shared trace while every other command survives, so developers
// can still drive the application down the same path.
//
//	go run ./examples/bug-reporting
package main

import (
	"fmt"
	"log"
	"strings"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	// The user's ordinary session — recording is always on.
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		log.Fatal(err)
	}
	recorder := warr.NewRecorder(env.Clock)
	recorder.Attach(tab)

	scenario := warr.AuthenticateScenario()
	if err := scenario.Run(env, tab); err != nil {
		log.Fatal(err)
	}
	fmt.Println("user signed in (the trace now contains their password)")

	// The user hits a bug and presses the report button. The trace is
	// redacted before it leaves the machine: keystrokes into elements
	// whose XPath mentions "pass" become "*".
	report, err := warr.NewUserReport(
		"After signing in, the page looks wrong.",
		recorder.Trace(), tab,
		warr.ReportOptions{Redact: warr.RedactMatching("pass")},
	)
	if err != nil {
		log.Fatal(err)
	}

	if strings.Contains(report.Trace.Text(), "epfl2011") {
		log.Fatal("password leaked into the report")
	}
	fmt.Println("password keystrokes redacted; user-visible actions preserved")

	// Encrypt to the developers' public key: hybrid RSA-OAEP + AES-GCM.
	devKey, err := warr.GenerateDeveloperKey(2048)
	if err != nil {
		log.Fatal(err)
	}
	envelope, err := warr.SealReport(report, &devKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := envelope.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed report: %d bytes on the wire\n\n", len(wire))

	// Developers decrypt and read.
	received, err := warr.OpenReport(envelope, devKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("developers received:")
	fmt.Println(received.Text())
}
