// Human-error testing with WebErr (paper §V): record a correct session,
// infer the user-interaction grammar, inject realistic human errors, and
// replay the erroneous traces to see how the application copes.
//
// This example reproduces the paper's §V-C case study: injecting timing
// errors into an edit-Google-Sites session makes the application
// dereference an uninitialized JavaScript variable — the bug the
// authors found in the real Google Sites.
//
//	go run ./examples/human-error-testing
package main

import (
	"fmt"
	"log"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	// Step 1 (Fig. 5): record the interaction between a user and the
	// web application as a trace.
	trace, err := warr.RecordSession(warr.EditSiteScenario())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: recorded %d commands\n", len(trace.Commands))

	// Every replay runs in a fresh, isolated environment.
	fresh := warr.NewEnvFactory(warr.DeveloperMode)

	// Steps 2-3: infer the task tree (Fig. 6) and its grammar; derive
	// single-error mutants confined to individual grammar rules.
	tree, err := warr.InferTaskTree(fresh, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: inferred task tree (depth %d):\n%s", tree.Depth(), tree)

	grammar := warr.GrammarFromTaskTree(tree)
	mutants := warr.Mutants(grammar, warr.InjectOptions{})
	fmt.Printf("step 3: %d erroneous grammars (forget / reorder / substitute)\n", len(mutants))

	// Step 4: replay the erroneous traces and let the oracle judge.
	// Parallelism fans the campaign out over isolated environments; the
	// findings are the same as a sequential run.
	fmt.Println("\nnavigation-error campaign:")
	nav := warr.RunNavigationCampaign(fresh, grammar, warr.CampaignOptions{Parallelism: 4})
	fmt.Printf("  generated %d, replayed %d (pruned %d), findings %d\n",
		nav.Generated, nav.Replayed, nav.Pruned, len(nav.Findings))

	fmt.Println("timing-error campaign (impatient users, §V-B):")
	timing := warr.RunTimingCampaign(fresh, trace, warr.CampaignOptions{})
	for _, f := range timing.Findings {
		fmt.Printf("  BUG under [%s]:\n    %v\n", f.Injection, f.Observed)
	}
	if len(timing.Findings) == 0 {
		log.Fatal("expected the Google Sites timing bug")
	}
	fmt.Println("\nthe §V-C uninitialized-variable bug reproduces under injected timing errors")
}
