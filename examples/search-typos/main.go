// Search-engine typo tolerance (paper Table I, in miniature): type
// mistyped queries into the three simulated search engines through the
// full record-and-replay pipeline and see which engines detect and fix
// the typos.
//
// The engines differ exactly where the real ones did in 2011: the
// Google-shaped engine corrects whole queries against its query logs,
// the Yahoo-shaped engine corrects words within edit distance 2 over a
// slightly gappy dictionary, and the Bing-shaped engine only reaches
// edit distance 1 — so transposition typos (distance 2) escape it.
//
//	go run ./examples/search-typos
package main

import (
	"fmt"
	"log"
	"strings"

	warr "github.com/dslab-epfl/warr"
)

// typos pairs correct queries with mistyped variants (substitution,
// omission, transposition — the humanerr models).
var typos = []struct{ original, typoed string }{
	{"facebook privacy settings", "facebook pricavy settings"},       // transposition
	{"harry potter deathly hallows", "harry pottre deathly hallows"}, // transposition
	{"android phones comparison", "android phnes comparison"},        // omission
	{"world cup south africa", "world cup sputh africa"},             // substitution
}

func main() {
	engines := []struct{ name, url string }{
		{"Google", warr.GoogleURL},
		{"Bing", warr.BingURL},
		{"Yahoo!", warr.YSearchURL},
	}

	fmt.Printf("%-28s %-10s %-10s %s\n", "typoed query", "Google", "Bing", "Yahoo!")
	for _, q := range typos {
		verdicts := make([]string, 0, len(engines))
		for _, eng := range engines {
			fixed, err := searchAndCheck(eng.url, q.typoed, q.original)
			if err != nil {
				log.Fatal(err)
			}
			if fixed {
				verdicts = append(verdicts, "fixed")
			} else {
				verdicts = append(verdicts, "missed")
			}
		}
		fmt.Printf("%-28s %-10s %-10s %s\n", q.typoed, verdicts[0], verdicts[1], verdicts[2])
	}
}

// searchAndCheck records a session typing the typoed query, replays it
// in a fresh environment, and checks whether the engine's results page
// shows the original query.
func searchAndCheck(engineURL, typoed, original string) (bool, error) {
	trace, err := warr.RecordSession(warr.SearchScenario(engineURL, typoed))
	if err != nil {
		return false, err
	}
	env := warr.NewDemoEnv(warr.DeveloperMode)
	res, tab, err := warr.Replay(env.Browser, trace)
	if err != nil {
		return false, err
	}
	if !res.Complete() {
		return false, fmt.Errorf("replay incomplete: %d failed", res.Failed)
	}
	banner := tab.MainFrame().Doc().GetElementByID("corrected")
	if banner == nil {
		return false, nil
	}
	return strings.TrimSpace(banner.TextContent()) == original, nil
}
