package warr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	warr "github.com/dslab-epfl/warr"
)

// corpusTrace loads the committed correct trace for a corpus entry.
func corpusTrace(t *testing.T, name string) warr.Trace {
	t.Helper()
	data, err := os.ReadFile("testdata/corpus/" + name + ".warr")
	if err != nil {
		t.Fatal(err)
	}
	rd, err := warr.NewTraceArchiveReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rd.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// fuzzCampaign runs one fuzz-campaign job over the given trace and
// returns its stats.
func fuzzCampaign(t *testing.T, spec warr.JobSpec) *warr.FuzzCampaignStats {
	t.Helper()
	engine := warr.NewJobEngine(warr.JobEngineOptions{Workers: 1, QueueDepth: 1})
	defer engine.Close()
	spec.Kind = warr.JobFuzzCampaign
	job, err := engine.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_ = job.Wait(nil)
	if err := job.Err(); err != nil {
		t.Fatal(err)
	}
	st := job.FuzzStats()
	if st == nil {
		t.Fatal("fuzz campaign finished without stats")
	}
	return st
}

// renderFuzzStats flattens a stats report — counters and findings, in
// discovery order — into one comparable string.
func renderFuzzStats(st *warr.FuzzCampaignStats) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "generated=%d deduped=%d pruned=%d replayed=%d replayFailures=%d skipped=%d novel=%d corpus=%d bits=%d\n",
		st.Generated, st.Deduped, st.Pruned, st.Replayed, st.ReplayFailures,
		st.Skipped, st.Novel, st.CorpusSize, st.CoverageBits)
	for _, f := range st.Findings {
		fmt.Fprintf(&b, "finding %s | %s\n%s", f.Program, f.Observed, f.Trace.Text())
	}
	return b.String()
}

// TestFuzzCampaignDeterministic is the campaign's reproducibility
// contract: a fixed seed and budget yield a byte-identical findings
// report — and identical campaign counters — at any parallelism, with
// prefix sharing on or off. The loop earns this by keeping all
// bookkeeping serial and in outcome-index order; this test is what
// keeps that property from regressing.
func TestFuzzCampaignDeterministic(t *testing.T) {
	tr := corpusTrace(t, "edit-site")
	configs := []warr.JobSpec{
		{Trace: tr, FuzzBudget: 24, FuzzSeed: 7, Parallelism: 1, DisablePrefixSharing: true},
		{Trace: tr, FuzzBudget: 24, FuzzSeed: 7, Parallelism: 4, DisablePrefixSharing: true},
		{Trace: tr, FuzzBudget: 24, FuzzSeed: 7, Parallelism: 4},
	}
	var want string
	for i, spec := range configs {
		got := renderFuzzStats(fuzzCampaign(t, spec))
		if i == 0 {
			want = got
			if want == "" {
				t.Fatal("empty stats report")
			}
			continue
		}
		if got != want {
			t.Errorf("config %d (parallelism %d, sharing %v) diverged:\n--- want\n%s--- got\n%s",
				i, spec.Parallelism, !spec.DisablePrefixSharing, want, got)
		}
	}

	// A different seed must explore differently — determinism is
	// seeded, not degenerate. Small budgets never leave the (seed-
	// independent) enumeration phase, so this comparison runs with
	// enough budget to reach corpus-driven mutation.
	a := renderFuzzStats(fuzzCampaign(t, warr.JobSpec{
		Trace: tr, FuzzBudget: 120, FuzzSeed: 7, Parallelism: 4,
	}))
	b := renderFuzzStats(fuzzCampaign(t, warr.JobSpec{
		Trace: tr, FuzzBudget: 120, FuzzSeed: 8, Parallelism: 4,
	}))
	if a == b {
		t.Error("seeds 7 and 8 produced identical campaigns")
	}
}

// editSiteGolden mirrors the campaign slice of the corpus golden file.
type editSiteGolden struct {
	Navigation struct {
		Generated      int `json:"generated"`
		Replayed       int `json:"replayed"`
		Pruned         int `json:"pruned"`
		ReplayFailures int `json:"replayFailures"`
		Findings       int `json:"findings"`
	} `json:"navigation"`
	Timing struct {
		Findings   int      `json:"findings"`
		Injections []string `json:"injections"`
	} `json:"timing"`
}

// TestFuzzCampaignSupersetOfEnumerated checks the fuzzer against the
// paper's enumerated §V campaigns on the committed edit-site trace: the
// enumerated results must still match the pinned golden counts, and
// every bug the enumerated campaigns expose must also fall out of a
// budgeted fuzz run — same observed oracle verdicts, reached through
// the error-model DSL instead of the fixed grammar.
func TestFuzzCampaignSupersetOfEnumerated(t *testing.T) {
	data, err := os.ReadFile("testdata/corpus/edit-site.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden editSiteGolden
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	tr := corpusTrace(t, "edit-site")
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }

	// Enumerated navigation campaign, pinned to the golden counts.
	tree, err := warr.InferTaskTree(fresh, tr)
	if err != nil {
		t.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	nav := warr.RunNavigationCampaign(fresh, g, warr.CampaignOptions{Oracle: warr.ConsoleOracle})
	if nav.Generated != golden.Navigation.Generated || nav.Replayed != golden.Navigation.Replayed ||
		nav.Pruned != golden.Navigation.Pruned || nav.ReplayFailures != golden.Navigation.ReplayFailures ||
		len(nav.Findings) != golden.Navigation.Findings {
		t.Errorf("navigation campaign drifted from golden: generated=%d replayed=%d pruned=%d replayFailures=%d findings=%d",
			nav.Generated, nav.Replayed, nav.Pruned, nav.ReplayFailures, len(nav.Findings))
	}

	// Enumerated timing campaign, pinned likewise.
	tim := warr.RunTimingCampaign(fresh, tr, warr.CampaignOptions{Oracle: warr.ConsoleOracle})
	if len(tim.Findings) != golden.Timing.Findings {
		t.Fatalf("timing campaign found %d bugs, golden says %d", len(tim.Findings), golden.Timing.Findings)
	}
	var injections []string
	for _, f := range tim.Findings {
		injections = append(injections, f.Injection.String())
	}
	sort.Strings(injections)
	goldenInj := append([]string(nil), golden.Timing.Injections...)
	sort.Strings(goldenInj)
	if !reflect.DeepEqual(injections, goldenInj) {
		t.Errorf("timing injections %v drifted from golden %v", injections, goldenInj)
	}

	// The fuzz campaign must rediscover every enumerated finding within
	// budget: same oracle verdicts, produced by error-model programs.
	st := fuzzCampaign(t, warr.JobSpec{
		Trace: tr, FuzzBudget: 32, FuzzSeed: 1, Parallelism: 2,
	})
	observed := make(map[string]string) // oracle verdict -> program
	for _, f := range st.Findings {
		if _, ok := observed[f.Observed]; !ok {
			observed[f.Observed] = f.Program
		}
	}
	for _, rep := range []*warr.CampaignReport{nav, tim} {
		for _, f := range rep.Findings {
			prog, ok := observed[f.Observed.Error()]
			if !ok {
				t.Errorf("enumerated finding [%s] %v not rediscovered by the fuzz campaign", f.Injection, f.Observed)
				continue
			}
			t.Logf("enumerated [%s] rediscovered as program %q", f.Injection, prog)
		}
	}
}
