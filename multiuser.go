package warr

// The multi-user face: deterministic shared worlds. A load campaign
// runs N virtual users against one shared application environment —
// per-user browsers and cookie jars over one server state — serialized
// onto the virtual clock by an explicit schedule, so every interleaving
// is a replayable value. The interleaving explorer perturbs schedules
// (seeded, bounded, deduplicated) to surface contention-only findings:
// lost updates, stale reads, session collisions that no single-user
// campaign can reach. warr-load is the CLI face; warr-serve accepts
// load-campaign jobs over the same engine.

import (
	"context"

	"github.com/dslab-epfl/warr/internal/multiuser"
)

// LoadWorkload is a registered multi-user workload: the apps it
// installs, the per-user script, and the invariant check that turns
// interference into violations.
type LoadWorkload = multiuser.Workload

// LoadSchedule is one deterministic interleaving: a linear extension of
// the users' per-op orders, serialized as "users:N;slots:a,b,c".
type LoadSchedule = multiuser.Schedule

// ParseLoadSchedule parses the schedule codec.
func ParseLoadSchedule(s string) (LoadSchedule, error) { return multiuser.ParseSchedule(s) }

// LoadOptions configure a load campaign.
type LoadOptions = multiuser.Options

// LoadReport is a finished load campaign; Render prints the canonical
// findings report (byte-identical across parallelism, sharing, and
// execution placement for a fixed seed).
type LoadReport = multiuser.Report

// LoadFinding is one aggregated interference finding with its
// reproducing schedule.
type LoadFinding = multiuser.Finding

// RunLoadCampaign runs a load campaign in-process (the engine's
// load-campaign jobs execute the same path).
func RunLoadCampaign(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	return multiuser.Run(ctx, o)
}

// LoadWorkloadNames lists the registered workloads in registration
// order.
func LoadWorkloadNames() []string { return multiuser.WorkloadNames() }

// LoadWorkloads lists the registered workloads in name order.
func LoadWorkloads() []LoadWorkload { return multiuser.Workloads() }

// RegisterLoadWorkload adds a workload to the multi-user registry, the
// way plugin packages register apps and scenarios.
func RegisterLoadWorkload(wl LoadWorkload) error { return multiuser.RegisterWorkload(wl) }
