package warr

import (
	"io"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/serve"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// This file is the open half of the environment API: the pluggable
// application/scenario registry. WaRR's claim is recording *any* AJAX
// web application and replaying it faithfully elsewhere — so the set of
// applications an environment hosts, and the set of workloads the tools
// accept by name, are extension points, not a closed world. Implement
// App (typically on the webapp server framework exported below),
// register it with RegisterApp, build a Scenario for it with the
// ScenarioBuilder, register that with RegisterScenario — and the new
// workload is recordable by warr-record, replayable by warr-replay,
// campaign-testable by weberr, and eligible for the golden-trace
// corpus, with no changes to this module. See apps/calendar for a
// complete plugin built purely on this surface, and examples/custom-app
// for a walkthrough.

// ---- application plugins ----

// App is one pluggable web application: its registered name, the
// network host it serves, the page recorded sessions start on, and a
// factory producing fresh per-environment server state. Implementations
// must keep all mutable state inside the AppState values NewState
// returns, so two environments never observe each other.
type App = registry.App

// AppState is one environment's instance of an application: mutable
// server state, the handler serving it, and Reset semantics restoring
// the initial state.
type AppState = registry.AppState

// AppSnapshotter is the optional checkpoint capability of an AppState:
// states implementing it make their environments forkable (Env.Fork)
// and let campaigns share trace prefixes instead of re-executing them.
// Snapshot must return a fully independent deep copy — same stored
// data, same issued sessions (WebServer.CopySessionsFrom covers the
// session half). States without it still work everywhere; forking
// falls back to fresh-environment prefix replay, the flat campaign
// path.
type AppSnapshotter = registry.Snapshotter

// NotSnapshottableError reports Env.Fork against an application whose
// state does not implement AppSnapshotter.
type NotSnapshottableError = registry.NotSnapshottableError

// AppImageMarshaler is the optional durable-image capability of an
// AppState — the serialization counterpart of AppSnapshotter. States
// implementing it can be written into WARR-IMAGE world images and
// shipped to other processes (the distributed campaign executor's
// transport). MarshalImage must be deterministic — identical states,
// identical bytes — because images are identified by content digest;
// UnmarshalImage restores into a state freshly built by NewState.
// WebServer.ExportSessions / ImportSessions cover the session half.
type AppImageMarshaler = registry.ImageMarshaler

// NotImageableError reports an image operation against an application
// whose state does not implement AppImageMarshaler.
type NotImageableError = registry.NotImageableError

// AppCoverageSource is the optional coverage capability of an AppState:
// states implementing it report their semantic state transitions as
// stable marks, which the error-model fuzzing campaign folds into its
// replay-coverage fingerprint. CoverageMarks must be a pure function of
// the state — forked or image-restored worlds report the same marks.
// States without it still fuzz; candidate dedup just degrades to the
// trace-digest lane (weberr -list shows which apps implement it).
type AppCoverageSource = registry.CoverageSource

// WebSessionsImage is a WebServer's serialized session state, as
// exported by ExportSessions and restored by ImportSessions — the
// building block AppImageMarshaler implementations use for their
// session half.
type WebSessionsImage = webapp.SessionsImage

// AppRegistry maps names to App plugins and scenario factories; the
// tools resolve applications and workloads through it.
type AppRegistry = registry.Registry

// NewAppRegistry returns an empty registry, for worlds assembled
// explicitly instead of through the process-wide default.
func NewAppRegistry() *AppRegistry { return registry.New() }

// RegisterApp adds an application plugin to the default registry, the
// one NewDemoEnv and the command-line tools use. It fails with a typed
// error (*DuplicateAppError, *HostCollisionError,
// *StartURLCollisionError) on a collision with a registered app.
func RegisterApp(a App) error { return registry.RegisterApp(a) }

// MustRegisterApp is RegisterApp for init-time self-registration.
func MustRegisterApp(a App) { registry.MustRegisterApp(a) }

// LookupApp resolves a registered application by name; unknown names
// fail with *UnknownAppError.
func LookupApp(name string) (App, error) { return registry.LookupApp(name) }

// RegisteredApps lists the default registry's applications in
// registration order.
func RegisteredApps() []App { return registry.Apps() }

// AppNames lists the default registry's application names in
// registration order.
func AppNames() []string { return registry.AppNames() }

// RegisterScenario adds a named workload to the default registry; the
// name is what warr-record, warr-replay, and weberr accept.
func RegisterScenario(name string, f func() Scenario) error {
	return registry.RegisterScenario(name, f)
}

// MustRegisterScenario is RegisterScenario for init-time
// self-registration.
func MustRegisterScenario(name string, f func() Scenario) {
	registry.MustRegisterScenario(name, f)
}

// LookupScenario builds the named scenario from the default registry;
// unknown names fail with *UnknownScenarioError.
func LookupScenario(name string) (Scenario, error) { return registry.LookupScenario(name) }

// Typed registration and lookup errors.
type (
	DuplicateAppError      = registry.DuplicateAppError
	DuplicateScenarioError = registry.DuplicateScenarioError
	HostCollisionError     = registry.HostCollisionError
	StartURLCollisionError = registry.StartURLCollisionError
	UnknownAppError        = registry.UnknownAppError
	UnknownScenarioError   = registry.UnknownScenarioError
)

// ---- environments over the registry ----

// Env is one isolated simulated world: a virtual clock, an in-memory
// network, a browser, and one fresh AppState per hosted application.
// DemoEnv is the same type under its historical name.
type Env = registry.Env

// EnvOption configures NewEnv.
type EnvOption = registry.EnvOption

// NewEnv builds an isolated environment hosting the selected
// applications. With no options it hosts every registered application —
// NewDemoEnv is sugar over exactly this call.
func NewEnv(mode Mode, opts ...EnvOption) (*Env, error) {
	return registry.NewEnv(mode, opts...)
}

// MustNewEnv is NewEnv panicking on error, for selections a registry
// has already validated.
func MustNewEnv(mode Mode, opts ...EnvOption) *Env {
	return registry.MustNewEnv(mode, opts...)
}

// WithApps hosts exactly the given applications instead of the full
// default registry.
func WithApps(apps ...App) EnvOption { return registry.WithApps(apps...) }

// WithRegistry hosts every application of the given registry.
func WithRegistry(r *AppRegistry) EnvOption { return registry.WithRegistry(r) }

// WithLatency overrides the environment's one-way network latency.
func WithLatency(d time.Duration) EnvOption { return registry.WithLatency(d) }

// NewEnvFactory returns a campaign EnvFactory over fresh isolated
// environments built per the options — for fanning campaigns out over
// a custom application world.
func NewEnvFactory(mode Mode, opts ...EnvOption) EnvFactory {
	return registry.BrowserFactory(mode, opts...)
}

// ---- declarative scenarios ----

// ScenarioStep is one typed user action of a scenario.
type ScenarioStep = registry.Step

// Typed scenario steps, for introspection and for assembling Scenario
// values directly.
type (
	ClickStep = registry.ClickStep
	DragStep  = registry.DragStep
	TypeStep  = registry.TypeStep
	KeyStep   = registry.KeyStep
	WaitStep  = registry.WaitStep
	FuncStep  = registry.FuncStep
)

// Locator selects the element a step acts on.
type Locator = registry.Locator

// ByID locates the element with the given id attribute.
func ByID(id string) Locator { return registry.ByID(id) }

// ByName locates the element with the given name attribute.
func ByName(name string) Locator { return registry.ByName(name) }

// ByTagText locates the element of the given tag whose trimmed text
// equals text.
func ByTagText(tag, text string) Locator { return registry.ByTagText(tag, text) }

// FindElement returns the first element the locator matches in any of
// the tab's frames, or nil — the lookup scenario oracles use.
func FindElement(tab *Tab, l Locator) *dom.Node { return registry.Find(tab, l) }

// Scenario pacing defaults: ActionGap is a patient user's think time
// between actions (longer than the demo AJAX latency), KeyGap the time
// between keystrokes.
const (
	ActionGap = registry.ActionGap
	KeyGap    = registry.KeyGap
)

// ScenarioBuilder assembles a Scenario declaratively: each call appends
// one typed step, Verify installs the oracle, Build returns the
// finished value.
type ScenarioBuilder = registry.ScenarioBuilder

// NewScenario starts a builder for a session against app, starting at
// the app's start URL.
func NewScenario(app App, name string) *ScenarioBuilder {
	return registry.NewScenario(app, name)
}

// NewScenarioAt starts a builder with an explicit application name and
// start URL — for parameterized workloads like the per-engine search
// scenario.
func NewScenarioAt(appName, name, startURL string) *ScenarioBuilder {
	return registry.NewScenarioAt(appName, name, startURL)
}

// ---- the webapp server framework ----
//
// The simulated substrate an App serves on: an HTTP-like request cycle
// over the in-memory network, with routing, cookie-based sessions, and
// page rendering. These are the same pieces the five demo applications
// are built from.

// WebRequest is one HTTP-like request; handlers read its parsed Form.
type WebRequest = netsim.Request

// WebResponse is an HTTP-like response.
type WebResponse = netsim.Response

// WebHandler serves requests for one registered host.
type WebHandler = netsim.Handler

// WebServer is a WebHandler with routing and cookie-based sessions —
// the application server framework the demo apps use.
type WebServer = webapp.Server

// WebSession is per-user server-side state, keyed by the sid cookie.
type WebSession = webapp.Session

// WebPageFunc handles one WebServer route.
type WebPageFunc = webapp.PageFunc

// NewWebServer returns an empty application server.
func NewWebServer(name string) *WebServer { return webapp.NewServer(name) }

// WebPage renders a complete HTML page with optional script code.
func WebPage(title, bodyHTML, scriptSrc string) string {
	return webapp.Page(title, bodyHTML, scriptSrc)
}

// HTMLEscape escapes text for safe inclusion in HTML content.
func HTMLEscape(s string) string { return webapp.HTMLEscape(s) }

// WebOK returns a 200 text/html response.
func WebOK(body string) *WebResponse { return netsim.OK(body) }

// WebRedirect returns a redirect to the given location.
func WebRedirect(location string) *WebResponse { return webapp.Redirect(location) }

// WebNotFound returns a 404 response.
func WebNotFound() *WebResponse { return netsim.NotFound() }

// KeyEnter is the named key scenarios commit edits with (builder
// Press/PressEnter).
const KeyEnter = browser.KeyEnter

// ---- the job engine: replay as a service ----
//
// Every face of this module — the one-shot CLIs and the warr-serve
// daemon — executes through one shared job engine: typed jobs over the
// session and campaign APIs, a bounded queue with backpressure, a
// per-job event bus, cancel with causes, and resume built on session
// forking. This is the programmatic surface of that engine; warr-serve
// is the same engine behind HTTP (see NewJobServer).

// Job is one unit of engine work: its spec, lifecycle state, event bus,
// and — once finished — its results.
type Job = jobs.Job

// JobSpec is a typed job specification.
type JobSpec = jobs.Spec

// JobKind selects what a job does with its trace.
type JobKind = jobs.Kind

// Job kinds: one-shot replay (optionally replicated), the WebErr
// navigation and timing campaigns, AUsER report ingestion
// (replay → minimize → classify), the coverage-guided error-model
// fuzzing campaign, and the multi-user shared-world load campaign.
const (
	JobReplay             = jobs.KindReplay
	JobNavigationCampaign = jobs.KindNavigationCampaign
	JobTimingCampaign     = jobs.KindTimingCampaign
	JobReport             = jobs.KindReport
	JobFuzzCampaign       = jobs.KindFuzzCampaign
	JobLoadCampaign       = jobs.KindLoadCampaign
)

// ParseJobKind resolves a job kind name; unknown names return 0.
func ParseJobKind(s string) JobKind { return jobs.ParseKind(s) }

// JobState is a job's lifecycle position: queued → running → one of
// done / failed / cancelled. A cancelled job may be resumed.
type JobState = jobs.State

// Job states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// JobClassification is the stored outcome of AUsER report ingestion.
type JobClassification = jobs.Classification

// JobEngine runs jobs over a bounded queue and a worker pool.
type JobEngine = jobs.Engine

// JobEngineOptions configure NewJobEngine.
type JobEngineOptions = jobs.Options

// NewJobEngine starts an engine: the worker pool is live and Submit may
// be called immediately. Call Drain (or Close) to shut it down.
func NewJobEngine(opts JobEngineOptions) *JobEngine { return jobs.New(opts) }

// Engine errors: queue backpressure, drain in progress, unknown ids,
// invalid cancel/resume transitions, and the drain checkpoint cause.
var (
	ErrJobQueueFull  = jobs.ErrQueueFull
	ErrJobsDraining  = jobs.ErrDraining
	ErrUnknownJob    = jobs.ErrUnknownJob
	ErrJobFinished   = jobs.ErrJobFinished
	ErrNotResumable  = jobs.ErrNotResumable
	CauseJobsDrained = jobs.CauseDrained
)

// JobEvent is one entry in a job's event stream; JobEventBus is the
// per-job stream itself — full history first, then live events, for any
// number of subscribers.
type (
	JobEvent    = jobs.Event
	JobEventBus = jobs.Bus
)

// The concrete event shapes: per-step replay progress (the same
// JSON-lines format warr-replay -json has always printed), per-replica
// summaries, job state transitions, per-trace campaign outcomes,
// campaign reports, and AUsER ingestion classifications.
type (
	StepEvent           = jobs.StepEvent
	SummaryEvent        = jobs.SummaryEvent
	SkippedEvent        = jobs.SkippedEvent
	JobStateEvent       = jobs.StateEvent
	OutcomeEvent        = jobs.OutcomeEvent
	CampaignReportEvent = jobs.ReportEvent
	FuzzProgressEvent   = jobs.FuzzEvent
	LoadProgressEvent   = jobs.LoadEvent
	ClassificationEvent = jobs.ClassificationEvent
)

// EventEncoder writes events as JSON lines — the one encoder behind CLI
// stdout, SSE frames, and job logs.
type EventEncoder = jobs.Encoder

// NewEventEncoder returns an encoder writing JSON event lines to w.
func NewEventEncoder(w io.Writer) *EventEncoder { return jobs.NewEncoder(w) }

// EncodeJobEvent renders one event as its JSON line (trailing newline
// included).
func EncodeJobEvent(ev JobEvent) ([]byte, error) { return jobs.EncodeEvent(ev) }

// DecodeJobEvent parses one JSON event line into its typed event.
func DecodeJobEvent(line []byte) (JobEvent, error) { return jobs.DecodeEvent(line) }

// ---- the HTTP face ----

// JobServer is the HTTP face of a job engine — the warr-serve daemon's
// handler: trace upload, job submission with backpressure, SSE event
// streaming, cancel/resume, AUsER report ingestion, and metrics.
type JobServer = serve.Server

// JobServerOptions configure NewJobServer.
type JobServerOptions = serve.Options

// NewJobServer builds an HTTP server over a job engine (a default
// engine when opts.Engine is nil).
func NewJobServer(opts JobServerOptions) *JobServer { return serve.New(opts) }

// JobRequest is the POST /api/jobs wire format.
type JobRequest = serve.JobRequest

// DecodeJobRequest parses and validates a job-submission body.
func DecodeJobRequest(data []byte) (*JobRequest, error) { return serve.DecodeJobRequest(data) }
