package warr_test

import (
	"context"
	"strings"
	"testing"

	warr "github.com/dslab-epfl/warr"
)

// TestArchitectureRoundTrip exercises Fig. 1 end to end through the
// public API: the WaRR Recorder captures user actions (1), logs them as
// WaRR Commands (2), and the WaRR Replayer plays the recorded commands
// back (3) — in a different environment, through the serialized trace
// format.
func TestArchitectureRoundTrip(t *testing.T) {
	sc := warr.EditSiteScenario()
	tr, err := warr.RecordSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Commands) == 0 {
		t.Fatal("recorder produced no commands")
	}

	// Serialize and re-parse: the trace is a durable artifact.
	parsed, err := warr.ParseTrace(tr.Text())
	if err != nil {
		t.Fatalf("parsing serialized trace: %v", err)
	}

	replayEnv := warr.NewDemoEnv(warr.DeveloperMode)
	res, tab, err := warr.Replay(replayEnv.Browser, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("replay incomplete: %d failed", res.Failed)
	}
	if err := sc.Verify(replayEnv, tab); err != nil {
		t.Errorf("replay did not reproduce the session: %v", err)
	}
}

func TestPublicAPIRecorderIsAlwaysOn(t *testing.T) {
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.YahooURL); err != nil {
		t.Fatal(err)
	}
	rec := warr.NewRecorder(env.Clock)
	rec.Attach(tab)

	sc := warr.AuthenticateScenario()
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	// Keep interacting after the scenario: the recorder stays attached
	// across the navigation the form submit caused.
	tab.TypeText("x")
	tr := rec.Trace()
	last := tr.Commands[len(tr.Commands)-1]
	if last.Action != warr.Type || last.Key != "x" {
		t.Errorf("recorder missed post-navigation input: %s", last)
	}
}

func TestPublicAPIWebErrPipeline(t *testing.T) {
	tr, err := warr.RecordSession(warr.EditSiteScenario())
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }

	tree, err := warr.InferTaskTree(fresh, tr)
	if err != nil {
		t.Fatal(err)
	}
	g := warr.GrammarFromTaskTree(tree)
	if len(warr.Mutants(g, warr.InjectOptions{})) == 0 {
		t.Fatal("no mutants")
	}

	rep := warr.RunTimingCampaign(fresh, tr, warr.CampaignOptions{})
	if len(rep.Findings) == 0 {
		t.Fatal("timing campaign missed the Sites bug")
	}
	if rep.Findings[0].Injection.Kind != warr.Timing {
		t.Errorf("finding kind = %v", rep.Findings[0].Injection.Kind)
	}
}

// TestPublicAPISessionStreaming drives the session-based replay surface
// through the public API: steps stream as they replay and the hooks see
// every one of them.
func TestPublicAPISessionStreaming(t *testing.T) {
	sc := warr.EditSiteScenario()
	tr, err := warr.RecordSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	recorded := len(tr.Commands)

	env := warr.NewDemoEnv(warr.DeveloperMode)
	var hookSteps int
	session, err := warr.NewReplaySession(context.Background(), env.Browser, tr, warr.ReplayOptions{
		Hooks: []warr.ReplayHooks{{
			AfterStep: func(step warr.ReplayStep, tab *warr.Tab) { hookSteps++ },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for step := range session.Steps() {
		streamed++
		if step.Status == warr.StepFailed {
			t.Fatalf("step %d failed: %v", step.Index, step.Err)
		}
	}
	if streamed != recorded || hookSteps != recorded {
		t.Errorf("streamed %d steps, hooks saw %d, want %d", streamed, hookSteps, recorded)
	}
	if !session.Result().Complete() {
		t.Errorf("session incomplete: %+v", session.Result())
	}
	if err := sc.Verify(env, session.Tab()); err != nil {
		t.Errorf("session replay did not reproduce the session: %v", err)
	}
}

// TestPublicAPICampaignExecutor fans replicated replays out through the
// exposed executor.
func TestPublicAPICampaignExecutor(t *testing.T) {
	tr, err := warr.RecordSession(warr.EditSiteScenario())
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]warr.CampaignJob, 6)
	for i := range jobs {
		jobs[i] = warr.CampaignJob{Trace: tr, Meta: i}
	}
	exec := warr.NewCampaignExecutor(
		func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser },
		warr.ExecutorOptions{Parallelism: 3, DisablePruning: true},
	)
	for _, out := range exec.Execute(context.Background(), jobs) {
		if out.Pruned || out.Skipped || !out.Result.Complete() {
			t.Errorf("job %d did not replay completely: %+v", out.Index, out)
		}
	}
}

func TestPublicAPIAUsERFlow(t *testing.T) {
	// A user hits the Sites timing bug and files an encrypted report.
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.SitesURL); err != nil {
		t.Fatal(err)
	}
	rec := warr.NewRecorder(env.Clock)
	rec.Attach(tab)

	// Impatient user: the bug manifests.
	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
		}
	}

	report, err := warr.NewUserReport("saving does nothing", rec.Trace(), tab, warr.ReportOptions{
		Redact: warr.RedactAllTyped,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(report.Console, "\n"), "TypeError") {
		t.Error("report misses the console signal")
	}

	key, err := warr.GenerateDeveloperKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := warr.SealReport(report, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := warr.OpenReport(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Description != "saving does nothing" {
		t.Errorf("round trip mangled report: %q", opened.Description)
	}
}

func TestPublicAPIDeveloperModeMatters(t *testing.T) {
	sc := warr.EditSpreadsheetScenario()
	tr, err := warr.RecordSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	userEnv := warr.NewDemoEnv(warr.UserMode)
	_, userTab, err := warr.Replay(userEnv.Browser, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Verify(userEnv, userTab) == nil {
		t.Error("user-mode replay should not commit keyCode-gated edits")
	}
	// Stronger than the oracle: not even one cell may have committed.
	// The replayed page still shows the typed-but-uncommitted text, so
	// re-render the sheet from server state and read the cells back
	// through the public locator API.
	if err := userTab.Navigate(warr.DocsURL); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"r2c2", "r3c2"} {
		n := warr.FindElement(userTab, warr.ByID(cell))
		if n == nil {
			t.Fatalf("cell %s missing from re-rendered sheet", cell)
		}
		if got := strings.TrimSpace(n.TextContent()); got != "" {
			t.Errorf("user-mode replay committed cell %s = %q", cell, got)
		}
	}

	devEnv := warr.NewDemoEnv(warr.DeveloperMode)
	_, devTab, err := warr.Replay(devEnv.Browser, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Verify(devEnv, devTab); err != nil {
		t.Errorf("developer-mode replay should commit the edit: %v", err)
	}
}
