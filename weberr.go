package warr

import (
	"context"

	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// This file exposes WebErr, the paper's tool for testing web
// applications against realistic human errors (§V). The pipeline is
// Fig. 5: record a correct trace, infer a user-interaction grammar from
// it, inject navigation errors (forget / reorder / substitute, confined
// to single grammar rules) or timing errors (no wait time), replay the
// erroneous traces in fresh environments, and apply an oracle.

// TaskTree is the hierarchical structure of a user session inferred
// from a trace by page-similarity clustering (Fig. 6).
type TaskTree = weberr.TaskTree

// Grammar expresses a correct pattern of interaction; expanding it
// recursively regenerates a trace.
type Grammar = weberr.Grammar

// ErrorKind enumerates the human-error operators.
type ErrorKind = weberr.ErrorKind

// Error kinds (§V-A navigation errors, §V-B timing errors, plus the
// fuzzing and multi-user campaigns' marker kinds).
const (
	Forget         = weberr.Forget
	Reorder        = weberr.Reorder
	Substitute     = weberr.Substitute
	Timing         = weberr.Timing
	FuzzKind       = weberr.Fuzz
	InterleaveKind = weberr.Interleave
)

// Mutant is one single-error erroneous grammar.
type Mutant = weberr.Mutant

// InjectOptions confine error injection to selected rules and operators.
type InjectOptions = weberr.InjectOptions

// Oracle decides whether the application behaved correctly under an
// erroneous trace.
type Oracle = weberr.Oracle

// CampaignOptions configure an error-injection campaign.
type CampaignOptions = weberr.CampaignOptions

// CampaignReport summarizes a campaign: traces generated, replayed,
// pruned, and the oracle's findings.
type CampaignReport = weberr.Report

// Finding is one bug exposed by an injected error.
type Finding = weberr.Finding

// EnvFactory creates the fresh, isolated browser each replay runs in.
type EnvFactory = weberr.EnvFactory

// InferTaskTree reconstructs the task tree a user followed, given only
// a sequence of WaRR Commands (§V-A).
func InferTaskTree(newEnv EnvFactory, tr Trace) (*TaskTree, error) {
	return weberr.InferTaskTree(newEnv, tr)
}

// GrammarFromTaskTree converts a task tree into a user-interaction
// grammar: one rule per subtask.
func GrammarFromTaskTree(t *TaskTree) *Grammar { return weberr.FromTaskTree(t) }

// Mutants enumerates single-error grammars under the given confinement.
func Mutants(g *Grammar, opts InjectOptions) []Mutant { return weberr.Mutants(g, opts) }

// RunNavigationCampaign tests an application against navigation errors
// (Fig. 5, steps 2-4), with prefix-failure pruning. CampaignOptions.
// Parallelism > 1 replays erroneous traces concurrently over isolated
// environments; the set of Findings is the same at any parallelism.
func RunNavigationCampaign(newEnv EnvFactory, g *Grammar, opts CampaignOptions) *CampaignReport {
	return weberr.RunNavigationCampaign(newEnv, g, opts)
}

// RunNavigationCampaignContext is RunNavigationCampaign under a
// context: cancelling ctx stops in-flight replays at their next command
// boundary and reports not-yet-started traces as Skipped.
func RunNavigationCampaignContext(ctx context.Context, newEnv EnvFactory, g *Grammar, opts CampaignOptions) *CampaignReport {
	return weberr.RunNavigationCampaignContext(ctx, newEnv, g, opts)
}

// RunTimingCampaign tests an application against timing errors: the
// correct trace replayed with no wait time and at impatient speeds.
func RunTimingCampaign(newEnv EnvFactory, tr Trace, opts CampaignOptions) *CampaignReport {
	return weberr.RunTimingCampaign(newEnv, tr, opts)
}

// RunTimingCampaignContext is RunTimingCampaign under a context.
func RunTimingCampaignContext(ctx context.Context, newEnv EnvFactory, tr Trace, opts CampaignOptions) *CampaignReport {
	return weberr.RunTimingCampaignContext(ctx, newEnv, tr, opts)
}

// ConsoleOracle flags any error-level console output — the oracle that
// exposed the Google Sites uninitialized-variable bug (§V-C).
var ConsoleOracle Oracle = weberr.ConsoleOracle

// FuzzCampaignStats is the aggregate outcome of a fuzz-campaign job
// (Job.FuzzStats): candidates generated / deduped / pruned / replayed,
// coverage-novel corpus admissions, and the findings in discovery
// order. With a fixed JobSpec.FuzzSeed and FuzzBudget it is
// byte-identical across runs.
type FuzzCampaignStats = campaign.FuzzStats

// FuzzCampaignFinding is one oracle hit discovered by a fuzz campaign;
// Program is the serialized human-error mutation program that produced
// the erroneous trace.
type FuzzCampaignFinding = campaign.FuzzFinding
