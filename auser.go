package warr

import (
	"crypto/rsa"

	"github.com/dslab-epfl/warr/internal/auser"
)

// This file exposes AUsER, the paper's automatic user experience
// reporting tool (§VI): when a user hits a bug, the application's
// developers receive the recorded WaRR Commands, a textual description,
// the console output, and a (possibly partial) snapshot of the final
// page. Privacy mitigations from §IV-D are included: keystroke
// redaction, snapshot clipping, and public-key encryption of reports so
// only developers can read them.

// UserReport is one user experience report.
type UserReport = auser.Report

// ReportOptions configure report generation (snapshot clipping,
// redaction).
type ReportOptions = auser.Options

// ReportEnvelope is an encrypted report in transit.
type ReportEnvelope = auser.Envelope

// NewUserReport assembles a report from the user's description, the
// recorded trace, and the tab showing the bug.
func NewUserReport(description string, tr Trace, tab *Tab, opts ReportOptions) (*UserReport, error) {
	return auser.New(description, tr, tab, opts)
}

// ReportSnapshotter captures report material (page snapshot, URL,
// console) after every replayed command, as a replay session hook —
// register its Hooks() in ReplayOptions.Hooks or with Session.AddHooks.
// A report can then be assembled from the last captured state even when
// the session was cancelled or halted mid-trace.
type ReportSnapshotter = auser.Snapshotter

// NewReportSnapshotter returns a snapshotter applying the given report
// options to every capture.
func NewReportSnapshotter(opts ReportOptions) *ReportSnapshotter {
	return auser.NewSnapshotter(opts)
}

// RedactAllTyped replaces every printable keystroke with "*", keeping
// the interaction structure intact.
func RedactAllTyped(tr Trace) Trace { return auser.RedactAllTyped(tr) }

// RedactMatching redacts keystrokes typed into elements whose XPath
// contains any of the substrings (e.g. "pass" strips passwords).
func RedactMatching(substrings ...string) func(Trace) Trace {
	return auser.RedactMatching(substrings...)
}

// GenerateDeveloperKey creates the developers' RSA key pair (2048-bit
// minimum).
func GenerateDeveloperKey(bits int) (*rsa.PrivateKey, error) {
	return auser.GenerateDeveloperKey(bits)
}

// SealReport encrypts a report to the developers' public key (hybrid
// RSA-OAEP + AES-GCM).
func SealReport(r *UserReport, pub *rsa.PublicKey) (*ReportEnvelope, error) {
	return auser.Seal(r, pub)
}

// OpenReport decrypts an envelope with the developers' private key.
func OpenReport(env *ReportEnvelope, priv *rsa.PrivateKey) (*UserReport, error) {
	return auser.Open(env, priv)
}
